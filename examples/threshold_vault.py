#!/usr/bin/env python3
"""Threshold secret vault — the paper's second application.

"Threshold encryption can be used to restrict employees' access to
databases ... or to outsource management of secrets on a public
blockchain to multiple, semi-trusted authorities" (Section 1, citing
CALYPSO [28]).  This example:

1. a committee of 7 authorities establishes a key via the A-DKG;
2. a client encrypts a secret *to the committee* (no single authority
   can read it);
3. any f+1 = 3 authorities produce publicly verifiable decryption
   shares to release it; f = 2 colluding authorities get nothing.

Run:  python examples/threshold_vault.py
"""

import random

from repro import run_adkg
from repro.crypto import threshold_enc as tenc
from repro.crypto.keys import TrustedSetup

N, SEED = 7, 99
SECRET = b"launch-code: correct horse battery staple"


def main() -> None:
    setup = TrustedSetup.generate(N, seed=SEED)
    directory = setup.directory
    f = directory.f

    print(f"Committee key generation via A-DKG (n={N}, f={f}) ...")
    result = run_adkg(n=N, seed=SEED, setup=setup)
    assert result.agreed
    dkg = result.transcript

    print("client encrypts the secret to the committee key ...")
    ciphertext = tenc.encrypt(directory, dkg, SECRET, random.Random(2024))
    print(f"ciphertext body ({len(ciphertext.body)} bytes): {ciphertext.body.hex()[:48]}...")

    print(f"\nauthorities 1, 3, 5 cooperate (f+1 = {f + 1} shares):")
    shares = []
    for i in (1, 3, 5):
        share = tenc.decryption_share(directory, setup.secret(i), dkg, ciphertext)
        ok = tenc.share_valid(directory, dkg, ciphertext, share)
        print(f"  authority {i}: share published, publicly verifiable: {ok}")
        shares.append(share)
    plaintext = tenc.combine(directory, dkg, ciphertext, shares)
    assert plaintext == SECRET
    print(f"released secret: {plaintext.decode()}")

    print(f"\nonly f = {f} colluding authorities try the same:")
    few = shares[:f]
    try:
        tenc.combine(directory, dkg, ciphertext, few)
        raise AssertionError("combine must refuse f shares")
    except ValueError as exc:
        print(f"  combine refused: {exc}")
    print("  (and the degree-f exponent polynomial leaks nothing to f shares)")


if __name__ == "__main__":
    main()
