#!/usr/bin/env python3
"""Quickstart: run one Asynchronous Distributed Key Generation.

Seven parties (tolerating f = 2 Byzantine faults) generate a shared
threshold key with no trusted dealer over a simulated asynchronous
network, then we inspect what came out: the agreed transcript, the group
public key, and the communication/round costs the paper bounds.

Run:  python examples/quickstart.py
"""

from repro import run_adkg
from repro.crypto import threshold_vrf as tvrf


def main() -> None:
    print("Running A-DKG with n=7, f=2 ...")
    result = run_adkg(n=7, seed=42)

    print(f"\nall honest parties agreed: {result.agreed}")
    print(f"parties that output:        {sorted(result.outputs)}")
    transcript = result.transcript
    print(f"contributing dealers:       {sorted(transcript.contributors)}")
    print(f"group public key:           g^F(0) (opaque group element)")

    # The transcript passes the paper's DKGVerify (Definition 1).
    from repro.crypto.keys import TrustedSetup

    setup = TrustedSetup.generate(7, seed=42)
    assert tvrf.DKGVerify(setup.directory, transcript)
    print("DKGVerify(transcript):      OK (>= 2f+1 valid contributions)")

    print("\n--- measured costs (Theorem 10 territory) ---")
    print(f"words sent:    {result.words_total:,}")
    print(f"messages sent: {result.messages_total:,}")
    print(f"async rounds:  {result.rounds:.0f}")
    print(f"NWH views:     {result.views}")


if __name__ == "__main__":
    main()
