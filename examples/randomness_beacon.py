#!/usr/bin/env python3
"""A drand-style randomness beacon on the session-multiplexed engine.

Threshold VRFs "can be used to implement random beacons" (Section 1 of
the paper, citing RandHound/drand-style systems [32]).  Earlier versions
of this example hand-rolled a single ADKG run and looped VRF shares by
hand; it now drives the real service layer:

1. the :class:`~repro.service.epochs.EpochDriver` runs several ADKG
   *epochs* as concurrent sessions over one network — epoch ``e+1``'s
   PVSS dealing overlaps epoch ``e``'s agreement phase (pipelining), and
   each completed epoch's protocol state is garbage-collected;
2. every epoch establishes a *fresh* group key (proactive rotation);
3. the :class:`~repro.service.beacon.RandomnessBeacon` emits chained,
   publicly verifiable VRF outputs under each epoch's key, with the
   chain linking across key handoffs back to genesis.

Run:  python examples/randomness_beacon.py
"""

from repro.service import RandomnessBeacon, run_beacon
from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup

N, SEED, EPOCHS, DEPTH, ROUNDS = 7, 7, 4, 2, 2


def main() -> None:
    print(
        f"Running {EPOCHS} pipelined ADKG epochs (n={N}, pipeline depth "
        f"{DEPTH}) feeding a {ROUNDS}-round-per-epoch beacon ...\n"
    )
    report = run_beacon(
        n=N,
        epochs=EPOCHS,
        pipeline_depth=DEPTH,
        rounds_per_epoch=ROUNDS,
        transport="sim",
        seed=SEED,
    )
    assert report.all_verified, "beacon stream must verify end-to-end"

    for result in report.epoch_results:
        print(
            f"epoch {result.epoch}: fresh key agreed over "
            f"[{result.started_at:.0f}, {result.completed_at:.0f}] rounds, "
            f"pk = {str(result.public_key)[:44]}..."
        )
    print()
    for output in report.outputs:
        print(f"beacon {output.epoch}.{output.round}: {output.value:032x}")

    keys = {str(r.public_key) for r in report.epoch_results}
    assert len(keys) == EPOCHS, "every epoch must rotate to a fresh key"
    values = [o.value for o in report.outputs]
    assert len(set(values)) == len(values), "beacon values must all differ"

    # Anyone can re-verify the whole stream from public data: each value
    # against its epoch's group key, and the chain linkage to genesis.
    setup = TrustedSetup.generate(N, seed=SEED)
    verifier = RandomnessBeacon(setup, rounds_per_epoch=ROUNDS)
    transcripts = {r.epoch: r.transcript for r in report.epoch_results}
    assert verifier.verify_chain(report.outputs, transcripts)
    for result in report.epoch_results:
        assert tvrf.DKGVerify(setup.directory, result.transcript)
    print("\nindependent verifier: every output + chain linkage check out — OK")

    # Uniqueness (Definition 2): a different f+1 signer subset would have
    # produced the very same stream — no subset can bias the beacon.
    f = setup.directory.f
    other = RandomnessBeacon(
        setup, rounds_per_epoch=ROUNDS, signers=range(1, f + 2)
    )
    for result in report.epoch_results:
        other.emit_epoch(result.epoch, result.transcript)
    assert [o.value for o in other.outputs] == values
    print("uniqueness: a disjoint-ish signer subset emits the same stream — OK")

    print(
        f"\npipelined end-to-end: {report.end_to_end:.0f} rounds for "
        f"{EPOCHS} epochs (mean epoch latency "
        f"{report.mean_epoch_latency:.0f} rounds)"
    )


if __name__ == "__main__":
    main()
