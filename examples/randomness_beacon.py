#!/usr/bin/env python3
"""Randomness beacon on top of the A-DKG (the paper's first application).

Threshold signatures/VRFs "can be used to implement random beacons"
(Section 1, citing RandHound/drand-style systems [32]).  This example:

1. runs the A-DKG once to establish the committee key — *the step the
   paper makes practical over the Internet*;
2. then, for a sequence of beacon epochs, f+1 available parties publish
   threshold-VRF shares of φ(dkg, epoch) and anyone combines and
   verifies the unique, unbiasable beacon output — even while f parties
   are offline.

Run:  python examples/randomness_beacon.py
"""

from repro import run_adkg
from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup

N, SEED, EPOCHS = 7, 7, 5


def main() -> None:
    setup = TrustedSetup.generate(N, seed=SEED)
    directory = setup.directory
    f = directory.f

    print(f"Establishing the beacon committee via A-DKG (n={N}, f={f}) ...")
    result = run_adkg(n=N, seed=SEED, setup=setup)
    assert result.agreed
    dkg = result.transcript
    print(f"committee established; dealers folded in: {sorted(dkg.contributors)}\n")

    offline = set(range(f))  # the unluckiest f parties are offline
    online = [i for i in range(N) if i not in offline]
    print(f"parties {sorted(offline)} are offline for the whole demo\n")

    previous = None
    for epoch in range(EPOCHS):
        message = ("beacon-epoch", epoch)
        shares = []
        for i in online[: f + 1]:
            share = tvrf.EvalSh(directory, setup.secret(i), dkg, message)
            assert tvrf.EvalShVerify(directory, dkg, i, message, share)
            shares.append(share)
        evaluation, proof = tvrf.Eval(directory, dkg, message, shares)
        assert tvrf.EvalVerify(directory, dkg, message, evaluation, proof)
        output = tvrf.vrf_output(directory, evaluation)
        print(f"epoch {epoch}: beacon = {output:032x}")
        assert output != previous, "beacon outputs must differ per epoch"
        previous = output

    # Uniqueness (Definition 2): a different share subset gives the same value.
    message = ("beacon-epoch", 0)
    other_shares = [
        tvrf.EvalSh(directory, setup.secret(i), dkg, message)
        for i in online[1 : f + 2]
    ]
    evaluation2, _ = tvrf.Eval(directory, dkg, message, other_shares)
    shares0 = [
        tvrf.EvalSh(directory, setup.secret(i), dkg, message)
        for i in online[: f + 1]
    ]
    evaluation1, _ = tvrf.Eval(directory, dkg, message, shares0)
    assert evaluation1 == evaluation2
    print("\nuniqueness check: two disjoint-ish share subsets agree — OK")


if __name__ == "__main__":
    main()
