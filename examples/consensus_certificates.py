#!/usr/bin/env python3
"""Threshold signatures from the A-DKG — compact consensus certificates.

The paper's remaining motivating application (Section 1): threshold
signatures "reduce the complexity of consensus algorithms" — a quorum's
worth of votes compresses into one constant-size, publicly verifiable
signature under the *group* key, so certificates stop costing O(n) words.

This example establishes the committee key via the A-DKG, then has
rotating quorums of f+1 parties certify a chain of blocks; every
certificate verifies against the single group public key, and any two
quorums produce the *same* (unique) signature.

Run:  python examples/consensus_certificates.py
"""

from repro import run_adkg
from repro.crypto import threshold_sig as tsig
from repro.crypto.keys import TrustedSetup

N, SEED, BLOCKS = 7, 123, 4


def main() -> None:
    setup = TrustedSetup.generate(N, seed=SEED)
    directory = setup.directory
    f = directory.f

    print(f"Committee key generation via A-DKG (n={N}, f={f}) ...")
    result = run_adkg(n=N, seed=SEED, setup=setup)
    assert result.agreed
    dkg = result.transcript
    print("committee key established\n")

    parent = "genesis"
    for height in range(1, BLOCKS + 1):
        block = ("block", height, parent)
        quorum = [(height + k) % N for k in range(f + 1)]  # rotating signers
        shares = [
            tsig.sign_share(directory, setup.secret(i), dkg, block) for i in quorum
        ]
        # The aggregator checks the whole quorum with one RLC-batched
        # pairing; on failure it would fall back to share_valid per share
        # to identify the culprit.
        assert tsig.batch_share_valid(directory, dkg, block, shares)
        certificate = tsig.combine(directory, dkg, block, shares)
        assert tsig.verify(directory, dkg, block, certificate)
        print(
            f"height {height}: certified by parties {quorum} -> "
            f"1-word certificate, verifies under the group key"
        )
        parent = directory.pair_group.encode_element(certificate.value).hex()[:16]

    # Uniqueness: a different quorum yields the *identical* certificate.
    block = ("block", 1, "genesis")
    other_quorum = [(5 + k) % N for k in range(f + 1)]
    other_shares = [
        tsig.sign_share(directory, setup.secret(i), dkg, block) for i in other_quorum
    ]
    cert_a = tsig.combine(
        directory,
        dkg,
        block,
        [tsig.sign_share(directory, setup.secret((1 + k) % N), dkg, block) for k in range(f + 1)],
    )
    cert_b = tsig.combine(directory, dkg, block, other_shares)
    assert cert_a == cert_b
    print("\nuniqueness: two different quorums produced the identical certificate — OK")


if __name__ == "__main__":
    main()
