#!/usr/bin/env python3
"""Byzantine fire drill: the A-DKG under the full fault matrix.

Runs the complete protocol stack while corrupting a party with each
implemented Byzantine behaviour (silence, crash, message dropping,
invalid PVSS shares) and under adversarial message scheduling, and
reports agreement / validity / rounds for each case — the operational
content of Theorems 1, 3, 4 and 5.

Run:  python examples/byzantine_drill.py
"""

from repro.analysis.experiments import run_fault_matrix
from repro.analysis.tables import render_table


def main() -> None:
    print("A-DKG fault drill, n = 4, f = 1 (every case corrupts one party")
    print("or hands the scheduler to the adversary):\n")
    rows = run_fault_matrix(n=4, seed=3)
    print(
        render_table(
            rows,
            columns=[
                "fault",
                "honest_outputs",
                "agreement",
                "valid",
                "rounds",
            ],
        )
    )
    assert all(row["agreement"] and row["valid"] for row in rows)
    print("\nall cases: agreement on one verifying transcript — OK")


if __name__ == "__main__":
    main()
