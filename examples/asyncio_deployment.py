#!/usr/bin/env python3
"""Run the identical protocol objects over every transport.

The protocol implementations are sans-io: the deterministic simulator
used by the benchmarks, the realtime asyncio runtime and the TCP socket
runtime all host the *same* ADKG class through one root factory.  Here
seven parties agree on one DKG transcript three times:

* ``sim``     — discrete-event simulation (deterministic, no wall clock);
* ``asyncio`` — realtime tasks with randomized delays;
* ``tcp``     — every message crosses a loopback socket as codec bytes.

Run:  python examples/asyncio_deployment.py
"""

import time

from repro.core.adkg import ADKG
from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.net.transport import make_transport

N, SEED = 7, 5


def root_factory(party):
    """The one factory every transport hosts unchanged."""
    return ADKG()


def run_on(kind: str) -> None:
    setup = TrustedSetup.generate(N, seed=SEED)
    transport = make_transport(kind, setup, seed=SEED, measure_bytes=True)
    started = time.perf_counter()
    results = transport.run_sync(root_factory, timeout=120)
    elapsed = time.perf_counter() - started

    transcripts = list(results.values())
    assert all(t == transcripts[0] for t in transcripts), "agreement violated!"
    assert tvrf.DKGVerify(setup.directory, transcripts[0])
    print(
        f"[{kind:7s}] {N} parties agreed in {elapsed:5.2f}s wall clock | "
        f"contributors {sorted(transcripts[0].contributors)} | "
        f"{transport.metrics.words_total:,} words / "
        f"{transport.metrics.bytes_total:,} bytes on the wire"
    )


def main() -> None:
    for kind in ("sim", "asyncio", "tcp"):
        run_on(kind)
    print("same ADKG root factory, three transports, one transcript shape")


if __name__ == "__main__":
    main()
