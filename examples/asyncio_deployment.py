#!/usr/bin/env python3
"""Run the identical protocol objects over a realtime asyncio transport.

The protocol implementations are sans-io: the deterministic simulator
used by the benchmarks and this asyncio runtime host the *same* ADKG
class.  Here seven parties exchange messages through asyncio tasks with
real (randomized) delays and still agree on one DKG transcript.

Run:  python examples/asyncio_deployment.py
"""

import asyncio
import time

from repro.core.adkg import ADKG
from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.net.asyncio_runtime import AsyncioRuntime

N, SEED = 7, 5


async def run() -> None:
    setup = TrustedSetup.generate(N, seed=SEED)
    runtime = AsyncioRuntime(setup, max_delay=0.003, seed=SEED)
    started = time.perf_counter()
    results = await runtime.run(lambda party: ADKG(), timeout=120)
    elapsed = time.perf_counter() - started

    transcripts = list(results.values())
    assert all(t == transcripts[0] for t in transcripts), "agreement violated!"
    assert tvrf.DKGVerify(setup.directory, transcripts[0])
    print(f"{N} asyncio parties agreed on one DKG transcript in {elapsed:.2f}s wall clock")
    print(f"contributors: {sorted(transcripts[0].contributors)}")
    print(f"words metered on the wire: {runtime.metrics.words_total:,}")


def main() -> None:
    asyncio.run(run())


if __name__ == "__main__":
    main()
