"""A verifiable randomness beacon over pipelined ADKG epochs.

Threshold VRFs "can be used to implement random beacons" (Section 1 of
the paper, citing RandHound/drand-style systems).  This module turns
that remark into a service:

* each *epoch* establishes a fresh group key via one ADKG session (run
  by the :class:`~repro.service.epochs.EpochDriver`, pipelined);
* within an epoch, ``rounds_per_epoch`` beacon rounds are emitted: any
  ``f+1`` parties publish threshold-VRF shares of the round message and
  anyone combines them into the unique, pairing-verifiable evaluation;
* **key handoff**: the round message includes the previous beacon value
  (across epoch boundaries too), so the stream stays one linked chain
  even though the group key underneath it rotates every epoch — an
  observer can verify both each value (against that epoch's public key)
  and the chain linkage from genesis.

Unbiasability comes from VRF uniqueness (Definition 2): once an epoch's
transcript is agreed, every beacon value of that epoch is a deterministic
function of the transcript and the chain prefix — no party, and no
``f``-subset of parties, can steer it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.net.delays import FixedDelay
from repro.net.transport import make_transport
from repro.service.epochs import EpochDriver, EpochResult

__all__ = ["BeaconOutput", "BeaconReport", "RandomnessBeacon", "run_beacon"]

#: The chain starts from a fixed, public genesis value.
GENESIS = 0


@dataclass(frozen=True)
class BeaconOutput:
    """One beacon round: a λ-bit value plus what's needed to verify it."""

    epoch: int
    round: int
    prev: int
    value: int
    evaluation: Any

    def message(self) -> tuple:
        """The VRF input this value was derived from (chain-linked)."""
        return ("beacon", self.epoch, self.round, self.prev)


class RandomnessBeacon:
    """Emit and verify the chained beacon stream over epoch transcripts."""

    def __init__(
        self,
        setup: TrustedSetup,
        *,
        rounds_per_epoch: int = 2,
        signers: Optional[Sequence[int]] = None,
    ) -> None:
        if rounds_per_epoch < 1:
            raise ValueError("rounds_per_epoch must be >= 1")
        self.setup = setup
        self.directory = setup.directory
        self.rounds_per_epoch = rounds_per_epoch
        # Any f+1 distinct signers produce the same unique value
        # (Definition 2); default to the lowest-indexed f+1 parties.
        self.signers = (
            tuple(signers)
            if signers is not None
            else tuple(range(self.directory.f + 1))
        )
        self.outputs: list[BeaconOutput] = []
        self._prev = GENESIS

    def emit_epoch(self, epoch: int, transcript: Any) -> list[BeaconOutput]:
        """Emit this epoch's beacon rounds from its agreed DKG transcript."""
        directory = self.directory
        if not tvrf.DKGVerify(directory, transcript):
            raise ValueError(f"epoch {epoch} transcript does not verify")
        emitted = []
        for round_index in range(self.rounds_per_epoch):
            message = ("beacon", epoch, round_index, self._prev)
            shares = []
            for signer in self.signers:
                share = tvrf.EvalSh(
                    directory, self.setup.secret(signer), transcript, message
                )
                if tvrf.EvalShVerify(
                    directory, transcript, signer, message, share
                ):
                    shares.append(share)
            evaluation, proof = tvrf.Eval(directory, transcript, message, shares)
            if not tvrf.EvalVerify(
                directory, transcript, message, evaluation, proof
            ):
                raise RuntimeError(f"beacon evaluation failed to verify: {message}")
            value = tvrf.vrf_output(directory, evaluation)
            output = BeaconOutput(
                epoch=epoch,
                round=round_index,
                prev=self._prev,
                value=value,
                evaluation=evaluation,
            )
            emitted.append(output)
            self.outputs.append(output)
            self._prev = value  # the handoff link into the next round/epoch
        return emitted

    def verify(self, output: BeaconOutput, transcript: Any) -> bool:
        """Publicly verify one beacon value against its epoch's group key."""
        directory = self.directory
        if not tvrf.EvalVerify(
            directory, transcript, output.message(), output.evaluation
        ):
            return False
        return tvrf.vrf_output(directory, output.evaluation) == output.value

    def verify_chain(
        self, outputs: Sequence[BeaconOutput], transcripts: dict[int, Any]
    ) -> bool:
        """Verify values *and* the genesis-rooted linkage across epochs."""
        prev = GENESIS
        for output in outputs:
            if output.prev != prev:
                return False
            transcript = transcripts.get(output.epoch)
            if transcript is None or not self.verify(output, transcript):
                return False
            prev = output.value
        return True


@dataclass
class BeaconReport:
    """Everything one ``run_beacon`` invocation measured."""

    n: int
    f: int
    epochs: int
    pipeline_depth: int
    rounds_per_epoch: int
    transport: str
    seed: int
    epoch_results: list[EpochResult] = field(default_factory=list)
    outputs: list[BeaconOutput] = field(default_factory=list)
    all_verified: bool = False
    #: Transport-native end-to-end time: last epoch's completion
    #: (simulated time on sim — the latency pipelining actually shrinks —
    #: wall-clock seconds on realtime transports).
    end_to_end: float = 0.0
    wall_clock_s: float = 0.0
    words_total: int = 0
    messages_total: int = 0
    bytes_total: int = 0
    counters: dict = field(default_factory=dict)

    @property
    def epochs_per_sec(self) -> float:
        return self.epochs / self.wall_clock_s if self.wall_clock_s > 0 else 0.0

    @property
    def mean_epoch_latency(self) -> float:
        if not self.epoch_results:
            return float("nan")
        return sum(r.latency for r in self.epoch_results) / len(self.epoch_results)


def run_beacon(
    n: int = 7,
    *,
    epochs: int = 3,
    pipeline_depth: int = 1,
    rounds_per_epoch: int = 2,
    transport: str = "sim",
    seed: int = 0,
    params: str = "TESTING",
    timeout: float = 120.0,
    setup: Optional[TrustedSetup] = None,
    gc_completed: bool = True,
) -> BeaconReport:
    """Run the full service: pipelined ADKG epochs + verified beacon stream."""
    setup = setup or TrustedSetup.generate(n, params=params, seed=seed)
    transport_kwargs = {"delay_model": FixedDelay(1.0)} if transport == "sim" else {}
    runtime = make_transport(transport, setup, seed=seed, **transport_kwargs)
    driver = EpochDriver(
        runtime,
        epochs=epochs,
        pipeline_depth=pipeline_depth,
        timeout=timeout,
        gc_completed=gc_completed,
    )
    started = time.perf_counter()
    epoch_results = driver.run()
    wall_clock_s = time.perf_counter() - started

    beacon = RandomnessBeacon(setup, rounds_per_epoch=rounds_per_epoch)
    for result in epoch_results:
        beacon.emit_epoch(result.epoch, result.transcript)
    transcripts = {result.epoch: result.transcript for result in epoch_results}
    all_verified = all(r.agreed for r in epoch_results) and beacon.verify_chain(
        beacon.outputs, transcripts
    )

    return BeaconReport(
        n=runtime.n,
        f=runtime.f,
        epochs=epochs,
        pipeline_depth=pipeline_depth,
        rounds_per_epoch=rounds_per_epoch,
        transport=transport,
        seed=seed,
        epoch_results=epoch_results,
        outputs=list(beacon.outputs),
        all_verified=all_verified,
        end_to_end=max(r.completed_at for r in epoch_results),
        wall_clock_s=wall_clock_s,
        words_total=runtime.metrics.words_total,
        messages_total=runtime.metrics.messages_total,
        bytes_total=runtime.metrics.bytes_total,
        counters={
            name: runtime.metrics.counters(name)
            for name in ("verify", "pending")
        },
    )
