"""Long-lived threshold services built on the session-multiplexed engine.

The paper's ADKG is the *setup* step for services that live much longer
than one protocol run: repeated common coins, randomness beacons,
proactive key refresh.  This package hosts the first of them:

* :class:`~repro.service.epochs.EpochDriver` — runs a sequence of ADKG
  *epochs* as concurrent sessions over one live transport, pipelined so
  epoch ``e+1``'s dealing/sharing phase overlaps epoch ``e``'s agreement
  phase (``pipeline_depth`` epochs in flight at once), garbage-collecting
  each completed epoch's protocol state;
* :class:`~repro.service.beacon.RandomnessBeacon` — a drand-style
  verifiable randomness stream: each epoch's agreed group key drives
  threshold-VRF evaluations, chained across epochs so the stream stays
  linked over key handoffs.

* :class:`~repro.service.shards.GroupCoordinator` /
  :class:`~repro.service.shards.ShardedBeacon` — horizontal scale-out
  (DESIGN §12): k independent DKG groups partitioned from one party
  universe, run multiplexed over a shared transport, sequentially, or in
  worker processes (:class:`~repro.service.shards.ShardExecutor`), with
  per-group beacon streams hash-combined into one randomness service.

:func:`~repro.service.beacon.run_beacon` is the one-call entry point the
CLI (``repro beacon``), the pipelining experiment and the session
benchmark share; :func:`~repro.service.shards.run_sharded` is its
multi-group analogue (``repro run --groups k``).
"""

from repro.service.beacon import (
    BeaconOutput,
    BeaconReport,
    RandomnessBeacon,
    run_beacon,
)
from repro.service.epochs import EpochDriver, EpochResult
from repro.service.membership import (
    ChurnBeacon,
    ChurnEvent,
    ChurnReport,
    MembershipDriver,
    MembershipSchedule,
    committee_setup,
    parse_churn,
    run_churn,
)
from repro.service.shards import (
    CombinedOutput,
    GroupCoordinator,
    GroupResult,
    ShardChurnReport,
    ShardedBeacon,
    ShardExecutor,
    ShardReport,
    run_sharded,
    run_sharded_churn,
)

__all__ = [
    "BeaconOutput",
    "BeaconReport",
    "ChurnBeacon",
    "ChurnEvent",
    "ChurnReport",
    "CombinedOutput",
    "EpochDriver",
    "EpochResult",
    "GroupCoordinator",
    "GroupResult",
    "MembershipDriver",
    "MembershipSchedule",
    "RandomnessBeacon",
    "ShardChurnReport",
    "ShardExecutor",
    "ShardReport",
    "ShardedBeacon",
    "committee_setup",
    "parse_churn",
    "run_beacon",
    "run_churn",
    "run_sharded",
    "run_sharded_churn",
]
