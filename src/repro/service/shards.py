"""Sharded multi-group scale-out: k DKG groups, one randomness service.

Word complexity is O(n³) per group (Theorems 6-10), so this module scales
*out* instead of up: a :class:`GroupCoordinator` partitions a universe of
parties into k independent DKG groups (deterministic seeded assignment,
per-group n/f — see :mod:`repro.net.sharding`), runs every group's epoch
sessions, and a :class:`ShardedBeacon` aggregates the per-group
threshold-VRF streams into one combined randomness output per round.

Three execution modes, one invariant.  The same groups can run

* ``multiplexed`` — every group as its own session family on ONE shared
  transport (sim, asyncio or tcp; the batched message plane lets
  cross-group envelopes share wire frames);
* ``sequential`` — each group solo on its own transport, one after the
  other (the single-core reference);
* ``process`` — each group solo inside a worker process
  (:class:`ShardExecutor`, fork-context pool with the byte-only boundary
  discipline of :mod:`repro.crypto.pool`: codec-encoded group configs
  in, codec-encoded results/metrics out, inline fallback on a broken
  pool), so k groups use k cores.

and the per-group protocol word/byte totals, verify-counter deltas,
group keys and beacon values are **byte-identical** across all three —
the differential gate ``tests/service/test_shards.py`` pins.  The
mechanism: a group's parties derive every RNG stream from
``party-{group.seed}-{i}`` and its epochs run in the group's own
session-id block (``repro.net.sharding.SESSION_STRIDE``), identical to a
solo transport of that group, so execution mode can only move *where*
the work runs, never what any party computes.

Per-group :class:`~repro.net.metrics.Metrics` namespacing fixes the
counter-collision problem of concurrent session families: each family
meters into its own instance and :meth:`Metrics.merged` (associative,
order-independent) produces the service totals.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.crypto.hashing import hash_to_int
from repro.net.delays import FixedDelay
from repro.net.metrics import Metrics
from repro.net.runtime import Simulation
from repro.net.sharding import ShardGroup, make_shard_group, partition_universe
from repro.net.transport import RealtimeTransport, Transport, make_transport
from repro.service.beacon import BeaconOutput, RandomnessBeacon
from repro.service.epochs import EpochDriver, EpochResult, _default_root_factory

__all__ = [
    "CombinedOutput",
    "GroupCoordinator",
    "GroupResult",
    "ShardChurnReport",
    "ShardExecutor",
    "ShardReport",
    "ShardedBeacon",
    "run_sharded",
    "run_sharded_churn",
    "shutdown_shard_executor",
]

SHARD_MODES = ("multiplexed", "sequential", "process")

#: Wire tag + version of the worker config/result tuples.  The process
#: boundary carries only plain codec values, so shape changes must bump
#: the version (a worker from a stale fork would otherwise misparse).
_CONFIG_TAG = "shard-run"
_RESULT_TAG = "shard-result"
#: v2: epoch rows carry the committee member tuple + threshold.
_WIRE_VERSION = 2


# -- coordinator ---------------------------------------------------------------------


class GroupCoordinator:
    """Partition a party universe into k groups and build their transports.

    The membership decision is a pure function of ``(universe, groups,
    seed)`` (seeded shuffle, contiguous chunks, sizes within one of each
    other) and each group's key material a pure function of its gid and
    the universe seed — so every execution mode, and a worker process
    holding nothing but a config tuple, reconstructs identical groups.
    """

    def __init__(
        self,
        universe: int,
        groups: int,
        *,
        group_f: Optional[int] = None,
        seed: int = 0,
        params: str = "TESTING",
    ) -> None:
        self.universe = universe
        self.seed = seed
        self.params = params
        self.group_f = group_f
        assignment = partition_universe(universe, groups, seed)
        self.groups: tuple[ShardGroup, ...] = tuple(
            make_shard_group(
                gid, len(members), group_f, seed, members=members, params=params
            )
            for gid, members in enumerate(assignment)
        )

    @property
    def group_sizes(self) -> tuple[int, ...]:
        return tuple(group.n for group in self.groups)

    def transport(self, kind: str, **kwargs: Any) -> Transport:
        """One shared transport multiplexing every group (``setup=None``)."""
        return make_transport(
            kind, None, seed=self.seed, shards=self.groups, **kwargs
        )

    def group_config(
        self,
        group: ShardGroup,
        *,
        epochs: int,
        rounds_per_epoch: int,
        transport: str,
        timeout: float,
    ) -> tuple:
        """The plain-value description a worker rebuilds the group from.

        Deliberately contains no key material: the worker re-derives the
        setup from ``(gid, n, f, universe seed)`` via
        :func:`~repro.net.sharding.make_shard_group`, which is exactly
        how this coordinator built it.
        """
        return (
            _CONFIG_TAG,
            _WIRE_VERSION,
            group.gid,
            group.n,
            group.f,
            self.seed,
            group.members,
            epochs,
            rounds_per_epoch,
            self.params,
            transport,
            timeout,
        )


# -- results -------------------------------------------------------------------------


@dataclass
class GroupResult:
    """One group's complete run: epochs, beacon stream, namespaced metrics."""

    gid: int
    members: tuple[int, ...]
    epoch_results: list[EpochResult]
    outputs: list[BeaconOutput]
    metrics: Metrics
    #: Per-group wall clock where separable (sequential/process modes);
    #: 0.0 in multiplexed mode, where groups share one event loop.
    wall_clock_s: float = 0.0

    @property
    def transcripts(self) -> dict[int, Any]:
        return {result.epoch: result.transcript for result in self.epoch_results}

    @property
    def agreed(self) -> bool:
        return bool(self.epoch_results) and all(
            result.agreed for result in self.epoch_results
        )


@dataclass(frozen=True)
class CombinedOutput:
    """One aggregated beacon round across all k groups."""

    epoch: int
    round: int
    #: Per-group VRF beacon values, gid order.
    values: tuple[int, ...]
    #: The service's single randomness output for this round.
    value: int


class ShardedBeacon:
    """Hash-combine k per-group beacon streams into one verified service.

    Every group contributes its chained threshold-VRF value for each
    (epoch, round); the combined output hashes them all, so it is
    unpredictable as long as *any* group's value is (an adversary
    controlling f of every group still biases nothing — per-group VRF
    uniqueness pins each contribution).  Verification recomputes each
    group's chain against its own transcripts plus the combination.
    """

    DOMAIN = "sharded-beacon"
    MODULUS = 1 << 128

    def __init__(self, groups: Sequence[ShardGroup]) -> None:
        self.groups = tuple(groups)

    @classmethod
    def combine_value(
        cls, epoch: int, round_index: int, values: Sequence[int]
    ) -> int:
        return hash_to_int(
            cls.DOMAIN, cls.MODULUS, epoch, round_index, tuple(values)
        )

    def combine(
        self, group_results: Sequence[GroupResult]
    ) -> list[CombinedOutput]:
        """Aggregate aligned per-group streams round by round."""
        if len(group_results) != len(self.groups):
            raise ValueError(
                f"expected {len(self.groups)} group results, "
                f"got {len(group_results)}"
            )
        lengths = {len(result.outputs) for result in group_results}
        if len(lengths) != 1:
            raise ValueError(f"misaligned beacon streams: lengths {lengths}")
        combined = []
        for index in range(lengths.pop()):
            rows = [result.outputs[index] for result in group_results]
            epoch, round_index = rows[0].epoch, rows[0].round
            if any(
                row.epoch != epoch or row.round != round_index for row in rows
            ):
                raise ValueError(
                    f"misaligned beacon streams at position {index}"
                )
            values = tuple(row.value for row in rows)
            combined.append(
                CombinedOutput(
                    epoch=epoch,
                    round=round_index,
                    values=values,
                    value=self.combine_value(epoch, round_index, values),
                )
            )
        return combined

    def verify(
        self,
        group_results: Sequence[GroupResult],
        combined: Sequence[CombinedOutput],
    ) -> bool:
        """Per-group chain verification plus combination recomputation."""
        if len(group_results) != len(self.groups):
            return False
        for group, result in zip(self.groups, group_results):
            beacon = RandomnessBeacon(group.setup)
            if not beacon.verify_chain(result.outputs, result.transcripts):
                return False
        try:
            expected = self.combine(group_results)
        except ValueError:
            return False
        return list(combined) == expected

    @classmethod
    def verify_chain(
        cls,
        group_runs: Sequence[tuple],
        combined: Sequence[CombinedOutput],
    ) -> bool:
        """Verify combined randomness across per-group *committee churn*.

        ``group_runs`` is one ``(outputs, contexts)`` pair per group in
        gid order — a group's chained beacon stream plus its per-epoch
        ``{epoch: (directory, transcript)}`` contexts, exactly what a
        :class:`~repro.service.membership.MembershipReport` exposes.
        Each group's chain is verified across its own handoffs (key
        invariance included) by
        :meth:`~repro.service.membership.ChurnBeacon.verify_chain`, then
        the combination is recomputed round by round.
        """
        from repro.service.membership import ChurnBeacon

        if not group_runs:
            return False
        for outputs, contexts in group_runs:
            if not ChurnBeacon.verify_chain(outputs, contexts):
                return False
        lengths = {len(outputs) for outputs, _ in group_runs}
        if len(lengths) != 1:
            return False
        expected = []
        for index in range(lengths.pop()):
            rows = [outputs[index] for outputs, _ in group_runs]
            epoch, round_index = rows[0].epoch, rows[0].round
            if any(
                row.epoch != epoch or row.round != round_index for row in rows
            ):
                return False
            values = tuple(row.value for row in rows)
            expected.append(
                CombinedOutput(
                    epoch=epoch,
                    round=round_index,
                    values=values,
                    value=cls.combine_value(epoch, round_index, values),
                )
            )
        return list(combined) == expected


# -- the metrics boundary ------------------------------------------------------------

#: Protocol-plane Metrics fields that are execution-mode-invariant (and
#: therefore the cross-mode differential gate).  Frame/wire accounting is
#: deliberately absent: coalescing legitimately differs between a shared
#: transport (cross-group envelopes share frames) and solo runs.
_VIEW_SCALARS = (
    "words_total",
    "messages_total",
    "bytes_total",
    "deliveries",
    "max_depth",
)
_VIEW_COUNTERS = (
    "words_by_layer",
    "messages_by_layer",
    "words_by_type",
    "messages_by_type",
    "bytes_by_type",
)
#: Work-counter views that are per-group (each group has its own
#: directory, hence its own verify cache and pairing group).  The
#: process-global ``encode`` memo is excluded: it is shared across
#: groups on a multiplexed transport and so not mode-comparable.
_VIEW_WORK = ("verify", "pairing")


def _metrics_view(metrics: Metrics) -> dict:
    """A Metrics' mode-invariant protocol plane as plain codec values."""
    view: dict[str, Any] = {name: getattr(metrics, name) for name in _VIEW_SCALARS}
    for name in _VIEW_COUNTERS:
        view[name] = dict(getattr(metrics, name))
    view["work"] = {name: metrics.counters(name) for name in _VIEW_WORK}
    return view


def _metrics_from_view(view: dict) -> Metrics:
    """Rebuild a namespaced Metrics from its plain-value view.

    All three execution modes pass through this (the worker's result
    crosses the process boundary as a view; multiplexed/sequential runs
    are normalized through the same function), so ``GroupResult.metrics``
    compares exactly across modes.
    """
    metrics = Metrics()
    for name in _VIEW_SCALARS:
        setattr(metrics, name, view[name])
    for name in _VIEW_COUNTERS:
        getattr(metrics, name).update(view[name])
    for name, counters in view["work"].items():
        metrics.attach_counters(name, lambda snap=dict(counters): dict(snap))
    return metrics


# -- solo group execution (sequential mode + the worker body) ------------------------


def _run_group_config(config: tuple) -> tuple:
    """Run one group solo from its plain-value config; plain-value result.

    This is the entire worker body — and sequential mode calls it
    in-process on the *decoded* config, so both sides of the process
    boundary execute literally the same function on literally the same
    values.
    """
    if (
        not isinstance(config, tuple)
        or len(config) != 12
        or config[0] != _CONFIG_TAG
        or config[1] != _WIRE_VERSION
    ):
        raise ValueError(f"malformed shard config: {config!r}")
    (
        _tag,
        _version,
        gid,
        n,
        f,
        seed,
        members,
        epochs,
        rounds_per_epoch,
        params,
        transport,
        timeout,
    ) = config
    group = make_shard_group(gid, n, f, seed, members=members, params=params)
    kwargs = {"delay_model": FixedDelay(1.0)} if transport == "sim" else {}
    runtime = make_transport(transport, group.setup, seed=group.seed, **kwargs)
    started = time.perf_counter()
    driver = EpochDriver(
        runtime,
        epochs=epochs,
        session_base=group.session_base,
        timeout=timeout,
        committee=members,
        threshold=group.setup.directory.f,
    )
    epoch_results = driver.run()
    if isinstance(runtime, Simulation):
        # Drain stragglers still in flight when the last session
        # completed: delivery counts are then a function of the traffic,
        # not of where the stop predicate happened to halt the run —
        # which is what makes them comparable across execution modes.
        runtime.run()
    wall = time.perf_counter() - started
    beacon = RandomnessBeacon(group.setup, rounds_per_epoch=rounds_per_epoch)
    for result in epoch_results:
        beacon.emit_epoch(result.epoch, result.transcript)
    return (
        _RESULT_TAG,
        _WIRE_VERSION,
        gid,
        tuple(
            (
                result.epoch,
                result.session,
                result.transcript,
                result.outputs,
                result.started_at,
                result.completed_at,
                result.committee,
                result.threshold,
            )
            for result in epoch_results
        ),
        tuple(
            (output.epoch, output.round, output.prev, output.value, output.evaluation)
            for output in beacon.outputs
        ),
        _metrics_view(runtime.metrics),
        wall,
    )


def _group_result_from_raw(group: ShardGroup, raw: tuple) -> GroupResult:
    """Rehydrate a solo run's plain-value result into a GroupResult."""
    if (
        not isinstance(raw, tuple)
        or len(raw) != 7
        or raw[0] != _RESULT_TAG
        or raw[1] != _WIRE_VERSION
        or raw[2] != group.gid
    ):
        raise ValueError(f"malformed shard result for group {group.gid}")
    _tag, _version, _gid, epoch_rows, output_rows, view, wall = raw
    epoch_results = [
        EpochResult(
            epoch=epoch,
            session=session,
            transcript=transcript,
            outputs=dict(outputs),
            started_at=started_at,
            completed_at=completed_at,
            committee=tuple(committee),
            threshold=threshold,
        )
        for (
            epoch,
            session,
            transcript,
            outputs,
            started_at,
            completed_at,
            committee,
            threshold,
        ) in epoch_rows
    ]
    outputs = [
        BeaconOutput(
            epoch=epoch, round=rnd, prev=prev, value=value, evaluation=evaluation
        )
        for epoch, rnd, prev, value, evaluation in output_rows
    ]
    return GroupResult(
        gid=group.gid,
        members=group.members,
        epoch_results=epoch_results,
        outputs=outputs,
        metrics=_metrics_from_view(view),
        wall_clock_s=wall,
    )


# -- the process-per-shard executor --------------------------------------------------

_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_SIZE = 0
_EXECUTOR_LOCK = threading.Lock()


def _warm() -> bool:
    """No-op task forcing worker forks before event loops/sockets exist."""
    return True


def _get_executor(workers: int) -> ProcessPoolExecutor:
    """The module-wide shard executor, grown (never shrunk) to ``workers``.

    Mirrors :mod:`repro.crypto.pool`'s discipline: fork context where
    available, shared across :class:`ShardExecutor` instances so repeated
    runs pay the fork cost once, warmed at creation.
    """
    global _EXECUTOR, _EXECUTOR_SIZE
    with _EXECUTOR_LOCK:
        if _EXECUTOR is None or _EXECUTOR_SIZE < workers:
            if _EXECUTOR is not None:
                _EXECUTOR.shutdown(wait=False, cancel_futures=True)
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = multiprocessing.get_context()
            _EXECUTOR = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            _EXECUTOR_SIZE = workers
            for _ in range(workers):
                _EXECUTOR.submit(_warm)
        return _EXECUTOR


def _discard_executor() -> None:
    global _EXECUTOR, _EXECUTOR_SIZE
    with _EXECUTOR_LOCK:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_SIZE = 0


def shutdown_shard_executor() -> None:
    """Tear down the shared shard executor (test isolation)."""
    _discard_executor()


def _shard_worker(blob: bytes) -> bytes:
    """Worker entry: codec-encoded config in, codec-encoded result out.

    Bytes are the only thing crossing the boundary in either direction —
    the same discipline as the verification pool: no live objects, no key
    material (the worker re-derives the group from the seed).
    """
    from repro.net import codec

    return codec.encode(_run_group_config(codec.decode(blob)))


class ShardExecutor:
    """Run group configs in worker processes, one group per task.

    A broken pool (worker killed mid-run, fork failure) marks the
    instance ``broken``, discards the shared executor and completes the
    batch inline — degraded to sequential wall-clock, byte-identical
    results (the inline path decodes the very blobs the workers would
    have received, so even the codec round-trip is shared).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("ShardExecutor needs at least one worker")
        self.workers = workers
        self.broken = False
        _get_executor(workers)  # pre-fork before any event loop exists

    def run(self, configs: Sequence[tuple]) -> list[tuple]:
        """Execute every config; results in config order."""
        from repro.net import codec

        blobs = [codec.encode(config) for config in configs]
        if not self.broken:
            try:
                executor = _get_executor(self.workers)
                futures = [executor.submit(_shard_worker, blob) for blob in blobs]
                return [codec.decode(future.result()) for future in futures]
            except BrokenProcessPool:
                self.broken = True
                _discard_executor()
        return [_run_group_config(codec.decode(blob)) for blob in blobs]


# -- multiplexed drivers -------------------------------------------------------------


def _run_multiplexed_sim(
    sim: Simulation,
    groups: Sequence[ShardGroup],
    *,
    epochs: int,
    max_steps_per_epoch: int = 5_000_000,
) -> dict[int, list[EpochResult]]:
    """Drive every group's epoch pipeline on one deterministic simulator.

    All groups' current epochs are in flight at once; whenever any
    session completes, that group's next epoch starts — so the simulated
    network always carries k concurrent session families (the scale-out
    analogue of ``EpochDriver``'s pipelining).
    """
    results: dict[int, list[EpochResult]] = {group.gid: [] for group in groups}
    pending: dict[int, tuple[int, int, float]] = {}
    for group in groups:
        sid = group.session_of(0)
        pending[sid] = (group.gid, 0, sim.time)
        sim.start_session(sid, _default_root_factory)
    budget = max_steps_per_epoch * epochs * max(1, len(groups))
    while pending:
        sim.run(
            max_steps=budget,
            stop=lambda s: any(s.session_complete(sid) for sid in pending),
        )
        done = [sid for sid in pending if sim.session_complete(sid)]
        if not done:
            raise RuntimeError(
                f"simulation quiesced with incomplete shard sessions "
                f"{sorted(pending)}"
            )
        for sid in sorted(done):
            gid, epoch, started = pending.pop(sid)
            outputs = sim.honest_results(sid)
            values = list(outputs.values())
            if not values or any(v != values[0] for v in values):
                raise RuntimeError(
                    f"honest parties disagree in shard session {sid}"
                )
            results[gid].append(
                EpochResult(
                    epoch=epoch,
                    session=sid,
                    transcript=values[0],
                    outputs=outputs,
                    started_at=started,
                    completed_at=sim.honest_completion_time(sid),
                    committee=groups[gid].members,
                    threshold=groups[gid].setup.directory.f,
                )
            )
            sim.collect_session(sid)
            nxt = epoch + 1
            if nxt < epochs:
                group = groups[gid]
                next_sid = group.session_of(nxt)
                pending[next_sid] = (gid, nxt, sim.time)
                sim.start_session(next_sid, _default_root_factory)
    # Drain to quiescence so straggler deliveries (in flight when their
    # session completed) are metered in every mode alike.
    sim.run(max_steps=budget)
    return results


async def _run_multiplexed_realtime(
    transport: RealtimeTransport,
    groups: Sequence[ShardGroup],
    *,
    epochs: int,
    timeout: float,
) -> dict[int, list[EpochResult]]:
    """Drive every group concurrently on one live realtime transport."""
    root_factory = _default_root_factory
    loop = asyncio.get_running_loop()
    origin = loop.time()

    async def drive(group: ShardGroup) -> list[EpochResult]:
        collected: list[EpochResult] = []
        for epoch in range(epochs):
            sid = group.session_of(epoch)
            started = loop.time() - origin
            transport.start_session(sid, root_factory)
            outputs = await transport.wait_session(sid, timeout=timeout)
            values = list(outputs.values())
            if not values or any(v != values[0] for v in values):
                raise RuntimeError(
                    f"honest parties disagree in shard session {sid}"
                )
            completed = transport.session_completion_times.get(sid)
            now = (completed if completed is not None else loop.time()) - origin
            collected.append(
                EpochResult(
                    epoch=epoch,
                    session=sid,
                    transcript=values[0],
                    outputs=outputs,
                    started_at=started,
                    completed_at=now,
                    committee=group.members,
                    threshold=group.setup.directory.f,
                )
            )
            transport.collect_session(sid)
        return collected

    await asyncio.wait_for(transport.open(), timeout=timeout)
    try:
        per_group = await asyncio.gather(*(drive(group) for group in groups))
    finally:
        await transport.close()
    return {group.gid: results for group, results in zip(groups, per_group)}


def _run_multiplexed(
    coordinator: GroupCoordinator,
    *,
    transport: str,
    epochs: int,
    rounds_per_epoch: int,
    timeout: float,
) -> list[GroupResult]:
    kwargs = {"delay_model": FixedDelay(1.0)} if transport == "sim" else {}
    runtime = coordinator.transport(transport, **kwargs)
    if isinstance(runtime, Simulation):
        epoch_map = _run_multiplexed_sim(
            runtime, coordinator.groups, epochs=epochs
        )
    elif isinstance(runtime, RealtimeTransport):
        epoch_map = asyncio.run(
            _run_multiplexed_realtime(
                runtime, coordinator.groups, epochs=epochs, timeout=timeout
            )
        )
    else:  # pragma: no cover - make_transport only builds the above
        raise TypeError(f"unsupported transport {type(runtime).__name__!r}")
    group_results = []
    for group in coordinator.groups:
        beacon = RandomnessBeacon(group.setup, rounds_per_epoch=rounds_per_epoch)
        epoch_results = epoch_map[group.gid]
        for result in epoch_results:
            beacon.emit_epoch(result.epoch, result.transcript)
        group_results.append(
            GroupResult(
                gid=group.gid,
                members=group.members,
                epoch_results=epoch_results,
                outputs=list(beacon.outputs),
                metrics=_metrics_from_view(
                    _metrics_view(runtime.shard_metrics[group.gid])
                ),
            )
        )
    return group_results


# -- the one-call service entry point ------------------------------------------------


@dataclass
class ShardReport:
    """Everything one ``run_sharded`` invocation produced and measured."""

    universe: int
    groups: int
    group_sizes: tuple[int, ...]
    mode: str
    transport: str
    epochs: int
    rounds_per_epoch: int
    seed: int
    group_results: list[GroupResult] = field(default_factory=list)
    combined: list[CombinedOutput] = field(default_factory=list)
    all_verified: bool = False
    #: Order-independent merge of the per-group namespaced metrics.
    merged: Metrics = field(default_factory=Metrics)
    wall_clock_s: float = 0.0
    #: True when process mode degraded to inline on a broken pool.
    executor_fallback: bool = False

    @property
    def agreed(self) -> bool:
        return bool(self.group_results) and all(
            result.agreed for result in self.group_results
        )

    def summary(self) -> dict:
        return {
            "universe": self.universe,
            "groups": self.groups,
            "group_sizes": list(self.group_sizes),
            "mode": self.mode,
            "transport": self.transport,
            "epochs": self.epochs,
            "rounds": len(self.combined),
            "all_verified": self.all_verified,
            "wall_clock_s": round(self.wall_clock_s, 3),
            "words_total": self.merged.words_total,
            "messages_total": self.merged.messages_total,
            "bytes_total": self.merged.bytes_total,
            "per_group_words": [
                result.metrics.words_total for result in self.group_results
            ],
            "combined_values": [output.value for output in self.combined],
            "executor_fallback": self.executor_fallback,
        }


def run_sharded(
    universe: int = 8,
    groups: int = 2,
    *,
    group_f: Optional[int] = None,
    epochs: int = 1,
    rounds_per_epoch: int = 2,
    transport: str = "sim",
    mode: str = "multiplexed",
    seed: int = 0,
    params: str = "TESTING",
    timeout: float = 120.0,
    workers: Optional[int] = None,
) -> ShardReport:
    """Run k DKG groups to one combined randomness service.

    ``mode`` selects where the groups execute (``multiplexed`` on one
    shared transport, ``sequential`` solo one-by-one, ``process`` in a
    worker pool of ``workers`` — default one per group); per-group
    results are byte-identical across modes.  ``transport`` applies to
    the shared transport in multiplexed mode and to each solo transport
    otherwise.
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}; choose from {SHARD_MODES}")
    coordinator = GroupCoordinator(
        universe, groups, group_f=group_f, seed=seed, params=params
    )
    executor_fallback = False
    started = time.perf_counter()
    if mode == "multiplexed":
        group_results = _run_multiplexed(
            coordinator,
            transport=transport,
            epochs=epochs,
            rounds_per_epoch=rounds_per_epoch,
            timeout=timeout,
        )
    else:
        configs = [
            coordinator.group_config(
                group,
                epochs=epochs,
                rounds_per_epoch=rounds_per_epoch,
                transport=transport,
                timeout=timeout,
            )
            for group in coordinator.groups
        ]
        if mode == "process":
            executor = ShardExecutor(workers or len(coordinator.groups))
            raws = executor.run(configs)
            executor_fallback = executor.broken
        else:
            raws = [_run_group_config(config) for config in configs]
        group_results = [
            _group_result_from_raw(group, raw)
            for group, raw in zip(coordinator.groups, raws)
        ]
    wall_clock_s = time.perf_counter() - started

    sharded = ShardedBeacon(coordinator.groups)
    combined = sharded.combine(group_results)
    all_verified = all(
        result.agreed for result in group_results
    ) and sharded.verify(group_results, combined)

    return ShardReport(
        universe=universe,
        groups=groups,
        group_sizes=coordinator.group_sizes,
        mode=mode,
        transport=transport,
        epochs=epochs,
        rounds_per_epoch=rounds_per_epoch,
        seed=seed,
        group_results=group_results,
        combined=combined,
        all_verified=all_verified,
        merged=Metrics.merged(result.metrics for result in group_results),
        wall_clock_s=wall_clock_s,
        executor_fallback=executor_fallback,
    )


# -- sharded churn: per-group handoffs, one combined chain ---------------------------


@dataclass
class ShardChurnReport:
    """k groups, each surviving committee churn, one combined beacon."""

    universe: int
    groups: int
    transport: str
    epochs: int
    rounds_per_epoch: int
    seed: int
    #: Universe party ids per group (gid order).
    group_members: tuple[tuple[int, ...], ...] = ()
    #: Per-group churn runs (``repro.service.membership.ChurnReport``).
    group_reports: list = field(default_factory=list)
    combined: list[CombinedOutput] = field(default_factory=list)
    all_verified: bool = False
    wall_clock_s: float = 0.0

    @property
    def key_invariant(self) -> bool:
        return bool(self.group_reports) and all(
            report.key_invariant for report in self.group_reports
        )

    def committees(self, gid: int) -> list[tuple[int, ...]]:
        """Per-epoch committees of group ``gid`` as *universe* party ids."""
        members = self.group_members[gid]
        return [
            tuple(members[local] for local in result.committee)
            for result in self.group_reports[gid].membership.results
        ]


def run_sharded_churn(
    universe: int = 10,
    groups: int = 2,
    *,
    epochs: int = 3,
    churn: Optional[str] = None,
    events: Sequence = (),
    base_f: Optional[int] = None,
    rounds_per_epoch: int = 2,
    transport: str = "sim",
    seed: int = 0,
    params: str = "TESTING",
    timeout: float = 120.0,
    crash: Optional[dict] = None,
    chaos: Optional[dict] = None,
) -> ShardChurnReport:
    """Drive per-group key handoffs: every shard's key survives its churn.

    The universe is partitioned exactly as :func:`run_sharded` partitions
    it; each group then runs the *same* churn schedule on its own local
    indices (``join:2@1`` means "local party 2 of each group joins") so
    group sizes stay aligned and the per-round beacon streams combine.
    ``crash``/``chaos`` overlays apply to every group's matching epoch.
    The combined chain is verified with :meth:`ShardedBeacon.verify_chain`
    — per-group key invariance across handoffs plus combination
    recomputation.
    """
    from repro.net.sharding import group_seed
    from repro.service.membership import parse_churn, run_churn

    resolved_events = tuple(events)
    if churn is not None:
        resolved_events += parse_churn(churn)
    assignment = partition_universe(universe, groups, seed)
    started = time.perf_counter()
    group_reports = []
    for gid, members in enumerate(assignment):
        group_reports.append(
            run_churn(
                len(members),
                epochs=epochs,
                events=resolved_events,
                base_f=base_f,
                rounds_per_epoch=rounds_per_epoch,
                transport=transport,
                seed=group_seed(seed, gid),
                params=params,
                session=f"sharded-churn-{gid}",
                timeout=timeout,
                crash=crash,
                chaos=chaos,
            )
        )
    wall_clock_s = time.perf_counter() - started
    combined = []
    rounds = len(group_reports[0].outputs)
    for index in range(rounds):
        rows = [report.outputs[index] for report in group_reports]
        epoch, round_index = rows[0].epoch, rows[0].round
        values = tuple(row.value for row in rows)
        combined.append(
            CombinedOutput(
                epoch=epoch,
                round=round_index,
                values=values,
                value=ShardedBeacon.combine_value(epoch, round_index, values),
            )
        )
    group_runs = [
        (report.outputs, report.membership.contexts) for report in group_reports
    ]
    all_verified = all(
        report.all_verified for report in group_reports
    ) and ShardedBeacon.verify_chain(group_runs, combined)
    return ShardChurnReport(
        universe=universe,
        groups=groups,
        transport=transport,
        epochs=epochs,
        rounds_per_epoch=rounds_per_epoch,
        seed=seed,
        group_members=tuple(tuple(members) for members in assignment),
        group_reports=group_reports,
        combined=combined,
        all_verified=all_verified,
        wall_clock_s=wall_clock_s,
    )
