"""Epoch pipelining: repeated root-protocol runs over one live network.

An *epoch* is one complete run of a root protocol (by default the ADKG)
in its own session.  The :class:`EpochDriver` keeps up to
``pipeline_depth`` epochs in flight at once: epoch ``e + depth`` is
injected the moment epoch ``e`` completes, so the expensive early phase
of a fresh epoch (PVSS dealing and share verification) overlaps the
agreement tail of the epochs ahead of it.  With ``pipeline_depth=1``
epochs run strictly back-to-back — the baseline the session benchmark
compares against.

The driver is transport-generic: on the deterministic simulator it
advances simulated time session-by-session; on the realtime runtimes
(asyncio, TCP) it opens the network once, injects sessions while traffic
is flowing and awaits each session's completion future.  Either way a
completed epoch's protocol state (instance tree, pending buffers,
condition registry at every party) is garbage-collected before the next
epoch is admitted, so a service running thousands of epochs holds state
only for the sliding window.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.party import Party
from repro.net.protocol import Protocol
from repro.net.runtime import Simulation
from repro.net.transport import RealtimeTransport, Transport

__all__ = ["EpochDriver", "EpochResult"]


def _default_root_factory(party: Party) -> Protocol:
    from repro.core.adkg import ADKG

    return ADKG()


@dataclass
class EpochResult:
    """One completed epoch: the agreed value plus completion timing.

    ``started_at``/``completed_at`` are in the transport's native time
    units — simulated time on the simulator (the asynchronous round
    measure under ``FixedDelay``), wall-clock seconds since the driver
    started on realtime transports.
    """

    epoch: int
    session: int
    transcript: Any
    outputs: dict[int, Any]
    started_at: float
    completed_at: float
    #: Who held the key this epoch: universe-level member ids (defaults
    #: to the transport's full party range for fixed-committee runs) and
    #: the epoch's fault threshold ``f``.  Reports and the beacon chain
    #: record these so an observer can audit *who* signed each epoch.
    committee: tuple = ()
    threshold: int = -1

    @property
    def public_key(self) -> Any:
        return getattr(self.transcript, "public_key", None)

    @property
    def latency(self) -> float:
        return self.completed_at - self.started_at

    @property
    def agreed(self) -> bool:
        values = list(self.outputs.values())
        return bool(values) and all(v == values[0] for v in values)


class EpochDriver:
    """Run ``epochs`` root-protocol sessions, ``pipeline_depth`` at a time."""

    def __init__(
        self,
        transport: Transport,
        *,
        epochs: int,
        pipeline_depth: int = 1,
        root_factory: Optional[Callable[[Party], Protocol]] = None,
        session_base: int = 0,
        gc_completed: bool = True,
        timeout: float = 120.0,
        max_steps_per_epoch: int = 5_000_000,
        committee: Optional[tuple] = None,
        threshold: Optional[int] = None,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self.transport = transport
        self.epochs = epochs
        self.pipeline_depth = pipeline_depth
        self.root_factory = root_factory or _default_root_factory
        self.session_base = session_base
        self.gc_completed = gc_completed
        self.timeout = timeout
        self.max_steps_per_epoch = max_steps_per_epoch
        self.committee = tuple(committee) if committee is not None else None
        self.threshold = threshold
        self.results: list[EpochResult] = []
        self._started_at: dict[int, float] = {}

    def session_of(self, epoch: int) -> int:
        return self.session_base + epoch

    # -- driving -----------------------------------------------------------------------

    def run(self) -> list[EpochResult]:
        """Run all epochs to completion; returns them in epoch order."""
        if isinstance(self.transport, Simulation):
            return self._run_sim()
        if isinstance(self.transport, RealtimeTransport):
            return asyncio.run(self.run_async())
        raise TypeError(
            f"unsupported transport {type(self.transport).__name__!r}"
        )

    def _run_sim(self) -> list[EpochResult]:
        sim = self.transport
        for epoch in range(min(self.pipeline_depth, self.epochs)):
            self._start_epoch(epoch, now=sim.time)
        for epoch in range(self.epochs):
            sid = self.session_of(epoch)
            sim.run_until_session_done(sid, max_steps=self.max_steps_per_epoch)
            self._finish_epoch(epoch, now=sim.honest_completion_time(sid))
            nxt = epoch + self.pipeline_depth
            if nxt < self.epochs:
                self._start_epoch(nxt, now=sim.time)
        return self.results

    async def run_async(self) -> list[EpochResult]:
        """Drive a realtime transport (must run inside its event loop)."""
        transport = self.transport
        if not isinstance(transport, RealtimeTransport):
            raise TypeError("run_async requires a realtime transport")
        loop = asyncio.get_running_loop()
        origin = loop.time()
        await asyncio.wait_for(transport.open(), timeout=self.timeout)
        try:
            for epoch in range(min(self.pipeline_depth, self.epochs)):
                self._start_epoch(epoch, now=loop.time() - origin)
            for epoch in range(self.epochs):
                sid = self.session_of(epoch)
                await transport.wait_session(sid, timeout=self.timeout)
                # Use the transport's completion stamp: a pipelined epoch
                # awaited out of order completed before we observed it.
                completed = transport.session_completion_times.get(sid)
                now = (completed if completed is not None else loop.time()) - origin
                self._finish_epoch(epoch, now=now)
                nxt = epoch + self.pipeline_depth
                if nxt < self.epochs:
                    self._start_epoch(nxt, now=loop.time() - origin)
        finally:
            await transport.close()
        return self.results

    # -- bookkeeping -------------------------------------------------------------------

    def _start_epoch(self, epoch: int, now: float) -> None:
        sid = self.session_of(epoch)
        self._started_at[epoch] = now
        self.transport.start_session(sid, self.root_factory)

    def _finish_epoch(self, epoch: int, now: float) -> None:
        sid = self.session_of(epoch)
        outputs = self.transport.honest_results(sid)
        values = list(outputs.values())
        if not values or any(v != values[0] for v in values):
            # Agreement is Theorem 5; a split here is an engine bug, not
            # a condition to paper over.
            raise RuntimeError(f"honest parties disagree in session {sid}")
        committee = self.committee
        if committee is None:
            committee = tuple(range(getattr(self.transport, "n", len(outputs))))
        threshold = self.threshold
        if threshold is None:
            threshold = getattr(self.transport, "f", -1)
        result = EpochResult(
            epoch=epoch,
            session=sid,
            transcript=values[0],
            outputs=outputs,
            started_at=self._started_at[epoch],
            completed_at=now,
            committee=committee,
            threshold=threshold,
        )
        self.results.append(result)
        if self.gc_completed:
            self.transport.collect_session(sid)
