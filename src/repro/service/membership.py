"""Dynamic membership: committee churn with a proactively reshared key.

The production story the ROADMAP asks for: one group key that *outlives*
any particular committee.  A :class:`MembershipSchedule` describes how a
universe of keyed parties rotates through per-epoch committees (joins,
leaves, threshold changes); the :class:`MembershipDriver` runs epoch 0
as a fresh ADKG and every later epoch as a
:class:`~repro.core.reshare.ReshareAgreement` handoff session on the
*new* committee's own transport — the old committee's dealings
(:func:`repro.crypto.reshare.deal_reshare`) are published before the
handoff and injected as initial inputs, so departing parties need not
stick around.  Per-epoch faults compose: a crash-recover overlay runs
the handoff through :func:`repro.storage.recovery.run_crash_recovery`
(PR 5's WAL machinery rehydrates a party mid-handoff) and a chaos spec
(PR 7) attaches to that epoch's transport; either way the acceptance
invariant is the same — **the group public key is byte-identical before
and after every handoff**.

:class:`ChurnBeacon` extends the randomness beacon across committee
changes: each epoch's rounds are evaluated under that epoch's directory
(the per-epoch session label domain-separates VRF inputs) and chained
through ``prev`` links from genesis, so one verification walk spans
every handoff.
"""

from __future__ import annotations

import random
import re
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.adkg import ADKG
from repro.core.reshare import ReshareAgreement
from repro.crypto import reshare, threshold_vrf as tvrf
from repro.crypto.keys import PartySecret, PublicDirectory, TrustedSetup
from repro.net.delays import FixedDelay
from repro.net.party import Party
from repro.net.protocol import Protocol
from repro.net.transport import make_transport
from repro.service.beacon import GENESIS, BeaconOutput
from repro.service.epochs import EpochDriver, EpochResult

__all__ = [
    "ChurnBeacon",
    "ChurnEvent",
    "ChurnReport",
    "EpochSpec",
    "MembershipDriver",
    "MembershipSchedule",
    "committee_setup",
    "parse_churn",
    "run_churn",
]


# -- schedules -----------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change: ``join``/``leave`` a party or set ``threshold``."""

    kind: str
    value: int
    epoch: int

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave", "threshold"):
            raise ValueError(f"unknown churn event kind {self.kind!r}")
        if self.epoch < 1:
            raise ValueError(
                "churn events apply from epoch 1 on (epoch 0 is the fresh ADKG)"
            )


_EVENT_RE = re.compile(r"^(join|leave|threshold):(\d+)@(\d+)$")


def parse_churn(spec: str) -> tuple[ChurnEvent, ...]:
    """Parse the CLI mini-language: ``join:7@1;leave:2@2;threshold:1@3``.

    Each clause is ``kind:value@epoch`` — party id for join/leave, the
    new ``f`` for threshold — applied when entering that epoch.
    """
    events = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        match = _EVENT_RE.match(clause)
        if match is None:
            raise ValueError(
                f"bad churn clause {clause!r} (want kind:value@epoch, "
                "kind in join/leave/threshold)"
            )
        kind, value, epoch = match.groups()
        events.append(ChurnEvent(kind=kind, value=int(value), epoch=int(epoch)))
    if not events:
        raise ValueError("empty churn spec")
    return tuple(events)


@dataclass(frozen=True)
class EpochSpec:
    """One epoch's committee: universe member ids plus its threshold."""

    epoch: int
    members: tuple[int, ...]
    f: int

    @property
    def n(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class MembershipSchedule:
    """A fully resolved per-epoch committee plan over a party universe."""

    universe_n: int
    epochs: tuple[EpochSpec, ...]

    @classmethod
    def build(
        cls,
        universe_n: int,
        epochs: int,
        events: Sequence[ChurnEvent] = (),
        *,
        base_members: Optional[Sequence[int]] = None,
        base_f: Optional[int] = None,
    ) -> "MembershipSchedule":
        """Resolve events into concrete committees, validating every epoch.

        ``base_members`` defaults to the whole universe *minus* parties
        that join later — so a plain ``join:…`` spec works without
        hand-picking the starting committee.  Every epoch must satisfy
        ``n >= 3f + 1``; a leave-heavy schedule needs a ``threshold``
        event (or a smaller ``base_f``) to stay valid, and the error
        says so rather than silently adjusting.
        """
        if epochs < 1:
            raise ValueError("need at least one epoch")
        for event in events:
            if event.epoch >= epochs:
                raise ValueError(
                    f"event {event} is beyond the last epoch {epochs - 1}"
                )
            if event.kind in ("join", "leave") and not 0 <= event.value < universe_n:
                raise ValueError(f"event {event} names a party outside the universe")
        if base_members is None:
            joiners = {e.value for e in events if e.kind == "join"}
            base_members = [m for m in range(universe_n) if m not in joiners]
        members = list(dict.fromkeys(base_members))
        if len(members) != len(list(base_members)):
            raise ValueError("duplicate base members")
        if any(not 0 <= m < universe_n for m in members):
            raise ValueError("base member outside the universe")
        f = base_f if base_f is not None else (len(members) - 1) // 3
        specs = []
        for epoch in range(epochs):
            for event in events:
                if event.epoch != epoch:
                    continue
                if event.kind == "join":
                    if event.value in members:
                        raise ValueError(f"{event}: party already a member")
                    members.append(event.value)
                elif event.kind == "leave":
                    if event.value not in members:
                        raise ValueError(f"{event}: party not a member")
                    members.remove(event.value)
                else:
                    f = event.value
            if len(members) < 3 * f + 1:
                raise ValueError(
                    f"epoch {epoch}: n={len(members)} < 3f+1 with f={f}; "
                    "add a threshold event or shrink base_f"
                )
            specs.append(EpochSpec(epoch=epoch, members=tuple(members), f=f))
        return cls(universe_n=universe_n, epochs=tuple(specs))

    def __iter__(self):
        return iter(self.epochs)

    def __len__(self) -> int:
        return len(self.epochs)


def committee_setup(
    universe: TrustedSetup,
    members: Sequence[int],
    f: int,
    session: str,
) -> TrustedSetup:
    """Slice the universe PKI down to one epoch's committee.

    Parties keep their long-lived universe keys; only the *local* index
    changes (directory positions are committee-relative, exactly as a
    shard group's are).  The per-epoch ``session`` label domain-separates
    every signature, SCRAPE seed and VRF input of the epoch.
    """
    base = universe.directory
    members = tuple(members)
    directory = PublicDirectory(
        n=len(members),
        f=f,
        params=base.params,
        sign_group=base.sign_group,
        pair_group=base.pair_group,
        sign_pks=tuple(base.sign_pks[m] for m in members),
        enc_pks=tuple(base.enc_pks[m] for m in members),
        session=session,
    )
    secrets = tuple(
        PartySecret(
            index=local,
            sign=universe.secret(member).sign,
            enc_sk=universe.secret(member).enc_sk,
        )
        for local, member in enumerate(members)
    )
    return TrustedSetup(directory, secrets)


# -- the driver ----------------------------------------------------------------------


@dataclass
class MembershipReport:
    """Everything one membership run produced: epochs, key, fault overlays."""

    universe_n: int
    transport: str
    seed: int
    schedule: MembershipSchedule
    results: list[EpochResult] = field(default_factory=list)
    #: Per-epoch committee setups (runtime objects; needed to verify the
    #: churn beacon and to chain further handoffs).
    setups: dict[int, TrustedSetup] = field(default_factory=dict)
    key: Any = None
    key_encoded: bytes = b""
    key_invariant: bool = False
    crash_epochs: tuple[int, ...] = ()
    chaos_epochs: tuple[int, ...] = ()
    replay: dict = field(default_factory=dict)
    wall_clock_s: float = 0.0

    @property
    def agreed(self) -> bool:
        return bool(self.results) and all(r.agreed for r in self.results)

    @property
    def handoffs(self) -> int:
        return max(0, len(self.results) - 1)

    @property
    def contexts(self) -> dict[int, tuple[PublicDirectory, Any]]:
        """Per-epoch ``(directory, transcript)`` for beacon verification."""
        return {
            result.epoch: (
                self.setups[result.epoch].directory,
                result.transcript,
            )
            for result in self.results
        }


class MembershipDriver:
    """Run a membership schedule: ADKG once, then reshare handoffs.

    ``chaos`` and ``crash`` are per-epoch overlays: ``chaos`` maps epoch
    → a chaos spec (anything :func:`repro.net.chaos.coerce_chaos`
    accepts) attached to that epoch's transport; ``crash`` maps epoch →
    ``{"indices": (i, ...), "after": deliveries, "delay": t}`` and runs
    that epoch through the PR 5 crash-recovery machinery, WAL-ing the
    handoff state of the crashed parties.
    """

    def __init__(
        self,
        universe: TrustedSetup,
        schedule: MembershipSchedule,
        *,
        transport: str = "sim",
        seed: int = 0,
        session_base: Optional[str] = None,
        timeout: float = 120.0,
        max_steps: int = 5_000_000,
        chaos: Optional[dict] = None,
        crash: Optional[dict] = None,
        cadence: int = 16,
        storage_dir: Optional[str] = None,
    ) -> None:
        self.universe = universe
        self.schedule = schedule
        self.transport = transport
        self.seed = seed
        self.session_base = (
            session_base
            if session_base is not None
            else f"{universe.directory.session}-churn-{seed}"
        )
        self.timeout = timeout
        self.max_steps = max_steps
        self.chaos = dict(chaos or {})
        self.crash = dict(crash or {})
        self.cadence = cadence
        self.storage_dir = storage_dir

    # -- deterministic derivations ---------------------------------------------------

    def epoch_session(self, epoch: int) -> str:
        return f"{self.session_base}-epoch-{epoch}"

    def epoch_seed(self, epoch: int) -> int:
        # Distinct per epoch so per-party RNG streams never repeat
        # across the fresh transports of consecutive epochs.
        return self.seed * 1009 + epoch

    def handoff_spec(
        self, epoch: int, old: TrustedSetup, old_transcript: Any
    ) -> reshare.HandoffSpec:
        return reshare.HandoffSpec(
            epoch=epoch,
            old_session=old.directory.session,
            old_n=old.directory.n,
            old_f=old.directory.f,
            old_sign_pks=old.directory.sign_pks,
            old_commitments=old_transcript.commitments,
        )

    def dealings(
        self, spec: reshare.HandoffSpec, old: TrustedSetup, new: TrustedSetup
    ) -> tuple[reshare.ReshareDealing, ...]:
        """Every old member's dealing, derived from per-dealer seeded RNG.

        "Published before leaving": the driver collects these from the
        old committee up front, so the handoff session never depends on
        a departed party being reachable.
        """
        return tuple(
            reshare.deal_reshare(
                new.directory,
                spec,
                old.secret(dealer),
                random.Random(
                    ("reshare-deal", self.seed, spec.epoch, dealer).__repr__()
                ),
            )
            for dealer in range(old.directory.n)
        )

    @staticmethod
    def initial_holdings(
        dealings: Sequence[reshare.ReshareDealing], new_n: int
    ) -> dict[int, tuple]:
        """Round-robin assignment of published dealings to new parties.

        Every dealing lands at exactly one initial holder, who fans it
        out on start; with ``n_old ≥ 3 f_old + 1`` dealings spread over
        the committee, ``f_old + 1`` of them survive any tolerated fault
        pattern (a tampered relay fails the dealer's signature).
        """
        holdings: dict[int, list] = {j: [] for j in range(new_n)}
        for index, dealing in enumerate(dealings):
            holdings[index % new_n].append(dealing)
        return {j: tuple(ds) for j, ds in holdings.items()}

    # -- epoch execution -------------------------------------------------------------

    def run(self) -> MembershipReport:
        started = time.perf_counter()
        report = MembershipReport(
            universe_n=self.universe.directory.n,
            transport=self.transport,
            seed=self.seed,
            schedule=self.schedule,
            crash_epochs=tuple(sorted(self.crash)),
            chaos_epochs=tuple(sorted(self.chaos)),
        )
        group = self.universe.directory.pair_group
        prev_setup: Optional[TrustedSetup] = None
        prev_transcript: Any = None
        for spec in self.schedule:
            setup = committee_setup(
                self.universe, spec.members, spec.f, self.epoch_session(spec.epoch)
            )
            if spec.epoch == 0:
                root_factory: Any = lambda party: ADKG()
            else:
                hspec = self.handoff_spec(spec.epoch, prev_setup, prev_transcript)
                holdings = self.initial_holdings(
                    self.dealings(hspec, prev_setup, setup), spec.n
                )

                def root_factory(
                    party: Party, _spec=hspec, _holdings=holdings
                ) -> Protocol:
                    return ReshareAgreement(
                        spec=_spec, initial=_holdings[party.index]
                    )

            if spec.epoch in self.crash:
                result = self._run_crash_epoch(spec, setup, root_factory, report)
            else:
                result = self._run_epoch(spec, setup, root_factory)
            report.results.append(result)
            report.setups[spec.epoch] = setup
            prev_setup, prev_transcript = setup, result.transcript
        report.key = report.results[0].public_key
        report.key_encoded = group.encode_element(report.key)
        report.key_invariant = all(
            group.encode_element(result.public_key) == report.key_encoded
            for result in report.results
        )
        report.wall_clock_s = time.perf_counter() - started
        return report

    def _run_epoch(
        self, spec: EpochSpec, setup: TrustedSetup, root_factory: Any
    ) -> EpochResult:
        kwargs: dict[str, Any] = {}
        if self.transport == "sim":
            kwargs["delay_model"] = FixedDelay(1.0)
        chaos = self.chaos.get(spec.epoch)
        if chaos is not None:
            kwargs["chaos"] = chaos
        runtime = make_transport(
            self.transport, setup, seed=self.epoch_seed(spec.epoch), **kwargs
        )
        driver = EpochDriver(
            runtime,
            epochs=1,
            root_factory=root_factory,
            timeout=self.timeout,
            max_steps_per_epoch=self.max_steps,
            committee=spec.members,
            threshold=spec.f,
        )
        result = driver.run()[0]
        return EpochResult(
            epoch=spec.epoch,
            session=result.session,
            transcript=result.transcript,
            outputs=result.outputs,
            started_at=result.started_at,
            completed_at=result.completed_at,
            committee=spec.members,
            threshold=spec.f,
        )

    def _run_crash_epoch(
        self,
        spec: EpochSpec,
        setup: TrustedSetup,
        root_factory: Any,
        report: MembershipReport,
    ) -> EpochResult:
        from repro.storage.recovery import run_crash_recovery

        config = dict(self.crash[spec.epoch])
        crash_report = run_crash_recovery(
            transport=self.transport,
            n=spec.n,
            seed=self.epoch_seed(spec.epoch),
            crash_indices=tuple(config.get("indices", (0,))),
            crash_after=int(config.get("after", 20)),
            recovery_delay=float(config.get("delay", 3.0)),
            cadence=self.cadence,
            root_factory=root_factory,
            setup=setup,
            storage_dir=self.storage_dir,
            timeout=self.timeout,
            max_steps=self.max_steps,
            chaos=self.chaos.get(spec.epoch),
        )
        if not crash_report["agreement"]:
            raise RuntimeError(
                f"crash-recovery epoch {spec.epoch} ended without agreement"
            )
        report.replay[spec.epoch] = crash_report["replay"]
        return EpochResult(
            epoch=spec.epoch,
            session=0,
            transcript=crash_report["transcript"],
            outputs=dict(crash_report["outputs"]),
            started_at=0.0,
            completed_at=crash_report["rounds"],
            committee=spec.members,
            threshold=spec.f,
        )


# -- the churn beacon ----------------------------------------------------------------


class ChurnBeacon:
    """A genesis-rooted beacon chain spanning committee changes.

    Unlike :class:`~repro.service.beacon.RandomnessBeacon` (one setup for
    every epoch), each epoch here evaluates under its *own* directory —
    the per-epoch session label feeds the VRF message point, and the
    transcript is either the fresh ADKG's or a reshared one (both expose
    ``public_key``/``share_commitment``, and
    :func:`~repro.crypto.threshold_vrf.EvalSh` dispatches on the kind).
    The ``prev`` links cross handoffs, so the chain proves continuity of
    the one invariant group key through every committee.
    """

    def __init__(self, *, rounds_per_epoch: int = 2) -> None:
        if rounds_per_epoch < 1:
            raise ValueError("rounds_per_epoch must be >= 1")
        self.rounds_per_epoch = rounds_per_epoch
        self.outputs: list[BeaconOutput] = []
        self._prev = GENESIS

    @staticmethod
    def _transcript_valid(directory: PublicDirectory, transcript: Any) -> bool:
        if isinstance(transcript, reshare.ReshareTranscript):
            return reshare.verify_reshared(directory, transcript)
        return tvrf.DKGVerify(directory, transcript)

    def emit_epoch(
        self,
        epoch: int,
        setup: TrustedSetup,
        transcript: Any,
        *,
        signers: Optional[Sequence[int]] = None,
    ) -> list[BeaconOutput]:
        directory = setup.directory
        if not self._transcript_valid(directory, transcript):
            raise ValueError(f"epoch {epoch} transcript does not verify")
        chosen = (
            tuple(signers)
            if signers is not None
            else tuple(range(directory.f + 1))
        )
        emitted = []
        for round_index in range(self.rounds_per_epoch):
            message = ("beacon", epoch, round_index, self._prev)
            shares = []
            for signer in chosen:
                share = tvrf.EvalSh(
                    directory, setup.secret(signer), transcript, message
                )
                if tvrf.EvalShVerify(
                    directory, transcript, signer, message, share
                ):
                    shares.append(share)
            evaluation, proof = tvrf.Eval(directory, transcript, message, shares)
            if not tvrf.EvalVerify(
                directory, transcript, message, evaluation, proof
            ):
                raise RuntimeError(
                    f"churn beacon evaluation failed to verify: {message}"
                )
            value = tvrf.vrf_output(directory, evaluation)
            output = BeaconOutput(
                epoch=epoch,
                round=round_index,
                prev=self._prev,
                value=value,
                evaluation=evaluation,
            )
            emitted.append(output)
            self.outputs.append(output)
            self._prev = value
        return emitted

    @classmethod
    def verify(
        cls,
        output: BeaconOutput,
        directory: PublicDirectory,
        transcript: Any,
    ) -> bool:
        """Verify one output against its *own epoch's* directory and key."""
        if not tvrf.EvalVerify(
            directory, transcript, output.message(), output.evaluation
        ):
            return False
        return tvrf.vrf_output(directory, output.evaluation) == output.value

    @classmethod
    def verify_chain(
        cls,
        outputs: Sequence[BeaconOutput],
        contexts: dict[int, tuple[PublicDirectory, Any]],
    ) -> bool:
        """Genesis-rooted verification across every committee change.

        ``contexts`` maps epoch → ``(directory, transcript)``; the walk
        additionally pins key invariance — every epoch's transcript must
        carry the same group key bytes as epoch 0's.
        """
        if not contexts:
            return False
        anchor_directory, anchor_transcript = contexts[min(contexts)]
        group = anchor_directory.pair_group
        anchor_key = group.encode_element(anchor_transcript.public_key)
        prev = GENESIS
        for output in outputs:
            if output.prev != prev:
                return False
            context = contexts.get(output.epoch)
            if context is None:
                return False
            directory, transcript = context
            if not cls._transcript_valid(directory, transcript):
                return False
            if group.encode_element(transcript.public_key) != anchor_key:
                return False
            if not cls.verify(output, directory, transcript):
                return False
            prev = output.value
        return True


# -- one-call entry ------------------------------------------------------------------


@dataclass
class ChurnReport:
    """A membership run plus its cross-handoff beacon chain."""

    membership: MembershipReport
    outputs: list[BeaconOutput] = field(default_factory=list)
    rounds_per_epoch: int = 0
    all_verified: bool = False

    @property
    def key_invariant(self) -> bool:
        return self.membership.key_invariant

    @property
    def agreed(self) -> bool:
        return self.membership.agreed


def run_churn(
    universe_n: int = 7,
    *,
    epochs: int = 4,
    events: Sequence[ChurnEvent] = (),
    churn: Optional[str] = None,
    base_members: Optional[Sequence[int]] = None,
    base_f: Optional[int] = None,
    rounds_per_epoch: int = 2,
    transport: str = "sim",
    seed: int = 0,
    params: str = "TESTING",
    session: str = "adkg-repro",
    timeout: float = 120.0,
    max_steps: int = 5_000_000,
    chaos: Optional[dict] = None,
    crash: Optional[dict] = None,
    storage_dir: Optional[str] = None,
) -> ChurnReport:
    """Run a full churn scenario: schedule → handoffs → verified beacon."""
    if churn is not None:
        events = tuple(events) + parse_churn(churn)
    universe = TrustedSetup.generate(
        universe_n, params=params, seed=seed, session=session
    )
    schedule = MembershipSchedule.build(
        universe_n,
        epochs,
        events,
        base_members=base_members,
        base_f=base_f,
    )
    driver = MembershipDriver(
        universe,
        schedule,
        transport=transport,
        seed=seed,
        timeout=timeout,
        max_steps=max_steps,
        chaos=chaos,
        crash=crash,
        storage_dir=storage_dir,
    )
    membership = driver.run()
    beacon = ChurnBeacon(rounds_per_epoch=rounds_per_epoch)
    for result in membership.results:
        beacon.emit_epoch(
            result.epoch, membership.setups[result.epoch], result.transcript
        )
    all_verified = (
        membership.agreed
        and membership.key_invariant
        and ChurnBeacon.verify_chain(beacon.outputs, membership.contexts)
    )
    return ChurnReport(
        membership=membership,
        outputs=list(beacon.outputs),
        rounds_per_epoch=rounds_per_epoch,
        all_verified=all_verified,
    )
