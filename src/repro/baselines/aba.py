"""Binary asynchronous Byzantine agreement (baseline building block).

The classic Bracha/Mostéfaoui-Moumen-Raynal round structure the paper's
"second natural approach" (Section 1.2) refers to:

round r:
  1. *BV-broadcast* of the current estimate — relay a bit after ``f+1``
     supporting BVALs, accept it into ``bin_values`` after ``2f+1``;
  2. broadcast one ``AUX`` value from ``bin_values`` and exchange common
     coin shares;
  3. once ``n-f`` AUX values (all inside ``bin_values``) and the coin are
     in: a unanimous AUX value matching the coin decides; otherwise the
     estimate becomes the unanimous value or the coin.

A ``DECIDED`` amplification gadget (f+1 DECIDEDs adopt, echo, halt) makes
termination explicit; deciders keep participating for one extra round so
laggards cross the line.

Safety never depends on the coin; expected round count does.  The coin
(:class:`repro.baselines.common_coin.CoinHelper`) is *weak*: parties
without the associated transcript fall back to a public bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.baselines.common_coin import CoinHelper
from repro.net.payload import Payload, words_of
from repro.net.protocol import Protocol


@dataclass(frozen=True)
class BVal(Payload):
    round_no: int
    bit: int


@dataclass(frozen=True)
class Aux(Payload):
    round_no: int
    bit: int


@dataclass(frozen=True)
class CoinShareMsg(Payload):
    round_no: int
    share: Any  # EvalShare or None (sender lacks the transcript)

    def word_size(self) -> int:
        return 1 + words_of(self.share)


@dataclass(frozen=True)
class Decided(Payload):
    bit: int


class BinaryAgreement(Protocol):
    """One binary ABA instance.

    The input bit may be provided at construction or later through
    :meth:`provide_input` (the ACS construction gates inputs).  Outputs
    the decided bit.
    """

    MAX_ROUNDS = 64

    #: Declared mutable state (the coin helper is reconstructed by the
    #: parent — its transcript travels in the parent's snapshot).
    STATE_FIELDS = (
        "_input",
        "round_no",
        "estimate",
        "decided",
        "_decided_round",
        "_bval_recv",
        "_bval_sent",
        "_bin_values",
        "_aux_recv",
        "_aux_sent",
        "_coin_shares",
        "_coin_sent",
        "_coin_value",
        "_round_closed",
        "_decided_recv",
        "_decided_sent",
    )

    def __init__(self, coin: CoinHelper, input_bit: Optional[int] = None) -> None:
        super().__init__()
        self.coin = coin
        self._input = input_bit
        self.round_no = 0
        self.estimate: Optional[int] = None
        self.decided: Optional[int] = None
        self._decided_round: Optional[int] = None
        self._bval_recv: dict[tuple[int, int], set[int]] = {}
        self._bval_sent: set[tuple[int, int]] = set()
        self._bin_values: dict[int, set[int]] = {}
        self._aux_recv: dict[int, dict[int, int]] = {}
        self._aux_sent: set[int] = set()
        self._coin_shares: dict[int, dict[int, Any]] = {}
        self._coin_sent: set[int] = set()
        self._coin_value: dict[int, int] = {}
        self._round_closed: set[int] = set()
        self._decided_recv: dict[int, set[int]] = {0: set(), 1: set()}
        self._decided_sent = False

    # -- input ------------------------------------------------------------------------

    def on_start(self) -> None:
        if self._input is not None:
            self.provide_input(self._input)

    def provide_input(self, bit: int) -> None:
        if self.round_no != 0 or bit not in (0, 1):
            return
        self.estimate = bit
        self._enter_round(1)

    # -- round machinery -----------------------------------------------------------------

    def _enter_round(self, round_no: int) -> None:
        if self._halted(round_no):
            return
        self.round_no = round_no
        self._send_bval(round_no, self.estimate)
        self._arm_round_close(round_no)

    def _arm_round_close(self, round_no: int) -> None:
        self.upon(
            lambda r=round_no: self._round_ready(r),
            lambda r=round_no: self._close_round(r),
            label=f"aba-close-{round_no}",
        )

    def rearm(self) -> None:
        # Rounds entered but not closed at snapshot time still need their
        # close condition; closed rounds re-entered the next round whose
        # own condition is (transitively) re-armed here.
        for round_no in range(1, self.round_no + 1):
            if round_no not in self._round_closed and not self._halted(round_no):
                self._arm_round_close(round_no)

    def _halted(self, round_no: int) -> bool:
        if round_no > self.MAX_ROUNDS:
            return True
        return (
            self._decided_round is not None and round_no > self._decided_round + 1
        )

    def _send_bval(self, round_no: int, bit: int) -> None:
        key = (round_no, bit)
        if key in self._bval_sent:
            return
        self._bval_sent.add(key)
        self.multicast(BVal(round_no=round_no, bit=bit))

    # -- message handlers -------------------------------------------------------------------

    def on_message(self, sender: int, payload: Payload) -> None:
        if isinstance(payload, BVal):
            self._on_bval(sender, payload.round_no, payload.bit)
        elif isinstance(payload, Aux):
            self._on_aux(sender, payload.round_no, payload.bit)
        elif isinstance(payload, CoinShareMsg):
            self._on_coin_share(sender, payload.round_no, payload.share)
        elif isinstance(payload, Decided):
            self._on_decided(sender, payload.bit)

    def _on_bval(self, sender: int, round_no: int, bit: int) -> None:
        if bit not in (0, 1) or not isinstance(round_no, int) or round_no < 1:
            return
        if round_no > self.MAX_ROUNDS:
            return
        box = self._bval_recv.setdefault((round_no, bit), set())
        if sender in box:
            return
        box.add(sender)
        if len(box) >= self.f + 1:
            self._send_bval(round_no, bit)
        if len(box) >= 2 * self.f + 1:
            accepted = self._bin_values.setdefault(round_no, set())
            if bit not in accepted:
                accepted.add(bit)
                self._on_bin_value(round_no, bit)

    def _on_bin_value(self, round_no: int, bit: int) -> None:
        if round_no not in self._aux_sent:
            self._aux_sent.add(round_no)
            self.multicast(Aux(round_no=round_no, bit=bit))
        if round_no not in self._coin_sent:
            self._coin_sent.add(round_no)
            self.multicast(
                CoinShareMsg(round_no=round_no, share=self.coin.make_share(round_no))
            )

    def _on_aux(self, sender: int, round_no: int, bit: int) -> None:
        if bit not in (0, 1) or not isinstance(round_no, int) or round_no < 1:
            return
        self._aux_recv.setdefault(round_no, {}).setdefault(sender, bit)

    def _on_coin_share(self, sender: int, round_no: int, share: Any) -> None:
        if not isinstance(round_no, int) or round_no < 1:
            return
        box = self._coin_shares.setdefault(round_no, {})
        if sender in box:
            return
        box[sender] = share
        self._maybe_fix_coin(round_no)

    def _maybe_fix_coin(self, round_no: int) -> None:
        if round_no in self._coin_value:
            return
        box = self._coin_shares.get(round_no, {})
        verified = [
            share
            for sender, share in box.items()
            if share is not None and self.coin.share_valid(sender, round_no, share)
        ]
        if len(verified) >= self.f + 1:
            self._coin_value[round_no] = self.coin.combine(round_no, verified)
        elif len(box) >= self.quorum:
            self._coin_value[round_no] = self.coin.fallback_bit(round_no)

    # -- round closing --------------------------------------------------------------------------

    def _round_ready(self, round_no: int) -> bool:
        if round_no in self._round_closed:
            return False
        if round_no not in self._coin_value:
            self._maybe_fix_coin(round_no)
            if round_no not in self._coin_value:
                return False
        accepted = self._bin_values.get(round_no, set())
        if not accepted:
            return False
        supported = [
            bit
            for bit in self._aux_recv.get(round_no, {}).values()
            if bit in accepted
        ]
        return len(supported) >= self.quorum

    def _close_round(self, round_no: int) -> None:
        if round_no in self._round_closed:
            return
        self._round_closed.add(round_no)
        accepted = self._bin_values[round_no]
        values = {
            bit
            for bit in self._aux_recv[round_no].values()
            if bit in accepted
        }
        coin = self._coin_value[round_no]
        if len(values) == 1:
            (bit,) = values
            self.estimate = bit
            if bit == coin:
                self._decide(bit, round_no)
        else:
            self.estimate = coin
        self._enter_round(round_no + 1)

    # -- decision ----------------------------------------------------------------------------------

    def _decide(self, bit: int, round_no: int) -> None:
        if self.decided is not None:
            return
        self.decided = bit
        self._decided_round = round_no
        if not self._decided_sent:
            self._decided_sent = True
            self.multicast(Decided(bit=bit))
        self.output(bit)

    def _on_decided(self, sender: int, bit: int) -> None:
        if bit not in (0, 1):
            return
        box = self._decided_recv[bit]
        if sender in box:
            return
        box.add(sender)
        if len(box) >= self.f + 1 and self.decided is None:
            self._decide(bit, self.round_no or 1)
