"""Baseline protocols for the paper's comparisons (experiment E7, E9).

The paper's headline improvement is over Kokoris-Kogias, Malkhi and
Spiegelman [29]: ``Ω(n⁴)`` expected words and ``Ω(n)`` expected rounds
versus this work's ``Õ(n³)`` and ``O(1)``.  [29] has no open reference
implementation, so :mod:`repro.baselines.kms_adkg` implements a
*structurally analogous* leaderless comparator that preserves the cost
shape the comparison relies on (DESIGN.md section 2):

* every party reliably broadcasts its **un-aggregated** O(n)-word PVSS
  contribution with plain Bracha broadcast — ``n × O(n²·n) = Ω(n⁴)``
  words (this is precisely the paper's "first barrier": without
  aggregation, attaching enough secrets costs ``Ω(n⁴)``);
* agreement on which sharings to fold into the key runs through ``n``
  binary asynchronous Byzantine agreements (:mod:`repro.baselines.aba`,
  the classic BKR/ACS structure the paper's "second natural approach"
  describes), each driven by a weak common coin
  (:mod:`repro.baselines.common_coin`) built from threshold-VRF shares
  over the corresponding dealer's transcript.
"""

from repro.baselines.aba import BinaryAgreement
from repro.baselines.common_coin import CoinHelper
from repro.baselines.kms_adkg import ACSBasedADKG

__all__ = ["BinaryAgreement", "CoinHelper", "ACSBasedADKG"]
