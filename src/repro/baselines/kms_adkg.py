"""The Ω(n⁴)-word / growing-round baseline A-DKG (experiment E7).

A structurally analogous stand-in for Kokoris-Kogias-Malkhi-Spiegelman
[29] (no open reference implementation exists), built from the two
ingredients the paper identifies as the pre-aggregation state of the art:

1. **No aggregation**: every party reliably broadcasts its own O(n)-word
   PVSS contribution with plain Bracha broadcast — ``n`` broadcasts of
   ``O(n)`` words at ``O(n²·m)`` each is ``Ω(n⁴)`` words exactly as the
   paper's first barrier argues.
2. **Binary agreement per dealer** (the "second natural approach"): an
   ACS/BKR lattice of ``n`` binary ABAs decides which dealers' sharings
   make it into the key.  Each ABA burns coin exchanges and its expected
   round count; the *maximum* over n instances grows with n, versus NWH's
   constant.

The final key folds the sharings of every dealer whose ABA decided 1
(agreement on the set follows from RBC + ABA agreement), so the baseline
produces a genuinely equivalent artifact — an aggregated, verifying DKG
transcript — at the old cost.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.aba import BinaryAgreement
from repro.baselines.common_coin import CoinHelper
from repro.broadcast.validated import make_broadcast
from repro.crypto import pvss, threshold_vrf as tvrf
from repro.net.protocol import Protocol


class ACSBasedADKG(Protocol):
    """Baseline A-DKG: n un-aggregated broadcasts + n binary agreements."""

    #: Declared mutable state.  The coin helpers (non-encodable objects
    #: shared with the ABA children) are captured as their transcripts and
    #: rebuilt in :meth:`apply_state`, before the children are rebuilt.
    STATE_FIELDS = ("delivered", "decided", "_input_given", "_zero_phase")

    def __init__(self, broadcast_kind: str = "bracha") -> None:
        super().__init__()
        self.broadcast_kind = broadcast_kind
        self.delivered: dict[int, pvss.PVSSContribution] = {}
        self.decided: dict[int, int] = {}
        self.coins: dict[int, CoinHelper] = {}
        self._abas: dict[int, BinaryAgreement] = {}
        self._input_given: set[int] = set()
        self._zero_phase = False

    def _contribution_validator(self):
        directory = self.directory

        def contribution_valid(candidate: Any) -> bool:
            return (
                isinstance(candidate, pvss.PVSSContribution)
                and tvrf.DKGShVerify(directory, candidate)
            )

        return contribution_valid

    def _make_coin(self, j: int) -> CoinHelper:
        return CoinHelper(self.directory, self.secret, context=("acs-adkg", j))

    def on_start(self) -> None:
        contribution = tvrf.DKGSh(self.directory, self.secret, self.rng)
        contribution_valid = self._contribution_validator()
        for j in range(self.n):
            value = contribution if j == self.me else None
            self.spawn(
                ("rbc", j),
                make_broadcast(
                    self.broadcast_kind, j, value=value, validate=contribution_valid
                ),
            )
            coin = self._make_coin(j)
            self.coins[j] = coin
            self._abas[j] = BinaryAgreement(coin=coin)
            self.spawn(("aba", j), self._abas[j])
        self.upon(self._all_decided, self._finish, label="acs-finish")

    # -- durability ---------------------------------------------------------------------

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["coin_transcripts"] = {
            j: coin.snapshot() for j, coin in self.coins.items()
        }
        return state

    def apply_state(self, state: dict) -> None:
        super().apply_state(state)
        transcripts = state.get("coin_transcripts", {})
        for j in range(self.n):
            coin = self._make_coin(j)
            coin.restore(transcripts.get(j))
            self.coins[j] = coin

    def build_child(self, name: Any) -> Protocol:
        stage, j = name
        if stage == "rbc":
            return make_broadcast(
                self.broadcast_kind,
                j,
                value=None,
                validate=self._contribution_validator(),
            )
        if stage == "aba":
            aba = BinaryAgreement(coin=self.coins[j])
            self._abas[j] = aba
            return aba
        raise ValueError(f"unknown ACSBasedADKG child {name!r}")

    def rearm(self) -> None:
        self.upon(self._all_decided, self._finish, label="acs-finish")

    # -- sub-protocol plumbing ---------------------------------------------------------

    def on_sub_output(self, name: Any, value: Any) -> None:
        stage, j = name
        if stage == "rbc":
            self._on_sharing_delivered(j, value)
        elif stage == "aba":
            self._on_aba_decided(j, value)

    def _on_sharing_delivered(self, j: int, contribution: Any) -> None:
        if j in self.delivered:
            return
        if not isinstance(contribution, pvss.PVSSContribution):
            return
        if contribution.dealer != j:
            return
        self.delivered[j] = contribution
        # The coin's VRF operates over transcripts; a single-dealer
        # aggregate is the transcript of just this sharing.
        self.coins[j].attach_transcript(
            pvss.aggregate(self.directory, [contribution])
        )
        if not self._zero_phase and j not in self._input_given:
            self._input_given.add(j)
            self._abas[j].provide_input(1)

    def _on_aba_decided(self, j: int, bit: int) -> None:
        self.decided[j] = bit
        ones = sum(1 for b in self.decided.values() if b == 1)
        if ones >= self.quorum and not self._zero_phase:
            # BKR gating: enough sharings are in; vote 0 everywhere else.
            self._zero_phase = True
            for k in range(self.n):
                if k not in self._input_given:
                    self._input_given.add(k)
                    self._abas[k].provide_input(0)

    # -- output -------------------------------------------------------------------------

    def _all_decided(self) -> bool:
        if len(self.decided) < self.n:
            return False
        chosen = [j for j, bit in self.decided.items() if bit == 1]
        return all(j in self.delivered for j in chosen)

    def _finish(self) -> None:
        if self.has_output:
            return
        chosen = sorted(j for j, bit in self.decided.items() if bit == 1)
        contributions = [self.delivered[j] for j in chosen]
        transcript = tvrf.DKGAggregate(self.directory, contributions)
        self.output(transcript)
