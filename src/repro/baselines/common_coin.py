"""A weak common coin from threshold-VRF shares (baseline building block).

Each ABA instance needs per-round shared randomness.  The baseline derives
it from the threshold VRF over a PVSS transcript associated with the ABA
instance (the dealer's own broadcast sharing): parties exchange evaluation
shares of ``φ(transcript, ⟨round⟩)`` and combine ``f+1`` of them.

The coin is *weak* in exactly the sense the literature means: a party that
never received the transcript cannot verify or combine shares and falls
back to a public hash coin, so with some probability parties disagree on
the flip.  ABA safety never depends on coin agreement — only its expected
round count does (Ben-Or / MMR structure).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto import threshold_vrf as tvrf
from repro.crypto.hashing import hash_to_int
from repro.crypto.keys import PartySecret, PublicDirectory


class CoinHelper:
    """Share creation/verification/combination for one coin context.

    ``context`` is any encodable tag that makes coin flips domain-unique
    (the ABA instance path); ``transcript`` may arrive late via
    :meth:`attach_transcript`.
    """

    def __init__(
        self,
        directory: PublicDirectory,
        secret: PartySecret,
        context: Any,
        transcript: Optional[Any] = None,
    ) -> None:
        self.directory = directory
        self.secret = secret
        self.context = context
        self.transcript = transcript

    def attach_transcript(self, transcript: Any) -> None:
        if self.transcript is None:
            self.transcript = transcript

    # -- durability --------------------------------------------------------------------

    def snapshot(self) -> Any:
        """The helper's only mutable state: the (late-bound) transcript."""
        return self.transcript

    def restore(self, transcript: Any) -> None:
        """Rebind the transcript captured by :meth:`snapshot` (or ``None``)."""
        self.transcript = transcript

    def _message(self, round_no: int) -> tuple:
        return ("baseline-coin", self.context, round_no)

    def make_share(self, round_no: int) -> Optional[tvrf.EvalShare]:
        """This party's coin share, or ``None`` without a transcript."""
        if self.transcript is None:
            return None
        return tvrf.EvalSh(
            self.directory, self.secret, self.transcript, self._message(round_no)
        )

    def share_valid(self, sender: int, round_no: int, share: Any) -> bool:
        if self.transcript is None:
            return False
        return tvrf.EvalShVerify(
            self.directory, self.transcript, sender, self._message(round_no), share
        )

    def combine(self, round_no: int, shares: list) -> int:
        """Combine ≥ f+1 verified shares into the coin bit."""
        evaluation, _proof = tvrf.Eval(
            self.directory, self.transcript, self._message(round_no), shares
        )
        return tvrf.vrf_output(self.directory, evaluation) & 1

    def fallback_bit(self, round_no: int) -> int:
        """Public hash coin for parties without the transcript (weak mode)."""
        return hash_to_int("baseline-coin-fallback", 2, self.context, round_no)
