"""Experiment runners, complexity fits and table rendering.

``repro.analysis.experiments`` exposes one runner per experiment of the
index in DESIGN.md (E1-E9); ``repro.analysis.complexity`` estimates
scaling exponents from measurements; ``repro.analysis.tables`` renders
the EXPERIMENTS.md-style tables.
"""

from repro.analysis.complexity import fit_power_law, log_log_slope
from repro.analysis.stats import summarize, wilson_interval
from repro.analysis.tables import render_table

__all__ = [
    "fit_power_law",
    "log_log_slope",
    "summarize",
    "wilson_interval",
    "render_table",
]
