"""Small statistics helpers for experiment reporting.

Seeded-simulation experiments produce samples (views per run, words per
run, binding successes); these helpers summarize them without pulling in
scipy for the common cases.  ``wilson_interval`` is the right interval
for the E4 binding-rate measurements (a Bernoulli rate from few dozen
runs); ``summarize`` is the one-stop sample description used in reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SampleSummary:
    count: int
    mean: float
    stdev: float
    minimum: float
    median: float
    p90: float
    maximum: float


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("empty sample")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    value = ordered[low] * (1 - weight) + ordered[high] * weight
    # Clamp: float cancellation must not push the result outside the bracket.
    return min(max(value, ordered[low]), ordered[high])


def summarize(values: Sequence[float]) -> SampleSummary:
    """Mean/spread/percentile summary of a sample."""
    if not values:
        raise ValueError("empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    return SampleSummary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=float(min(values)),
        median=percentile(values, 50),
        p90=percentile(values, 90),
        maximum=float(max(values)),
    )


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a Bernoulli rate (default 95%).

    Better behaved than the normal approximation at the small trial
    counts protocol-quality experiments run with.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    p_hat = successes / trials
    denom = 1 + z**2 / trials
    center = (p_hat + z**2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def geometric_tail_bound(alpha: float, views: int) -> float:
    """P[more than ``views`` views] for a geometric(α) view count.

    Theorem 9's termination argument: each view independently succeeds
    with probability ≥ α, so the tail decays as ``(1-α)^views``.
    """
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    if views < 0:
        raise ValueError("views must be non-negative")
    return (1 - alpha) ** views
