"""Scaling-exponent estimation for the efficiency experiments.

The reproduction brief asks for *shapes*, not absolute numbers: does the
measured word count grow like ``n³`` (Theorems 7-10) or ``n⁴`` (the
baseline)?  ``fit_power_law`` estimates the exponent by least squares in
log-log space and reports an R² so benchmarks can assert a fit quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def log_log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``."""
    return fit_power_law(xs, ys).exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c · x^e`` by linear regression in log-log space."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit requires positive data")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    ss_xx = sum((lx - mean_x) ** 2 for lx in log_x)
    ss_xy = sum((lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y))
    if ss_xx == 0:
        raise ValueError("all x values identical")
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((ly - mean_y) ** 2 for ly in log_y)
    ss_res = sum(
        (ly - (slope * lx + intercept)) ** 2 for lx, ly in zip(log_x, log_y)
    )
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=slope, coefficient=math.exp(intercept), r_squared=r_squared
    )


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))
