"""Runners for the experiment index E1-E18 (DESIGN.md section 6).

Each runner executes seeded simulations and returns plain row dicts that
the benchmarks assert on and ``scripts/generate_experiments.py`` renders
into EXPERIMENTS.md.  All randomness is derived from explicit seeds.

The index is contiguous: E1-E10 regenerate the paper's claims and
ablations, E11 (transports) and E12 (hot-path counters) are covered by
their benchmarks, E13 runs epoch pipelining, E14 is the crash–recovery
fault matrix over the durable storage layer, E15 (rendered inline by the
script) gates the parallel crypto plane, E16 is the chaos matrix over
the link-level fault plane (DESIGN §11), E17 (sharded scale-out) is
covered by its benchmark, and E18 is the membership-churn matrix over
proactive resharing (DESIGN §13).
"""

from __future__ import annotations

import statistics
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.baselines.kms_adkg import ACSBasedADKG
from repro.broadcast.validated import make_broadcast
from repro.core.gather import Gather
from repro.core.nwh import NWH
from repro.core.proposal_election import ProposalElection
from repro.crypto.keys import TrustedSetup
from repro.net.adversary import Scheduler
from repro.net.delays import DelayModel, FixedDelay
from repro.net.protocol import Protocol
from repro.net.runtime import Simulation


class _BroadcastRoot(Protocol):
    """Root protocol hosting a single broadcast instance."""

    def __init__(self, kind: str, dealer: int, value: Any) -> None:
        super().__init__()
        self.kind = kind
        self.dealer = dealer
        self.value = value

    def on_start(self):
        mine = self.value if self.me == self.dealer else None
        self.spawn("rbc", make_broadcast(self.kind, self.dealer, value=mine))

    def on_sub_output(self, name, value):
        self.output(value)


def _simulate(
    n: int,
    factory: Callable,
    seed: int,
    behaviors=None,
    scheduler: Optional[Scheduler] = None,
    delay_model: Optional[DelayModel] = None,
    to_quiescence: bool = True,
    setup: Optional[TrustedSetup] = None,
) -> Simulation:
    setup = setup or TrustedSetup.generate(n, seed=seed)
    sim = Simulation(
        setup,
        seed=seed,
        behaviors=behaviors,
        scheduler=scheduler,
        delay_model=delay_model or FixedDelay(1.0),
    )
    sim.start(factory)
    if to_quiescence:
        sim.run()
    else:
        sim.run_until_all_honest_output()
    return sim


def _row(sim: Simulation, **extra) -> dict:
    return {
        "words": sim.metrics.words_total,
        "messages": sim.metrics.messages_total,
        "rounds": sim.honest_completion_time(),
        **extra,
    }


# -- E1: reliable broadcast (Theorem 6) ----------------------------------------------


def run_broadcast_experiment(
    ns: Sequence[int],
    message_words: Sequence[int],
    kinds: Sequence[str] = ("ct", "bracha"),
    seed: int = 1,
) -> list[dict]:
    rows = []
    for n in ns:
        for m in message_words:
            value = (1,) * m
            for kind in kinds:
                sim = _simulate(
                    n, lambda p: _BroadcastRoot(kind, 0, value), seed=seed
                )
                rows.append(
                    _row(sim, experiment="E1", kind=kind, n=n, m=m)
                )
    return rows


# -- E2: Verifiable Gather (Theorem 7) ------------------------------------------------


def run_gather_experiment(
    ns: Sequence[int],
    message_words: Sequence[int] = (1,),
    kind: str = "ct",
    seed: int = 1,
) -> list[dict]:
    rows = []
    for n in ns:
        for m in message_words:
            sim = _simulate(
                n,
                lambda p: Gather(my_value=(1,) * m + (p.index,), broadcast_kind=kind),
                seed=seed,
            )
            core = None
            outputs = [set(sim.parties[i].result) for i in sim.honest]
            core = set.intersection(*outputs) if outputs else set()
            rows.append(
                _row(
                    sim,
                    experiment="E2",
                    kind=kind,
                    n=n,
                    m=m,
                    core_size=len(core),
                )
            )
    return rows


# -- E3: Proposal Election words (Theorem 8) --------------------------------------------


def run_pe_experiment(
    ns: Sequence[int], message_words: int = 1, seed: int = 1
) -> list[dict]:
    rows = []
    for n in ns:
        sim = _simulate(
            n,
            lambda p: ProposalElection(
                proposal=(1,) * message_words + (p.index,)
            ),
            seed=seed,
        )
        layers = sim.metrics.words_by_layer
        rows.append(
            _row(
                sim,
                experiment="E3",
                n=n,
                m=message_words,
                gather_words=layers.get("gather", 0),
                idx_words=layers.get("idx", 0),
                eval_words=sim.metrics.words_by_type.get("PEEvalShare", 0),
                dkg_words=sim.metrics.words_by_type.get("PEDkgShare", 0),
            )
        )
    return rows


# -- E4: PE quality / α-binding (Theorem 3) ------------------------------------------------


def run_pe_quality_experiment(
    n: int,
    seeds: Iterable[int],
    behaviors_factory: Optional[Callable[[int], dict]] = None,
    scheduler_factory: Optional[Callable[[int], Scheduler]] = None,
) -> dict:
    """Fraction of runs where all honest parties output one common value
    that was the input of an honest party (the α-binding success event)."""
    total = 0
    common_honest = 0
    terminated = 0
    for seed in seeds:
        behaviors = behaviors_factory(seed) if behaviors_factory else None
        scheduler = scheduler_factory(seed) if scheduler_factory else None
        sim = _simulate(
            n,
            lambda p: ProposalElection(proposal=("prop", p.index)),
            seed=seed,
            behaviors=behaviors,
            scheduler=scheduler,
        )
        total += 1
        outputs = [
            sim.parties[i].result[0]
            for i in sim.honest
            if sim.parties[i].has_result
        ]
        if len(outputs) == len(sim.honest):
            terminated += 1
        honest_inputs = {("prop", i) for i in sim.honest}
        if (
            outputs
            and len(set(outputs)) == 1
            and outputs[0] in honest_inputs
        ):
            common_honest += 1
    return {
        "experiment": "E4",
        "n": n,
        "runs": total,
        "termination_rate": terminated / total,
        "binding_rate": common_honest / total,
    }


# -- E5: NWH views and per-view words (Theorem 9) ---------------------------------------------


def run_nwh_experiment(
    ns: Sequence[int], seeds: Iterable[int] = (1,), message_words: int = 1
) -> list[dict]:
    rows = []
    for n in ns:
        view_counts = []
        words = []
        rounds = []
        for seed in seeds:
            sim = _simulate(
                n,
                lambda p: NWH(my_value=(1,) * message_words + (p.index,)),
                seed=seed,
            )
            views = max(
                sim.parties[i].instance(()).views_entered for i in sim.honest
            )
            view_counts.append(views)
            words.append(sim.metrics.words_total)
            rounds.append(sim.honest_completion_time())
        rows.append(
            {
                "experiment": "E5",
                "n": n,
                "m": message_words,
                "runs": len(view_counts),
                "mean_views": statistics.mean(view_counts),
                "max_views": max(view_counts),
                "mean_words": statistics.mean(words),
                "words_per_view": statistics.mean(
                    w / v for w, v in zip(words, view_counts)
                ),
                "mean_rounds": statistics.mean(rounds),
            }
        )
    return rows


# -- E6: full A-DKG (Theorem 10) -----------------------------------------------------------------


def run_adkg_experiment(
    ns: Sequence[int], seeds: Iterable[int] = (1,), broadcast_kind: str = "ct"
) -> list[dict]:
    from repro.core.adkg import ADKG

    rows = []
    for n in ns:
        words, rounds, views, agreements = [], [], [], 0
        runs = 0
        for seed in seeds:
            sim = _simulate(
                n, lambda p: ADKG(broadcast_kind=broadcast_kind), seed=seed
            )
            runs += 1
            words.append(sim.metrics.words_total)
            rounds.append(sim.honest_completion_time())
            views.append(
                max(
                    sim.parties[i].instance(("nwh",)).views_entered
                    for i in sim.honest
                )
            )
            outputs = list(sim.honest_results().values())
            if outputs and all(o == outputs[0] for o in outputs):
                agreements += 1
        rows.append(
            {
                "experiment": "E6",
                "n": n,
                "kind": broadcast_kind,
                "runs": runs,
                "mean_words": statistics.mean(words),
                "mean_rounds": statistics.mean(rounds),
                "mean_views": statistics.mean(views),
                "agreement_rate": agreements / runs,
            }
        )
    return rows


# -- E7: baseline comparison ------------------------------------------------------------------------


def run_baseline_comparison(ns: Sequence[int], seed: int = 1) -> list[dict]:
    rows = []
    for n in ns:
        from repro.core.adkg import ADKG

        ours = _simulate(n, lambda p: ADKG(), seed=seed, to_quiescence=False)
        base = _simulate(
            n, lambda p: ACSBasedADKG(), seed=seed, to_quiescence=False
        )
        rows.append(
            {
                "experiment": "E7",
                "n": n,
                "ours_words": ours.metrics.words_total,
                "baseline_words": base.metrics.words_total,
                "word_ratio": base.metrics.words_total
                / ours.metrics.words_total,
                "ours_rounds": ours.honest_completion_time(),
                "baseline_rounds": base.honest_completion_time(),
            }
        )
    return rows


# -- E8: fault matrix ----------------------------------------------------------------------------------


def run_fault_matrix(n: int = 4, seed: int = 1) -> list[dict]:
    """Agreement/validity/termination of the full ADKG under each fault type."""
    import dataclasses

    from repro.core.adkg import ADKG, ADKGShare
    from repro.net.adversary import (
        CrashBehavior,
        DropBehavior,
        MutateBehavior,
        RandomLagScheduler,
        SilentBehavior,
        TargetedLagScheduler,
    )

    def bad_share_mutator(payload, recipient, rng):
        if isinstance(payload, ADKGShare):
            contribution = payload.contribution
            bad = dataclasses.replace(
                contribution,
                commitments=(contribution.commitments[0],)
                * len(contribution.commitments),
            )
            return ADKGShare(contribution=bad)
        return payload

    cases = {
        "none": (None, None),
        "silent": ({n - 1: SilentBehavior()}, None),
        "crash": ({n - 1: CrashBehavior(after_sends=30)}, None),
        "drop-half": ({n - 1: DropBehavior(rate=0.5)}, None),
        "bad-shares": ({n - 1: MutateBehavior(bad_share_mutator)}, None),
        "lag-target": (None, TargetedLagScheduler(targets={0}, factor=12.0)),
        "lag-random": (None, RandomLagScheduler(factor=20.0, rate=0.3)),
    }
    rows = []
    for name, (behaviors, scheduler) in cases.items():
        sim = _simulate(
            n,
            lambda p: ADKG(),
            seed=seed,
            behaviors=behaviors,
            scheduler=scheduler,
            to_quiescence=False,
        )
        outputs = list(sim.honest_results().values())
        from repro.crypto import threshold_vrf as tvrf

        agreed = bool(outputs) and all(o == outputs[0] for o in outputs)
        valid = bool(outputs) and tvrf.DKGVerify(sim.setup.directory, outputs[0])
        rows.append(
            {
                "experiment": "E8",
                "fault": name,
                "n": n,
                "honest_outputs": len(outputs),
                "agreement": agreed,
                "valid": valid,
                "rounds": sim.honest_completion_time(),
            }
        )
    rows.append(run_crash_recovery_case(n=n, seed=seed))
    return rows


def run_crash_recovery_case(n: int = 4, seed: int = 1) -> dict:
    """Crash-then-new-session recovery over the session-multiplexed engine.

    Session 0 (an ADKG epoch) is crippled twice over: party ``n-1``
    crashes after a handful of sends, and the adversarial scheduler lags
    every session-0 message by a huge (but finite) factor, so the epoch
    crawls.  A *fresh* session is then injected into the same live
    network; the row reports on that new session, which must reach
    agreement long before the stalled one — and the stalled session must
    still complete afterwards (eventual delivery keeps almost-sure
    termination intact, merely late).

    Contrast with E14 (:func:`run_crash_recovery_matrix`): here the
    stalled *session* is abandoned for a fresh one; there the crashed
    *party* rejoins the same session from durable storage.
    """
    from repro.core.adkg import ADKG
    from repro.crypto import threshold_vrf as tvrf
    from repro.net.adversary import CrashBehavior, FaultSchedule, SessionLagScheduler

    setup = TrustedSetup.generate(n, seed=seed)
    # The shared fault-schedule helper (the same bookkeeping class
    # behind CrashBehavior and CrashRecoverBehavior): owning it here
    # lets the row report the crash state without reaching into the
    # behavior's internals.
    crash_schedule = FaultSchedule(crash_after_sends=5)
    sim = Simulation(
        setup,
        seed=seed,
        behaviors={n - 1: CrashBehavior(schedule=crash_schedule)},
        scheduler=SessionLagScheduler(session=0, factor=10_000.0),
        delay_model=FixedDelay(1.0),
    )
    sim.start_session(0, lambda p: ADKG())
    if sim.session_complete(0):
        # The premise of the scenario — a stalled first session — failed;
        # report that loudly rather than measuring a vacuous recovery.
        raise RuntimeError("session 0 completed before it could stall")
    # The network is live and stalled; inject the recovery session.
    sim.start_session(1, lambda p: ADKG())
    sim.run_until_session_done(1)
    fresh_done_at = sim.honest_completion_time(session=1)
    stalled_before_fresh = sim.session_complete(0)
    outputs = list(sim.honest_results(session=1).values())
    agreed = bool(outputs) and all(o == outputs[0] for o in outputs)
    valid = bool(outputs) and tvrf.DKGVerify(setup.directory, outputs[0])
    # Eventual delivery: the stalled epoch still terminates, just late.
    sim.run_until_session_done(0)
    stalled_rounds = sim.honest_completion_time(session=0)
    return {
        "experiment": "E8",
        "fault": "crash-then-new-session",
        "n": n,
        "honest_outputs": len(outputs),
        "agreement": agreed,
        "valid": valid,
        "rounds": fresh_done_at,
        "stalled_session_done_first": stalled_before_fresh,
        "stalled_session_rounds": stalled_rounds,
        # Read from the shared schedule: the crash premise actually held.
        "crashed_after_sends": crash_schedule.sent if crash_schedule.crashed else None,
        "crash_dropped_deliveries": crash_schedule.dropped,
    }


# -- E9: erasure-coded RB ablation -----------------------------------------------------------------------


def run_rbc_ablation(
    ns: Sequence[int], seeds: Iterable[int] = (1,)
) -> list[dict]:
    """Full ADKG cost with the paper's CT broadcast vs plain Bracha inside."""
    rows = []
    for kind in ("ct", "bracha"):
        rows.extend(
            {**row, "experiment": "E9"}
            for row in run_adkg_experiment(ns, seeds=seeds, broadcast_kind=kind)
        )
    return rows


# -- E13: epoch pipelining (session-multiplexed engine) ------------------------------------


def run_pipelining_experiment(
    n: int = 7,
    epochs: int = 4,
    depths: Sequence[int] = (1, 2, 3),
    seed: int = 1,
    rounds_per_epoch: int = 1,
) -> list[dict]:
    """Latency/throughput of repeated ADKG epochs vs. pipeline depth.

    Each run drives the full beacon service on the simulator; the
    end-to-end measure is simulated time (the asynchronous round measure
    under ``FixedDelay``), so pipelining gains are schedule-level facts,
    not wall-clock noise.  Depth 1 is the strictly-sequential baseline.
    """
    from repro.service import run_beacon

    rows = []
    for depth in depths:
        report = run_beacon(
            n=n,
            epochs=epochs,
            pipeline_depth=depth,
            rounds_per_epoch=rounds_per_epoch,
            transport="sim",
            seed=seed,
        )
        rows.append(
            {
                "experiment": "E13",
                "n": n,
                "epochs": epochs,
                "depth": depth,
                "end_to_end_rounds": report.end_to_end,
                "mean_epoch_latency": report.mean_epoch_latency,
                "epochs_per_100_rounds": 100.0 * epochs / report.end_to_end,
                "words": report.words_total,
                "verified": report.all_verified,
            }
        )
    return rows


# -- E14: crash–recovery fault matrix (durable state machines) ------------------------------


def run_crash_recovery_matrix(
    n: int = 4,
    seed: int = 1,
    cadence: int = 16,
    recovery_delays: Sequence[float] = (3.0, 12.0),
    crash_after: int = 30,
    transport: str = "sim",
) -> list[dict]:
    """E14: crash each role mid-ADKG, recover from disk, reach agreement.

    Three roles crash (dealer — party 0, whose PVSS contribution seeds
    the aggregates; a leader candidate — a mid-index party whose proposal
    may win the election; and ``f`` parties simultaneously), each at an
    adversarially chosen per-party delivery count and each recovered at
    varying delays from :class:`~repro.storage.store.SnapshotStore` +
    WAL replay.  A fourth case reruns the dealer crash under Byzantine
    scheduling (random message lag).  Every row must reach agreement on
    one verifying transcript — the paper's safety properties survive
    in-session churn, which the terminal ``CrashBehavior`` model could
    never exercise.
    """
    from repro.net.adversary import RandomLagScheduler
    from repro.storage.recovery import run_crash_recovery

    f = (n - 1) // 3
    cases: list[tuple[str, list[int], Any]] = [
        ("dealer", [0], None),
        ("leader-candidate", [n // 2], None),
        ("f-parties", list(range(n - max(1, f), n)), None),
        ("dealer+byz-schedule", [0], RandomLagScheduler(factor=15.0, rate=0.3)),
    ]
    rows = []
    for fault, indices, scheduler in cases:
        for delay in recovery_delays:
            report = run_crash_recovery(
                transport=transport,
                n=n,
                seed=seed,
                crash_indices=indices,
                crash_after=crash_after,
                recovery_delay=delay,
                cadence=cadence,
                scheduler=scheduler,
            )
            replay = report["replay"]
            rows.append(
                {
                    "experiment": "E14",
                    "fault": fault,
                    "n": n,
                    "crashed": len(indices),
                    "recovery_delay": delay,
                    "cadence": cadence,
                    "honest_outputs": report["honest_outputs"],
                    "agreement": report["agreement"],
                    "valid": report["valid"],
                    "rounds": report["rounds"],
                    "recovery_latency": report["recovery_latency"],
                    "wal_records": sum(s["wal_records"] for s in replay.values()),
                    "suppressed_sends": sum(
                        s["suppressed_sends"] for s in replay.values()
                    ),
                }
            )
    return rows


# -- E16: chaos matrix (link-level fault plane + self-healing TCP) ------------------------


def run_chaos_matrix(
    n: int = 4,
    seed: int = 1,
    include_tcp: bool = True,
) -> list[dict]:
    """E16: agreement under partitions, lossy links and crash overlays.

    Every chaos schedule preserves eventual delivery by construction
    (DESIGN §11), so each cell is a *legal* asynchronous adversary and
    the paper's safety/liveness claims must survive it.  The matrix
    crosses partition-then-heal cuts (two-sided, regional and one-way)
    with probabilistic link faults (loss, duplication, reordering,
    byte corruption) and with E14's in-session crash/recover overlay,
    on the simulator plus one real-socket TCP row (whose partition heals
    in wall-clock seconds, exercising the reconnect machinery).

    Two differential gates ride along: the ``clean`` row is re-run with
    an attached-but-idle plane and must report byte-identical protocol
    totals (chaos off ⇒ no trace), and the ``partition-heal`` row is
    re-run with the same seed and spec and must reproduce its word and
    byte totals and group key exactly (the plane consumes one seeded
    stream in delivery order).  A gate failure raises rather than
    returning a quietly wrong table.
    """
    from repro import run_adkg
    from repro.net.adversary import CrashRecoverBehavior
    from repro.net.chaos import ChaosSpec

    f = (n - 1) // 3
    others = ",".join(str(i) for i in range(1, n))
    lower = ",".join(str(i) for i in range(n // 2))
    upper = ",".join(str(i) for i in range(n // 2, n))
    crashers = lambda: {  # noqa: E731 — fresh stateful behaviors per run
        n - 1: CrashRecoverBehavior(after_sends=10, recover_after_drops=5)
    }
    cases: list[tuple[str, Any, Any]] = [
        ("clean", None, None),
        ("partition-heal", f"partition:0|{others}@2-20", None),
        ("regional-split", f"partition:{lower}|{upper}@2-15", None),
        ("oneway-cut", f"partition-oneway:0|{others}@1-15", None),
        ("lossy-link", "drop:0.08;reorder:0.1", None),
        ("dup+corrupt", "dup:0.05;corrupt:0.03", None),
        ("partition+lossy", f"partition:0|{others}@2-12;drop:0.05", None),
        ("lossy+crash-recover", "drop:0.05;reorder:0.05", crashers),
    ]
    rows = []
    for name, spec, behaviors in cases:
        result = run_adkg(
            n=n,
            seed=seed,
            measure_bytes=True,
            chaos=spec,
            behaviors=behaviors() if behaviors else None,
        )
        counts = result.metrics_summary["counters"].get("chaos", {})
        rows.append(
            {
                "experiment": "E16",
                "case": name,
                "transport": "sim",
                "n": n,
                "agreement": result.agreed,
                "words": result.words_total,
                "bytes": result.bytes_total,
                "faults_injected": sum(
                    count
                    for key, count in counts.items()
                    if not key.startswith("corrupt_")  # verdicts, not faults
                ),
                "rounds": result.rounds,
            }
        )
        if name == "clean":
            idle = run_adkg(
                n=n, seed=seed, measure_bytes=True, chaos=ChaosSpec()
            )
            if (idle.words_total, idle.bytes_total, idle.public_key) != (
                result.words_total,
                result.bytes_total,
                result.public_key,
            ):
                raise RuntimeError(
                    "E16 gate: an idle chaos plane changed protocol totals"
                )
        if name == "partition-heal":
            again = run_adkg(n=n, seed=seed, measure_bytes=True, chaos=spec)
            if (again.words_total, again.bytes_total, again.public_key) != (
                result.words_total,
                result.bytes_total,
                result.public_key,
            ):
                raise RuntimeError(
                    "E16 gate: same seed + same chaos spec did not reproduce"
                )
    if include_tcp:
        tcp = run_adkg(
            n=n,
            seed=seed,
            transport="tcp",
            chaos=f"partition:{','.join(str(i) for i in range(max(1, f)))}"
            f"|{','.join(str(i) for i in range(max(1, f), n))}@0-0.8",
            timeout=60.0,
        )
        counts = tcp.metrics_summary["counters"].get("chaos", {})
        rows.append(
            {
                "experiment": "E16",
                "case": "partition-heal-f",
                "transport": "tcp",
                "n": n,
                "agreement": tcp.agreed,
                "words": tcp.words_total,
                "bytes": tcp.bytes_total,
                "faults_injected": sum(
                    count
                    for key, count in counts.items()
                    if not key.startswith("corrupt_")
                ),
                "rounds": round(tcp.rounds, 2),
            }
        )
    return rows


# -- E18: membership churn (proactive resharing across committees) ------------------------


def run_churn_matrix(
    seed: int = 2,
    include_realtime: bool = True,
) -> list[dict]:
    """E18: the group key survives committee churn, byte-identically.

    Each row runs a membership schedule (joins, leaves, a threshold
    change) through :func:`repro.service.membership.run_churn`: epoch 0
    is a fresh ADKG, every later epoch a certificate-gated resharing
    handoff.  The matrix covers a no-churn proactive refresh, the full
    churn schedule, a crash-recover handoff (a party WAL-replays into
    the reshare epoch), a healing-partition handoff, and the realtime
    transports.  The acceptance invariant is uniform and gated here —
    every epoch's group key encodes to the same bytes as epoch 0's and
    the cross-handoff beacon chain verifies; a violation raises rather
    than returning a quietly wrong table.
    """
    from repro.service import run_churn

    matrix = "join:8@1;join:9@2;leave:0@2;leave:1@3;threshold:1@3"
    cases: list[tuple[str, str, dict]] = [
        ("proactive-refresh", "sim", dict(universe_n=7, epochs=3)),
        ("churn-matrix", "sim", dict(universe_n=10, epochs=5, churn=matrix)),
        (
            "crash-handoff",
            "sim",
            dict(
                universe_n=8,
                epochs=4,
                churn="join:7@1;leave:0@3",
                base_f=1,
                crash={1: {"indices": (2,), "after": 12, "delay": 4.0}},
            ),
        ),
        (
            "partition-handoff",
            "sim",
            dict(
                universe_n=8,
                epochs=4,
                churn="join:7@1;leave:0@3",
                base_f=1,
                chaos={2: "partition:0,1|2,3,4,5,6,7@3-9"},
            ),
        ),
    ]
    if include_realtime:
        for transport in ("asyncio", "tcp"):
            cases.append(
                (
                    f"churn-{transport}",
                    transport,
                    dict(
                        universe_n=7,
                        epochs=3,
                        churn="join:6@1;leave:0@2",
                        base_f=1,
                    ),
                )
            )
    rows = []
    for name, transport, kwargs in cases:
        report = run_churn(
            kwargs.pop("universe_n"), transport=transport, seed=seed, **kwargs
        )
        membership = report.membership
        sizes = [len(result.committee) for result in membership.results]
        events = kwargs.get("churn", "")
        rows.append(
            {
                "experiment": "E18",
                "case": name,
                "transport": transport,
                "epochs": len(membership.results),
                "handoffs": membership.handoffs,
                "joins": events.count("join:"),
                "leaves": events.count("leave:"),
                "committee_n": f"{min(sizes)}..{max(sizes)}",
                "key_invariant": membership.key_invariant,
                "chain_verified": report.all_verified,
                "wall_s": round(membership.wall_clock_s, 2),
            }
        )
        if not (membership.key_invariant and report.all_verified):
            raise RuntimeError(
                f"E18 gate: case {name!r} broke the key-invariance invariant"
            )
    return rows


# -- E10: vector-commitment ablation (Section 7.1's SNARK/KZG remark) ---------------------


def run_vc_ablation(
    ns: Sequence[int], message_words: int = 8, seed: int = 1
) -> list[dict]:
    """Broadcast words with Merkle (log n openings) vs KZG (1-word openings)."""
    value = (1,) * message_words
    rows = []
    for kind in ("ct", "ct-kzg"):
        for n in ns:
            sim = _simulate(n, lambda p: _BroadcastRoot(kind, 0, value), seed=seed)
            rows.append(
                _row(sim, experiment="E10", kind=kind, n=n, m=message_words)
            )
    return rows
