"""Markdown/ASCII table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render rows of dicts as a GitHub-flavoured markdown table."""
    if not rows:
        return "(no data)"
    columns = list(columns or rows[0].keys())
    cells = [[_format(row.get(col, "-")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "| " + " | ".join(col.ljust(w) for col, w in zip(columns, widths)) + " |"
    rule = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    body = [
        "| " + " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) + " |"
        for line in cells
    ]
    return "\n".join([header, rule, *body])
