"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``         run one A-DKG (``--transport sim|asyncio|tcp``) and print
                the outcome + word/byte costs
``beacon``      pipelined ADKG epochs feeding a verifiable randomness
                beacon (the session-multiplexed service layer)
``sweep``       words/rounds across a range of n (quick Theorem-10 view)
``drill``       the Byzantine fault matrix (Theorems 1/3/4/5 in action)
``compare``     this work vs the Ω(n⁴) baseline (the Section-1 headline)
"""

from __future__ import annotations

import argparse
import sys


def _parse_at(spec: str, flag: str) -> tuple[int, float]:
    """Parse one ``i@t`` CLI value into ``(party_index, t)``."""
    try:
        index_text, _, when_text = spec.partition("@")
        return int(index_text), float(when_text)
    except ValueError:
        print(
            f"error: {flag} expects i@t (party index @ time), got {spec!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)  # usage error, matching the sibling validations


def _cmd_run_with_recovery(args: argparse.Namespace, chaos=None) -> int:
    """``repro run --crash i@t [--recover i@t]``: the durable-recovery path."""
    import time

    from repro.storage import run_crash_recovery

    crashes = [_parse_at(spec, "--crash") for spec in args.crash]
    recovers = dict(_parse_at(spec, "--recover") for spec in (args.recover or []))
    crash_indices = [index for index, _t in crashes]
    unknown = set(recovers) - set(crash_indices)
    if unknown:
        print(
            f"error: --recover names parties that never crash: {sorted(unknown)}",
            file=sys.stderr,
        )
        return 2
    # All named parties crash together at the earliest threshold and
    # recover together after the longest requested delay.
    crash_after = int(min(t for _i, t in crashes))
    default_delay = 5.0
    recovery_delay = max(recovers.values(), default=default_delay)
    started = time.perf_counter()
    try:
        report = run_crash_recovery(
            transport=args.transport,
            n=args.n,
            seed=args.seed,
            crash_indices=crash_indices,
            crash_after=crash_after,
            recovery_delay=recovery_delay,
            cadence=args.cadence,
            storage_dir=args.storage_dir,
            batching=not args.no_batching,
            timeout=args.timeout,
            chaos=chaos,
        )
    except (TimeoutError, OSError, RuntimeError, ValueError) as exc:
        # ValueError also covers the storage layer's StorageError
        # (missing/corrupt snapshot) and bad-parameter rejections.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    unit = "rounds" if args.transport == "sim" else "s"
    print(
        f"n={report['n']} f={report['f']} seed={args.seed} "
        f"transport={report['transport']}"
    )
    print(f"crashed:           {report['crash_indices']} after "
          f"{report['crash_after']} deliveries (at {report['crash_at']:.1f} {unit})")
    print(f"recovered:         at {report['reattach_at']:.1f} {unit} "
          f"(snapshot cadence {report['cadence']})")
    for index, stats in report["replay"].items():
        print(
            f"  party {index}: replayed {stats['wal_records']} WAL records "
            f"in {stats['replay_seconds'] * 1000:.1f}ms "
            f"({stats['suppressed_sends']} duplicate sends suppressed), "
            f"{report['parked_delivered'][index]} parked deliveries drained"
        )
    print(f"agreed:            {report['agreement']}")
    print(f"transcript valid:  {report['valid']}")
    print(f"recovery latency:  {report['recovery_latency']:.2f} {unit}")
    print(f"done at:           {report['rounds']:.2f} {unit}")
    print(f"words sent:        {report['words_total']:,}")
    print(f"wall clock:        {elapsed:.2f}s")
    return 0 if report["agreement"] and report["valid"] else 1


def _render_churn_epochs(membership, unit: str) -> None:
    """Per-epoch committee lines shared by ``run --reshare`` and ``beacon``."""
    for result in membership.results:
        mode = "adkg" if result.epoch == 0 else "reshare"
        overlays = ""
        if result.epoch in membership.chaos_epochs:
            overlays += " +chaos"
        if result.epoch in membership.crash_epochs:
            overlays += " +crash"
        print(
            f"epoch {result.epoch} ({mode}): "
            f"committee={list(result.committee)} f={result.threshold} "
            f"[{result.started_at:.1f}, {result.completed_at:.1f}] {unit}"
            f"{overlays}"
        )


def _cmd_churn(args: argparse.Namespace, *, epochs: int, rounds: int, chaos) -> int:
    """``repro run --reshare`` / ``repro beacon --churn``: handoff epochs."""
    import time

    from repro.service import run_churn

    # One CLI chaos spec applies to every handoff epoch (the interesting
    # window — epoch 0 is the plain ADKG the existing --chaos flag covers).
    chaos_map = (
        {epoch: chaos for epoch in range(1, epochs)} if chaos is not None else None
    )
    started = time.perf_counter()
    try:
        report = run_churn(
            args.n,
            epochs=epochs,
            churn=args.churn,
            rounds_per_epoch=rounds,
            transport=args.transport,
            seed=args.seed,
            timeout=args.timeout,
            chaos=chaos_map,
        )
    except (TimeoutError, OSError, RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    membership = report.membership
    unit = "rounds" if args.transport == "sim" else "s"
    print(
        f"universe={membership.universe_n} transport={membership.transport} "
        f"seed={membership.seed} epochs={len(membership.results)} "
        f"handoffs={membership.handoffs}"
    )
    _render_churn_epochs(membership, unit)
    for output in report.outputs:
        print(f"  beacon {output.epoch}.{output.round}: {output.value:032x}")
    print(f"group key:          {membership.key_encoded.hex()[:40]}")
    print(f"key invariant:      {membership.key_invariant}")
    print(f"chain verified:     {report.all_verified}")
    print(f"wall clock:         {elapsed:.2f}s")
    return 0 if report.all_verified else 1


def _cmd_sharded_churn(args: argparse.Namespace, *, epochs: int, rounds: int) -> int:
    """``repro beacon --churn --groups k``: per-group handoffs, one beacon."""
    import time

    from repro.service import run_sharded_churn

    if args.group_size is not None:
        universe = args.groups * args.group_size
    else:
        universe = args.n
    started = time.perf_counter()
    try:
        report = run_sharded_churn(
            universe,
            args.groups,
            epochs=epochs,
            churn=args.churn,
            rounds_per_epoch=rounds,
            transport=args.transport,
            seed=args.seed,
            timeout=args.timeout,
        )
    except (TimeoutError, OSError, RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    print(
        f"universe={report.universe} groups={report.groups} "
        f"transport={report.transport} seed={report.seed} "
        f"epochs={report.epochs}"
    )
    for gid, group_report in enumerate(report.group_reports):
        committees = report.committees(gid)
        print(
            f"group {gid}: key_invariant={group_report.key_invariant} "
            f"committees={[list(c) for c in committees]}"
        )
    for output in report.combined:
        print(f"  beacon {output.epoch}.{output.round}: {output.value:032x}")
    print(f"per-group keys invariant:  {report.key_invariant}")
    print(f"combined chain verified:   {report.all_verified}")
    print(f"wall clock:                {elapsed:.2f}s")
    return 0 if report.all_verified else 1


def _cmd_sharded(args: argparse.Namespace, *, epochs: int, rounds: int) -> int:
    """Shared ``--groups`` path of ``repro run`` and ``repro beacon``."""
    import time

    from repro.service import run_sharded

    if args.group_size is not None:
        universe = args.groups * args.group_size
    else:
        universe = args.n
    started = time.perf_counter()
    try:
        report = run_sharded(
            universe=universe,
            groups=args.groups,
            epochs=epochs,
            rounds_per_epoch=rounds,
            transport=args.transport,
            mode=args.shard_mode,
            seed=args.seed,
            timeout=args.timeout,
        )
    except (TimeoutError, OSError, RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    print(
        f"universe={report.universe} groups={report.groups} "
        f"sizes={list(report.group_sizes)} mode={report.mode} "
        f"transport={report.transport} seed={report.seed} epochs={report.epochs}"
    )
    for result in report.group_results:
        keys = [r.public_key for r in result.epoch_results]
        last = str(keys[-1])[:40] if keys and keys[-1] is not None else "?"
        print(
            f"group {result.gid}: n={len(result.members)} agreed={result.agreed} "
            f"words={result.metrics.words_total:,} "
            f"messages={result.metrics.messages_total:,}  pk={last}"
        )
    for output in report.combined:
        print(f"  beacon {output.epoch}.{output.round}: {output.value:032x}")
    if report.executor_fallback:
        print("shard executor:  broken pool, completed inline")
    print(f"combined outputs verified:  {report.all_verified}")
    print(f"words sent (all groups):    {report.merged.words_total:,}")
    print(f"messages sent (all groups): {report.merged.messages_total:,}")
    print(f"bytes on wire (all groups): {report.merged.bytes_total:,}")
    print(f"wall clock:                 {elapsed:.2f}s")
    return 0 if report.all_verified else 1


def _check_shard_flags(args: argparse.Namespace) -> int:
    """Usage validation for the ``--groups`` path; 0 when fine."""
    if args.groups < 1:
        print("error: --groups must be >= 1", file=sys.stderr)
        return 2
    if args.group_size is not None and args.group_size < 2:
        print("error: --group-size must be >= 2", file=sys.stderr)
        return 2
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import time

    from repro import run_adkg

    if args.groups is not None:
        incompatible = (
            args.full
            or args.profile
            or args.chaos
            or args.crash
            or args.workers
            or args.no_batching
            or args.reshare is not None
        )
        if incompatible:
            print(
                "error: --groups is incompatible with --full/--profile/"
                "--chaos/--crash/--workers/--no-batching/--reshare (groups "
                "parallelize per shard, not per verify; churn a sharded "
                "service with `repro beacon --churn --groups`)",
                file=sys.stderr,
            )
            return 2
        status = _check_shard_flags(args)
        if status:
            return status
        return _cmd_sharded(args, epochs=1, rounds=1)
    if args.full and args.transport != "sim":
        print("error: --full applies to the sim transport only", file=sys.stderr)
        return 2
    if args.recover and not args.crash:
        print("error: --recover requires --crash", file=sys.stderr)
        return 2
    chaos = None
    if args.chaos:
        from repro.net.chaos import ChaosSpec

        try:
            chaos = ChaosSpec.parse(args.chaos)
        except ValueError as exc:
            print(f"error: --chaos: {exc}", file=sys.stderr)
            return 2
    if args.churn and args.reshare is None:
        print("error: --churn requires --reshare EPOCHS", file=sys.stderr)
        return 2
    if args.reshare is not None:
        if args.reshare < 1:
            print("error: --reshare expects >= 1 epochs", file=sys.stderr)
            return 2
        if args.full or args.profile or args.crash or args.workers or args.no_batching:
            print(
                "error: --reshare is incompatible with --full/--profile/"
                "--crash/--workers/--no-batching",
                file=sys.stderr,
            )
            return 2
        return _cmd_churn(args, epochs=args.reshare, rounds=1, chaos=chaos)
    if args.crash:
        # Chaos composes with crash-recovery: the link-fault plane wraps
        # the same delivery seam the freeze/thaw hooks use, so a party
        # can replay its WAL into a still-degraded network.
        if args.full or args.profile:
            print(
                "error: --crash is incompatible with --full/--profile",
                file=sys.stderr,
            )
            return 2
        return _cmd_run_with_recovery(args, chaos=chaos)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    started = time.perf_counter()
    try:
        result = run_adkg(
            n=args.n,
            seed=args.seed,
            to_quiescence=args.full,
            transport=args.transport,
            measure_bytes=True,
            batching=not args.no_batching,
            timeout=args.timeout,
            workers=args.workers,
            chaos=chaos,
        )
    except TimeoutError:
        print(
            f"error: no agreement within {args.timeout}s on the "
            f"{args.transport} transport (raise --timeout?)",
            file=sys.stderr,
        )
        return 1
    except OSError as exc:
        print(f"error: transport failure: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    if profiler is not None:
        import io
        import pstats

        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer).sort_stats("cumulative")
        stats.print_stats(20)
        print(buffer.getvalue())
    summary = result.metrics_summary
    pool = summary.get("counters", {}).get("pool", {})
    plane = (
        f"pool ({pool.get('tasks', 0):,} tasks / {pool.get('batches', 0):,} batches)"
        if pool
        else "inline"
    )
    print(f"n={result.n} f={result.f} seed={args.seed} transport={result.transport}")
    print(f"agreed:        {result.agreed}")
    print(f"crypto plane:  {plane}")
    print(f"contributors:  {sorted(result.transcript.contributors)}")
    print(f"words sent:    {result.words_total:,}")
    print(f"messages sent: {result.messages_total:,}")
    print(f"bytes on wire: {result.bytes_total:,}")
    frames = summary.get("frames_total", 0)
    if frames:
        print(
            f"wire frames:   {frames:,} "
            f"(saved {summary['frames_saved']:,}, "
            f"{summary['batch_occupancy_mean']:.1f} envelopes/frame, "
            f"max {summary['batch_occupancy_max']})"
        )
        if summary.get("wire_bytes_total"):
            print(
                f"coalesced to:  {summary['wire_bytes_total']:,} bytes "
                f"(saved {summary['wire_bytes_saved']:,} vs unbatched)"
            )
    else:
        print("wire frames:   unbatched (one per message)")
    counters = summary.get("counters", {})
    chaos_counts = counters.get("chaos", {})
    if chaos_counts:
        injected = ", ".join(
            f"{name}={count:,}" for name, count in sorted(chaos_counts.items())
        )
        print(f"chaos faults:  {injected}")
    tcp_counts = counters.get("tcp", {})
    if tcp_counts:
        health = ", ".join(
            f"{name}={count:,}" for name, count in sorted(tcp_counts.items())
        )
        print(f"tcp health:    {health}")
    print(f"async rounds:  {result.rounds:.0f}")
    print(f"NWH views:     {result.views}")
    print(f"wall clock:    {elapsed:.2f}s")
    return 0 if result.agreed else 1


def _cmd_beacon(args: argparse.Namespace) -> int:
    from repro.service import run_beacon

    if args.pipeline_depth < 1 or args.epochs < 1 or args.rounds < 1:
        print(
            "error: --epochs, --pipeline-depth and --rounds must be >= 1",
            file=sys.stderr,
        )
        return 2
    if args.groups is not None:
        status = _check_shard_flags(args)
        if status:
            return status
        if args.churn is not None:
            return _cmd_sharded_churn(args, epochs=args.epochs, rounds=args.rounds)
        return _cmd_sharded(args, epochs=args.epochs, rounds=args.rounds)
    if args.churn is not None:
        return _cmd_churn(args, epochs=args.epochs, rounds=args.rounds, chaos=None)
    try:
        report = run_beacon(
            n=args.n,
            epochs=args.epochs,
            pipeline_depth=args.pipeline_depth,
            rounds_per_epoch=args.rounds,
            transport=args.transport,
            seed=args.seed,
            timeout=args.timeout,
        )
    except TimeoutError:
        print(
            f"error: an epoch missed the {args.timeout}s deadline on the "
            f"{args.transport} transport (raise --timeout?)",
            file=sys.stderr,
        )
        return 1
    except OSError as exc:
        print(f"error: transport failure: {exc}", file=sys.stderr)
        return 1
    unit = "rounds" if args.transport == "sim" else "s"
    print(
        f"n={report.n} f={report.f} seed={report.seed} "
        f"transport={report.transport} epochs={report.epochs} "
        f"pipeline-depth={report.pipeline_depth}"
    )
    for result in report.epoch_results:
        key = result.public_key
        print(
            f"epoch {result.epoch}: key established "
            f"[{result.started_at:.1f}, {result.completed_at:.1f}] {unit}"
            + (f"  pk={str(key)[:40]}" if key is not None else "")
        )
    for output in report.outputs:
        print(
            f"  beacon {output.epoch}.{output.round}: {output.value:032x}"
        )
    print(f"beacon outputs verified:  {report.all_verified}")
    print(f"end-to-end:               {report.end_to_end:.2f} {unit}")
    print(f"mean epoch latency:       {report.mean_epoch_latency:.2f} {unit}")
    print(f"epochs/sec (wall clock):  {report.epochs_per_sec:.2f}")
    print(f"words sent:               {report.words_total:,}")
    print(f"bytes on wire:            {report.bytes_total:,}")
    return 0 if report.all_verified else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.complexity import fit_power_law
    from repro.analysis.experiments import run_adkg_experiment
    from repro.analysis.tables import render_table

    ns = list(range(args.min_n, args.max_n + 1, 3))
    rows = run_adkg_experiment(ns, seeds=(args.seed,))
    print(render_table(rows, columns=["n", "mean_words", "mean_rounds", "mean_views"]))
    fit = fit_power_law([r["n"] for r in rows], [r["mean_words"] for r in rows])
    print(f"\nfitted words ~ n^{fit.exponent:.2f}  (paper: Õ(n³))")
    return 0


def _cmd_drill(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_fault_matrix
    from repro.analysis.tables import render_table

    rows = run_fault_matrix(n=args.n, seed=args.seed)
    print(
        render_table(
            rows, columns=["fault", "honest_outputs", "agreement", "valid", "rounds"]
        )
    )
    ok = all(row["agreement"] and row["valid"] for row in rows)
    print(f"\nsafety held in every case: {ok}")
    return 0 if ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_baseline_comparison
    from repro.analysis.tables import render_table

    ns = list(range(args.min_n, args.max_n + 1, 3))
    rows = run_baseline_comparison(ns, seed=args.seed)
    print(
        render_table(
            rows,
            columns=[
                "n",
                "ours_words",
                "baseline_words",
                "word_ratio",
                "ours_rounds",
                "baseline_rounds",
            ],
        )
    )
    return 0


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    """The sharded scale-out flags shared by ``run`` and ``beacon``."""
    parser.add_argument(
        "--groups",
        type=int,
        default=None,
        metavar="K",
        help="shard the party universe into K independent DKG groups and "
        "aggregate their beacons into one service (DESIGN section 12)",
    )
    parser.add_argument(
        "--group-size",
        type=int,
        default=None,
        metavar="N",
        help="parties per group (universe = K*N); default: split -n across "
        "the K groups",
    )
    parser.add_argument(
        "--shard-mode",
        choices=("multiplexed", "sequential", "process"),
        default="multiplexed",
        help="where groups execute: one shared transport, solo transports "
        "one-by-one, or one worker process per group",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A-DKG reproduction (Abraham et al., PODC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one A-DKG over a chosen transport")
    run_p.add_argument("-n", type=int, default=7, help="number of parties")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--transport",
        choices=("sim", "asyncio", "tcp"),
        default="sim",
        help="runtime: deterministic simulator, realtime asyncio, or TCP sockets",
    )
    run_p.add_argument(
        "--full",
        action="store_true",
        help="run to quiescence (count all words; sim transport only)",
    )
    run_p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="wall-clock limit for realtime transports (seconds)",
    )
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="wrap the run in cProfile and print the top-20 cumulative entries",
    )
    run_p.add_argument(
        "--no-batching",
        action="store_true",
        help="disable the coalesced message plane (per-envelope reference plane)",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="verify over N pool processes with speculative pre-verification "
        "(0 = inline; default: the REPRO_WORKERS environment variable)",
    )
    run_p.add_argument(
        "--chaos",
        metavar="SPEC",
        help="link-fault plane spec, e.g. 'partition:0|1,2,3@2-20;drop:0.05' "
        "(clauses: partition, partition-oneway, drop, dup, reorder, corrupt, "
        "delay; times are rounds on sim, seconds on realtime transports)",
    )
    run_p.add_argument(
        "--crash",
        action="append",
        metavar="I@T",
        help="crash party I (losing its memory) after it processed T network "
        "deliveries; repeatable — all named parties crash together at the "
        "earliest T, each recovering from its snapshot + WAL",
    )
    run_p.add_argument(
        "--recover",
        action="append",
        metavar="I@T",
        help="reattach the crashed parties after T rounds (sim) / seconds "
        "(realtime) measured from the crash; all crashed parties recover "
        "together at the largest requested T (default 5)",
    )
    run_p.add_argument(
        "--reshare",
        type=int,
        default=None,
        metavar="EPOCHS",
        help="run EPOCHS membership epochs: a fresh ADKG, then proactive "
        "resharing handoffs that keep the group key byte-identical "
        "(DESIGN section 13); --chaos applies to the handoff epochs",
    )
    run_p.add_argument(
        "--churn",
        metavar="SPEC",
        help="committee churn schedule for --reshare, e.g. "
        "'join:6@1;leave:0@2;threshold:1@3' (event@epoch; epochs are 1-based "
        "because epoch 0 establishes the key)",
    )
    run_p.add_argument(
        "--cadence",
        type=int,
        default=16,
        help="snapshot every this many deliveries at crash-recovering parties",
    )
    run_p.add_argument(
        "--storage-dir",
        default=None,
        help="directory for snapshots + WALs (default: a temp dir)",
    )
    _add_shard_arguments(run_p)
    run_p.set_defaults(func=_cmd_run)

    beacon_p = sub.add_parser(
        "beacon",
        help="pipelined ADKG epochs + verifiable randomness beacon",
    )
    beacon_p.add_argument("-n", type=int, default=7, help="number of parties")
    beacon_p.add_argument("--seed", type=int, default=0)
    beacon_p.add_argument(
        "--epochs", type=int, default=5, help="number of ADKG epochs (key rotations)"
    )
    beacon_p.add_argument(
        "--pipeline-depth",
        type=int,
        default=2,
        help="epochs in flight at once (1 = strictly sequential)",
    )
    beacon_p.add_argument(
        "--rounds", type=int, default=2, help="beacon rounds emitted per epoch"
    )
    beacon_p.add_argument(
        "--transport",
        choices=("sim", "asyncio", "tcp"),
        default="sim",
        help="runtime: deterministic simulator, realtime asyncio, or TCP sockets",
    )
    beacon_p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-epoch wall-clock limit for realtime transports (seconds)",
    )
    beacon_p.add_argument(
        "--churn",
        metavar="SPEC",
        help="drive --epochs as membership epochs under this churn schedule "
        "(e.g. 'join:6@1;leave:0@2'); keys hand off by proactive resharing, "
        "and with --groups each shard runs the schedule on its local indices",
    )
    _add_shard_arguments(beacon_p)
    beacon_p.set_defaults(func=_cmd_beacon)

    sweep_p = sub.add_parser("sweep", help="words/rounds across n")
    sweep_p.add_argument("--min-n", type=int, default=4)
    sweep_p.add_argument("--max-n", type=int, default=13)
    sweep_p.add_argument("--seed", type=int, default=1)
    sweep_p.set_defaults(func=_cmd_sweep)

    drill_p = sub.add_parser("drill", help="Byzantine fault matrix")
    drill_p.add_argument("-n", type=int, default=4)
    drill_p.add_argument("--seed", type=int, default=1)
    drill_p.set_defaults(func=_cmd_drill)

    compare_p = sub.add_parser("compare", help="vs the Ω(n⁴) baseline")
    compare_p.add_argument("--min-n", type=int, default=4)
    compare_p.add_argument("--max-n", type=int, default=10)
    compare_p.add_argument("--seed", type=int, default=1)
    compare_p.set_defaults(func=_cmd_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
