"""Shard groups: k independent DKG rosters multiplexed over one transport.

Word complexity is O(n³) per group (Theorems 6-10), so production scale
comes from running *many* groups, not from growing ``n``.  A
:class:`ShardGroup` describes one such group: its own
:class:`~repro.crypto.keys.TrustedSetup` (independent key material, its
own ``n``/``f``), the universe party ids assigned to it, and the seed its
parties derive every RNG stream from.

The layout contract shared by every execution mode
(``repro.service.shards`` runs the same groups multiplexed on one
transport, sequentially on solo transports, or in worker processes):

* **slots** — on a shared transport, group ``g``'s parties occupy a
  contiguous block of universe slots; envelopes keep carrying
  *group-local* sender/recipient indices (the protocols address peers
  ``0..n_g-1`` and look keys up in the group directory by those
  indices), and the transport resolves the delivery slot from the
  envelope's session id;
* **sessions** — group ``g`` owns the session-id block
  ``[g·SESSION_STRIDE, (g+1)·SESSION_STRIDE)``; epoch ``e`` runs as
  session ``g·SESSION_STRIDE + e``.  A solo run of the group uses the
  *same* session ids (``EpochDriver.session_base``), so the per-session
  RNG streams (``{rng_label}-session-{sid}``) — and therefore every PVSS
  dealing — are byte-identical across modes;
* **seeds** — ``group_seed`` is a pure function of the universe seed and
  the gid, so a worker process can rebuild the exact group (setup, party
  RNG labels) from ``(gid, n, f, universe_seed)`` alone — config in as
  plain values, no key material crossing the process boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import TrustedSetup

__all__ = [
    "SESSION_STRIDE",
    "ShardGroup",
    "group_of_session",
    "group_seed",
    "make_shard_group",
    "partition_universe",
]

#: Session ids per group: group ``g``'s epoch ``e`` is session
#: ``g * SESSION_STRIDE + e``.  Part of the cross-mode identity contract
#: (the solo runs must use the same ids), so treat like a wire constant.
SESSION_STRIDE = 1 << 16


def group_of_session(session: int) -> int:
    """The gid owning a session id (sessions are blocked per group)."""
    return session // SESSION_STRIDE


def group_seed(seed: int, gid: int) -> int:
    """The group's deterministic seed, derived from the universe seed.

    A pure function of ``(seed, gid)`` so every execution mode — and a
    worker process rebuilding the group from its config tuple — lands on
    identical key material and party RNG labels.
    """
    return int.from_bytes(hash_bytes("shard-seed", seed, gid)[:6], "big")


@dataclass(frozen=True)
class ShardGroup:
    """One DKG group of a sharded deployment."""

    gid: int
    setup: TrustedSetup = field(repr=False)
    seed: int
    #: Universe party ids assigned to this group; local index ``i`` is
    #: universe member ``members[i]`` (provenance/report data only — the
    #: protocols run on local indices).
    members: tuple[int, ...]

    @property
    def n(self) -> int:
        return self.setup.directory.n

    @property
    def f(self) -> int:
        return self.setup.directory.f

    @property
    def session_base(self) -> int:
        return self.gid * SESSION_STRIDE

    def session_of(self, epoch: int) -> int:
        if not 0 <= epoch < SESSION_STRIDE:
            raise ValueError(f"epoch {epoch} outside the group's session block")
        return self.session_base + epoch


def make_shard_group(
    gid: int,
    n: int,
    f: Optional[int],
    seed: int,
    members: tuple[int, ...] = (),
    params: str = "TESTING",
) -> ShardGroup:
    """Materialize one group from its plain-value description.

    The single constructor every mode shares: the coordinator, the solo
    (sequential) runner and the shard-executor worker all call this, so
    "same config tuple" implies "same keys, same RNG labels" — the root
    of the cross-mode byte-identity invariant.
    """
    gseed = group_seed(seed, gid)
    setup = TrustedSetup.generate(
        n, f=f, params=params, seed=gseed, session=f"adkg-shard-{gid}"
    )
    return ShardGroup(gid=gid, setup=setup, seed=gseed, members=tuple(members))


def partition_universe(
    universe: int, groups: int, seed: int
) -> tuple[tuple[int, ...], ...]:
    """Deterministic seeded assignment of universe ids to ``groups`` groups.

    A seeded shuffle sliced into contiguous chunks: every party lands in
    exactly one group, group sizes differ by at most one, and the same
    ``(universe, groups, seed)`` always yields the same assignment — the
    coordinator's membership decision is reproducible from the seed
    alone.
    """
    if groups < 1:
        raise ValueError("need at least one group")
    if universe < groups:
        raise ValueError(f"cannot split {universe} parties into {groups} groups")
    ids = list(range(universe))
    random.Random(f"shard-assign-{seed}").shuffle(ids)
    base, extra = divmod(universe, groups)
    assignment = []
    cursor = 0
    for gid in range(groups):
        size = base + (1 if gid < extra else 0)
        assignment.append(tuple(ids[cursor : cursor + size]))
        cursor += size
    return tuple(assignment)
