"""The sans-io Protocol base class.

A protocol instance is a state machine bound to one party and one
*instance path*.  It reacts to three kinds of events:

* ``on_start()`` — invoked once when the instance is spawned;
* ``on_message(sender, payload)`` — a point-to-point message addressed to
  this instance arrived;
* ``on_sub_output(name, value)`` — a child instance produced its output.

It acts through the helpers: ``send`` / ``multicast`` queue messages,
``spawn`` creates a child instance (the child's path extends the
parent's), ``output`` delivers this instance's result to the parent (or
to the party if this is the root), and ``upon`` registers an "upon
<predicate>, do <action>" condition re-checked after every event.

Protocols never block; the paper's "wait for X" clauses become ``upon``
conditions over accumulated state.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.net.conditions import Completion, Condition
from repro.net.payload import Payload

if TYPE_CHECKING:
    from repro.crypto.keys import PartySecret, PublicDirectory
    from repro.net.party import Party


class Protocol:
    """Base class for sans-io protocol instances."""

    def __init__(self) -> None:
        self._party: Optional["Party"] = None
        self._path: tuple = ()
        self._parent: Optional["Protocol"] = None
        self._name: Any = None
        self._session: int = 0
        self._output_done = False
        self.output_value: Any = None

    # -- event hooks (override in subclasses) ------------------------------------

    def on_start(self) -> None:
        """Called once when the instance is spawned."""

    def on_message(self, sender: int, payload: Payload) -> None:
        """Called for each payload addressed to this instance."""

    def on_sub_output(self, name: Any, value: Any) -> None:
        """Called when child instance ``name`` outputs ``value``."""

    # -- identity ------------------------------------------------------------------

    @property
    def party(self) -> "Party":
        if self._party is None:
            raise RuntimeError("protocol not bound to a party yet")
        return self._party

    @property
    def path(self) -> tuple:
        return self._path

    @property
    def session(self) -> int:
        """The session id this instance (and its whole tree) belongs to."""
        return self._session

    @property
    def me(self) -> int:
        return self.party.index

    @property
    def n(self) -> int:
        return self.party.n

    @property
    def f(self) -> int:
        return self.party.f

    @property
    def quorum(self) -> int:
        """``n - f``, the paper's ubiquitous waiting threshold."""
        return self.party.n - self.party.f

    @property
    def rng(self) -> random.Random:
        """This session's deterministic RNG stream at this party."""
        return self.party.session_rng(self._session)

    @property
    def directory(self) -> "PublicDirectory":
        return self.party.directory

    @property
    def secret(self) -> "PartySecret":
        return self.party.secret

    @property
    def has_output(self) -> bool:
        return self._output_done

    # -- actions --------------------------------------------------------------------

    def send(self, recipient: int, payload: Payload) -> None:
        """Queue a point-to-point message to ``recipient`` for this instance."""
        self.party.queue_send(self._path, recipient, payload, session=self._session)

    def multicast(self, payload: Payload) -> None:
        """Send to every party, self included (the paper's "send to all")."""
        for recipient in range(self.n):
            self.send(recipient, payload)

    def spawn(self, name: Any, child: "Protocol") -> "Protocol":
        """Create child instance ``name``; its path is ``self.path + (name,)``."""
        return self.party.spawn(self, name, child)

    def output(self, value: Any) -> None:
        """Deliver this instance's output (once) to the parent / party.

        Per the paper, instances keep processing messages after
        outputting; ``output`` does not stop the instance.
        """
        if self._output_done:
            return
        self._output_done = True
        self.output_value = value
        self.party.dispatch_output(self, value)

    def upon(
        self,
        predicate: Callable[[], bool],
        action: Callable[[], None],
        once: bool = True,
        label: str = "",
    ) -> Condition:
        """Register an "upon <predicate>, do <action>" clause.

        The clause lives in this *session's* registry: it is swept after
        events of this session and freed with the session on GC.
        """
        return self.party.conditions_for(self._session).add(
            predicate, action, once=once, label=label
        )

    def completion_when(
        self,
        predicate: Callable[[], bool],
        value_fn: Callable[[], Any] = lambda: None,
        label: str = "",
    ) -> Completion:
        """A :class:`Completion` that resolves when ``predicate`` first holds."""
        completion = Completion()
        self.upon(predicate, lambda: completion.resolve(value_fn()), label=label)
        return completion
