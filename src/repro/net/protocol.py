"""The sans-io Protocol base class.

A protocol instance is a state machine bound to one party and one
*instance path*.  It reacts to three kinds of events:

* ``on_start()`` — invoked once when the instance is spawned;
* ``on_message(sender, payload)`` — a point-to-point message addressed to
  this instance arrived;
* ``on_sub_output(name, value)`` — a child instance produced its output.

It acts through the helpers: ``send`` / ``multicast`` queue messages,
``spawn`` creates a child instance (the child's path extends the
parent's), ``output`` delivers this instance's result to the parent (or
to the party if this is the root), and ``upon`` registers an "upon
<predicate>, do <action>" condition re-checked after every event.

Protocols never block; the paper's "wait for X" clauses become ``upon``
conditions over accumulated state.

Durability contract
-------------------
Every protocol is an *explicitly serializable* state machine: its whole
mutable state lives in the attributes named by :attr:`Protocol.STATE_FIELDS`
(codec-encodable values only — no closures, no instance references), so a
party can be frozen to bytes mid-session and rehydrated elsewhere (see
:meth:`repro.net.party.Party.freeze` / ``thaw`` and DESIGN.md section 9).
Four hooks implement the contract:

* :meth:`capture_state` / :meth:`apply_state` — read/write the declared
  fields (override only to convert representations, e.g. a ``defaultdict``);
* :meth:`build_child` — reconstruct a previously spawned child instance
  (the parent supplies the non-serializable constructor arguments such as
  validator closures; the child's mutable state is restored separately);
* :meth:`rearm` — re-register the pending ``upon`` conditions implied by
  the restored state.  Conditions are never serialized: they are closures,
  but every one of them is a pure function of declared state, so the
  restored instance re-derives them.  Actions must therefore be idempotent
  with respect to already-fired work (the snapshot is always taken at a
  condition fixpoint, so a re-armed condition that is immediately
  satisfiable corresponds to work that already ran and must re-fire as a
  no-op).

``on_start`` is *not* called on restore — its sends already happened in
the pre-snapshot life of the instance.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.net.conditions import Completion, Condition
from repro.net.payload import Payload

if TYPE_CHECKING:
    from repro.crypto.keys import PartySecret, PublicDirectory
    from repro.net.party import Party


class Protocol:
    """Base class for sans-io protocol instances."""

    #: Names of the attributes that constitute this instance's mutable
    #: state.  Everything a restored instance needs beyond its
    #: constructor arguments must be listed here and hold codec-encodable
    #: values; ``snapshot()``/``restore()`` round-trip exactly these.
    STATE_FIELDS: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._party: Optional["Party"] = None
        self._path: tuple = ()
        self._parent: Optional["Protocol"] = None
        self._name: Any = None
        self._session: int = 0
        self._output_done = False
        self.output_value: Any = None

    # -- event hooks (override in subclasses) ------------------------------------

    def on_start(self) -> None:
        """Called once when the instance is spawned."""

    def on_message(self, sender: int, payload: Payload) -> None:
        """Called for each payload addressed to this instance."""

    def on_sub_output(self, name: Any, value: Any) -> None:
        """Called when child instance ``name`` outputs ``value``."""

    def preverify(self, sender: int, payload: Payload) -> tuple:
        """``(domain, parts)`` tasks to speculatively pre-verify for ``payload``.

        Consulted by :meth:`repro.net.party.Party.preverify` when a frame
        arrives for this instance, *before* :meth:`on_message` runs.
        Defaults to the payload's own :meth:`~repro.net.payload.Payload.
        verify_tasks`; override when the instance holds context the
        payload alone lacks (e.g. which transcript an evaluation share
        will be checked against).  Must be side-effect free on protocol
        state and consume no protocol randomness.
        """
        del sender
        return payload.verify_tasks(self.directory)

    # -- identity ------------------------------------------------------------------

    @property
    def party(self) -> "Party":
        if self._party is None:
            raise RuntimeError("protocol not bound to a party yet")
        return self._party

    @property
    def path(self) -> tuple:
        return self._path

    @property
    def session(self) -> int:
        """The session id this instance (and its whole tree) belongs to."""
        return self._session

    @property
    def me(self) -> int:
        return self.party.index

    @property
    def n(self) -> int:
        return self.party.n

    @property
    def f(self) -> int:
        return self.party.f

    @property
    def quorum(self) -> int:
        """``n - f``, the paper's ubiquitous waiting threshold."""
        return self.party.n - self.party.f

    @property
    def rng(self) -> random.Random:
        """This session's deterministic RNG stream at this party."""
        return self.party.session_rng(self._session)

    @property
    def directory(self) -> "PublicDirectory":
        return self.party.directory

    @property
    def secret(self) -> "PartySecret":
        return self.party.secret

    @property
    def has_output(self) -> bool:
        return self._output_done

    # -- actions --------------------------------------------------------------------

    def send(self, recipient: int, payload: Payload) -> None:
        """Queue a point-to-point message to ``recipient`` for this instance."""
        self.party.queue_send(self._path, recipient, payload, session=self._session)

    def multicast(self, payload: Payload) -> None:
        """Send to every party, self included (the paper's "send to all")."""
        for recipient in range(self.n):
            self.send(recipient, payload)

    def spawn(self, name: Any, child: "Protocol") -> "Protocol":
        """Create child instance ``name``; its path is ``self.path + (name,)``."""
        return self.party.spawn(self, name, child)

    def output(self, value: Any) -> None:
        """Deliver this instance's output (once) to the parent / party.

        Per the paper, instances keep processing messages after
        outputting; ``output`` does not stop the instance.
        """
        if self._output_done:
            return
        self._output_done = True
        self.output_value = value
        self.party.dispatch_output(self, value)

    def upon(
        self,
        predicate: Callable[[], bool],
        action: Callable[[], None],
        once: bool = True,
        label: str = "",
    ) -> Condition:
        """Register an "upon <predicate>, do <action>" clause.

        The clause lives in this *session's* registry: it is swept after
        events of this session and freed with the session on GC.
        """
        return self.party.conditions_for(self._session).add(
            predicate, action, once=once, label=label
        )

    def completion_when(
        self,
        predicate: Callable[[], bool],
        value_fn: Callable[[], Any] = lambda: None,
        label: str = "",
    ) -> Completion:
        """A :class:`Completion` that resolves when ``predicate`` first holds."""
        completion = Completion()
        self.upon(predicate, lambda: completion.resolve(value_fn()), label=label)
        return completion

    # -- durability (snapshot / restore) ------------------------------------------------

    def snapshot(self) -> tuple:
        """This instance's serializable record: ``(class_name, done, value, state)``.

        The record is codec-encodable by construction (every declared
        state field must hold encodable values) and carries the base
        output bookkeeping alongside :meth:`capture_state`'s fields.
        ``class_name`` is a restore-time sanity check, not a factory key:
        instances are rebuilt by :meth:`build_child` / the root factory,
        never by reflection over the wire bytes.
        """
        return (
            type(self).__name__,
            self._output_done,
            self.output_value,
            self.capture_state(),
        )

    def restore(self, record: tuple) -> None:
        """Apply a :meth:`snapshot` record to this freshly constructed instance.

        The instance must already be installed at its path (so ``party``
        and ``session`` resolve) and must have been built with equivalent
        constructor arguments.  Children and conditions are *not* handled
        here — the party's thaw walks the tree via :meth:`build_child`
        and calls :meth:`rearm` once the whole tree stands.
        """
        cls_name, done, value, state = record
        if cls_name != type(self).__name__:
            raise ValueError(
                f"snapshot of {cls_name!r} cannot restore a "
                f"{type(self).__name__!r} at {self._path!r}"
            )
        self._output_done = bool(done)
        self.output_value = value
        self.apply_state(state)

    def capture_state(self) -> dict:
        """The declared state fields as an encodable dict.

        Override when a field's in-memory representation is not directly
        encodable (e.g. rebuild a ``defaultdict`` in :meth:`apply_state`);
        the override must stay the exact inverse of ``apply_state``.
        """
        return {name: getattr(self, name) for name in self.STATE_FIELDS}

    def apply_state(self, state: dict) -> None:
        """Set the declared state fields from a :meth:`capture_state` dict."""
        for name in self.STATE_FIELDS:
            if name not in state:
                raise ValueError(
                    f"snapshot for {type(self).__name__} misses field {name!r}"
                )
            setattr(self, name, state[name])

    def build_child(self, name: Any) -> "Protocol":
        """Reconstruct the child instance spawned under ``name``.

        Called during restore, after this instance's own state was
        applied, once per child recorded in the snapshot.  The parent
        supplies exactly the constructor arguments the original spawn
        used (validators, broadcast kinds, ...); ``on_start`` is never
        called on the rebuilt child.
        """
        raise NotImplementedError(
            f"{type(self).__name__} spawned child {name!r} but does not "
            "implement build_child()"
        )

    def rearm(self) -> None:
        """Re-register the pending ``upon`` conditions implied by state.

        Called once per instance after the whole tree was restored
        (parents before children, in original spawn order).  The default
        is no conditions.
        """
