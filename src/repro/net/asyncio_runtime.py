"""Realtime asyncio transport for the same sans-io protocol objects.

The deterministic simulator (:mod:`repro.net.runtime`) is what the
benchmarks use; this runtime exists to demonstrate that the protocol
implementations are genuinely transport-agnostic — they run unchanged
over asyncio with real concurrent delivery, which is how a deployment
would host them.

Each network envelope becomes an ``asyncio`` task that sleeps for a
random delay and then delivers; self-addressed envelopes are delivered
inline.  Words/messages are metered exactly like the simulator.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Optional

from repro.crypto.keys import TrustedSetup
from repro.net.adversary import Behavior
from repro.net.envelope import Envelope
from repro.net.metrics import Metrics
from repro.net.party import Party
from repro.net.protocol import Protocol

RootFactory = Callable[[Party], Protocol]


class AsyncioRuntime:
    """Run an n-party protocol over asyncio with real sleeps."""

    def __init__(
        self,
        setup: TrustedSetup,
        max_delay: float = 0.005,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
    ) -> None:
        directory = setup.directory
        self.setup = setup
        self.n = directory.n
        self.f = directory.f
        self.max_delay = max_delay
        self.behaviors = dict(behaviors or {})
        self.metrics = Metrics()
        self._rng = random.Random(f"asyncio-runtime-{seed}")
        self.parties = [
            Party(
                index=i,
                n=self.n,
                f=self.f,
                rng=random.Random(f"asyncio-party-{seed}-{i}"),
                directory=directory,
                secret=setup.secret(i),
            )
            for i in range(self.n)
        ]
        self._tasks: set[asyncio.Task] = set()
        self._all_output = asyncio.Event()

    async def run(self, root_factory: RootFactory, timeout: float = 60.0) -> dict[int, Any]:
        """Start every party; return honest outputs (raises on timeout)."""
        for party in self.parties:
            party.run_root(root_factory(party))
            party.sweep_conditions()
        for party in self.parties:
            self._flush(party)
        self._check_done()
        try:
            await asyncio.wait_for(self._all_output.wait(), timeout=timeout)
        finally:
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
        honest = frozenset(range(self.n)) - frozenset(self.behaviors)
        return {i: self.parties[i].result for i in sorted(honest)}

    # -- internals -----------------------------------------------------------------

    def _flush(self, party: Party) -> None:
        pending = party.collect_outbox()
        while pending:
            envelope = pending.pop(0)
            if envelope.recipient == envelope.sender:
                self.metrics.record_delivery(envelope)
                party.deliver(envelope)
                pending.extend(party.collect_outbox())
                continue
            behavior = self.behaviors.get(envelope.sender)
            outgoing = (
                behavior.transform_outgoing(envelope, self._rng)
                if behavior is not None
                else [envelope]
            )
            for env in outgoing:
                self.metrics.record_send(env)
                task = asyncio.ensure_future(self._deliver_later(env))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    async def _deliver_later(self, envelope: Envelope) -> None:
        await asyncio.sleep(self._rng.uniform(0.0, self.max_delay))
        behavior = self.behaviors.get(envelope.recipient)
        if behavior is not None and not behavior.allow_delivery(envelope, self._rng):
            return
        self.metrics.record_delivery(envelope)
        recipient = self.parties[envelope.recipient]
        recipient.deliver(envelope)
        self._flush(recipient)
        self._check_done()

    def _check_done(self) -> None:
        honest = frozenset(range(self.n)) - frozenset(self.behaviors)
        if all(self.parties[i].has_result for i in honest):
            self._all_output.set()
