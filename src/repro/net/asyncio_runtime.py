"""Realtime asyncio transport for the same sans-io protocol objects.

The deterministic simulator (:mod:`repro.net.runtime`) is what the
benchmarks use; this runtime exists to demonstrate that the protocol
implementations are genuinely transport-agnostic — they run unchanged
over asyncio with real concurrent delivery, which is how a deployment
would host them.

On the unbatched plane each network envelope becomes an ``asyncio`` task
that sleeps for a random delay and then delivers; self-addressed
envelopes are delivered inline.  On the batched plane (default) one
activation's sends are grouped per (sender, recipient) link and each
group becomes *one* task with one sleep, delivered as a unit — the
task-per-envelope overhead amortizes just like the TCP runtime's frames.
Words/messages are metered exactly like the simulator (pass
``measure_bytes=True`` to also meter codec bytes).  The outbox/behavior/
metrics pipeline is the shared :class:`~repro.net.transport.Transport`
one; only the in-flight mechanism lives here.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional

from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import Behavior
from repro.net.envelope import Envelope
from repro.net.transport import (
    FRAME_HEADER_BYTES,
    RealtimeTransport,
    RootFactory,
)

__all__ = ["AsyncioRuntime", "RootFactory"]


class AsyncioRuntime(RealtimeTransport):
    """Run an n-party protocol over asyncio with real sleeps."""

    def __init__(
        self,
        setup: Optional[TrustedSetup],
        max_delay: float = 0.005,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        measure_bytes: bool = False,
        batching: bool = True,
        workers: int = 0,
        chaos=None,
        shards=None,
    ) -> None:
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace="asyncio-runtime",
            measure_bytes=measure_bytes,
            batching=batching,
            workers=workers,
            chaos=chaos,
            shards=shards,
        )
        self.max_delay = max_delay
        self._delay_rng = random.Random(f"asyncio-runtime-net-{seed}")

    # -- transport hooks ---------------------------------------------------------------

    def _transmit(self, envelope: Envelope, frame: bytes | None) -> bool:
        self._spawn(self._deliver_later(envelope))
        return True

    async def _deliver_later(self, envelope: Envelope) -> None:
        await asyncio.sleep(self._delay_rng.uniform(0.0, self.max_delay))
        if self.pool is not None:
            self._preverify_batch((envelope,))
        self._deliver_envelope(envelope)

    def _transmit_coalesced(self, batch: list) -> None:
        """One sleeping task per (sender, recipient) link per flush."""
        groups: dict[tuple[int, int], list[Envelope]] = {}
        for envelope, _nbytes, _delay in batch:
            # Slot pairs, not raw indices: in sharded mode two groups'
            # local (s, r) pairs are distinct links.
            pair = self._pair_slots(envelope)
            group = groups.get(pair)
            if group is None:
                groups[pair] = group = []
            group.append(envelope)
        for envelopes in groups.values():
            nbytes = None
            if self.measure_bytes:
                try:
                    nbytes = FRAME_HEADER_BYTES + codec.encoded_batch_size(
                        envelopes
                    )
                except codec.CodecError:
                    nbytes = None  # forged unencodable payload in group
            self.metrics.record_frame(len(envelopes), nbytes)
            self._spawn(self._deliver_batch_later(envelopes))

    async def _deliver_batch_later(self, envelopes: list[Envelope]) -> None:
        await asyncio.sleep(self._delay_rng.uniform(0.0, self.max_delay))
        if self.pool is not None:
            self._preverify_batch(envelopes)
        for envelope in envelopes:
            self._deliver_buffered(envelope)
        self._flush_coalesced()
