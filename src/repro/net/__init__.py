"""Asynchronous message-passing substrate.

Protocols are *sans-io* state machines (:class:`repro.net.protocol.Protocol`)
composed into per-party stacks (:class:`repro.net.party.Party`) and executed
either by the deterministic discrete-event simulator
(:class:`repro.net.runtime.Simulation`) or by the realtime asyncio runner
(:mod:`repro.net.asyncio_runtime`).  The transport meters words, messages
and causal rounds (:mod:`repro.net.metrics`), and the adversary controls
both message scheduling and Byzantine party behaviour
(:mod:`repro.net.adversary`).
"""

from repro.net.payload import Payload, words_of
from repro.net.envelope import Envelope
from repro.net.conditions import Completion
from repro.net.protocol import Protocol
from repro.net.party import Party
from repro.net.metrics import Metrics
from repro.net.delays import (
    DelayModel,
    FixedDelay,
    UniformDelay,
    ExponentialDelay,
    HeavyTailDelay,
)
from repro.net.runtime import Simulation
from repro.net.adversary import (
    Behavior,
    CrashBehavior,
    SilentBehavior,
    DropBehavior,
    MutateBehavior,
    EquivocateBehavior,
    TargetedLagScheduler,
    RandomLagScheduler,
)

__all__ = [
    "Payload",
    "words_of",
    "Envelope",
    "Completion",
    "Protocol",
    "Party",
    "Metrics",
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "ExponentialDelay",
    "HeavyTailDelay",
    "Simulation",
    "Behavior",
    "CrashBehavior",
    "SilentBehavior",
    "DropBehavior",
    "MutateBehavior",
    "EquivocateBehavior",
    "TargetedLagScheduler",
    "RandomLagScheduler",
]
