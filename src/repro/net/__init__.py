"""Asynchronous message-passing substrate.

Protocols are *sans-io* state machines (:class:`repro.net.protocol.Protocol`)
composed into per-party stacks (:class:`repro.net.party.Party`) and executed
by a pluggable :class:`repro.net.transport.Transport`: the deterministic
discrete-event simulator (:class:`repro.net.runtime.Simulation`), the
realtime asyncio runner (:mod:`repro.net.asyncio_runtime`) or the real
socket transport (:mod:`repro.net.tcp_runtime`), which ships every message
as :mod:`repro.net.codec` bytes.  The transport meters words, messages,
bytes and causal rounds (:mod:`repro.net.metrics`), and the adversary
controls both message scheduling and Byzantine party behaviour
(:mod:`repro.net.adversary`).  A seeded link-fault plane
(:mod:`repro.net.chaos`) injects partitions, loss, duplication,
reordering, delay and corruption into the shared delivery pipeline on
any transport.
"""

from repro.net.payload import Payload, words_of
from repro.net.envelope import Envelope
from repro.net.conditions import Completion
from repro.net.protocol import Protocol
from repro.net.party import Party
from repro.net.metrics import Metrics
from repro.net.delays import (
    DelayModel,
    FixedDelay,
    UniformDelay,
    ExponentialDelay,
    HeavyTailDelay,
)
from repro.net.transport import (
    Transport,
    RealtimeTransport,
    make_transport,
    TRANSPORT_KINDS,
)
from repro.net.chaos import (
    ChaosPlane,
    ChaosSpec,
    DelayWindow,
    LinkFault,
    Partition,
)
from repro.net.runtime import Simulation
from repro.net.asyncio_runtime import AsyncioRuntime
from repro.net.tcp_runtime import TCPRuntime
from repro.net.adversary import (
    Behavior,
    CrashBehavior,
    SilentBehavior,
    DropBehavior,
    MutateBehavior,
    EquivocateBehavior,
    TargetedLagScheduler,
    RandomLagScheduler,
)

__all__ = [
    "Payload",
    "words_of",
    "Envelope",
    "Completion",
    "Protocol",
    "Party",
    "Metrics",
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "ExponentialDelay",
    "HeavyTailDelay",
    "Transport",
    "RealtimeTransport",
    "make_transport",
    "TRANSPORT_KINDS",
    "ChaosPlane",
    "ChaosSpec",
    "DelayWindow",
    "LinkFault",
    "Partition",
    "Simulation",
    "AsyncioRuntime",
    "TCPRuntime",
    "Behavior",
    "CrashBehavior",
    "SilentBehavior",
    "DropBehavior",
    "MutateBehavior",
    "EquivocateBehavior",
    "TargetedLagScheduler",
    "RandomLagScheduler",
]
