"""Deterministic link-level fault injection — the chaos plane.

The paper's model (Section 2) gives the adversary full control over
message *delay and ordering*, subject to one obligation: every message
between honest parties is eventually delivered.  The schedulers in
:mod:`repro.net.adversary` express that power abstractly (multiply a
delay); this module expresses it the way real networks misbehave —
partitions that heal, lossy links whose transmissions are retried,
duplicated and reordered packets, flipped bytes — while *preserving the
eventual-delivery obligation by construction*, so any chaos schedule is
still a legal asynchronous adversary and the protocol must reach
agreement under it.

One seam, three runtimes: the plane hooks the shared
:meth:`~repro.net.transport.Transport._deliver_buffered` pipeline, so the
same declarative :class:`ChaosSpec` drives the deterministic simulator,
the asyncio runtime and the TCP runtime (time is simulated rounds on the
simulator and seconds since transport open on the realtime runtimes).

Fault taxonomy — every verdict keeps delivery eventual:

* :class:`Partition` — a cut between party groups over ``[start, heal)``;
  messages crossing an active cut are *held* and re-injected at heal
  time (the classic delay-controlling adversary).  ``oneway=True`` cuts
  only group-0 → group-1 traffic (an asymmetric split).  ``heal`` must be
  finite: an unhealable partition would break eventual delivery.
* :class:`LinkFault` ``kind="drop"`` — the transmission is lost and the
  (reliable) channel retransmits after a timeout: the envelope is
  requeued with a jittered retry delay.  Modelling loss as
  delay-by-retransmission is exactly the paper's reliable-channel
  assumption over a lossy link.
* ``kind="duplicate"`` — the envelope is delivered *and* a distinct copy
  is re-injected after a jittered delay (at-least-once delivery).
* ``kind="reorder"`` — the envelope is pulled out of line and requeued
  with a jittered delay, letting later traffic overtake it.
* ``kind="corrupt"`` — the envelope's wire frame has one byte flipped
  and is offered to the codec.  The codec's fail-closed posture rejects
  it (``corrupt_rejected``); a flip the codec cannot distinguish from a
  valid frame is *also* discarded (``corrupt_forged``) — a link fault
  must never impersonate an honest sender, that power belongs to the
  ``f``-bounded Byzantine budget.  Either way the clean envelope is
  retransmitted after the retry delay.
* :class:`DelayWindow` — additive extra latency over a time window.

Determinism: all probabilistic verdicts and jitters are drawn from one
``random.Random(f"chaos-{seed}")`` stream, consumed in delivery order —
on the simulator two runs with the same seed and spec are therefore
byte-identical (word totals, message totals, group key).  With no spec
the plane is *idle* and the transport skips it entirely, so chaos-off
runs are byte-identical to runs without a plane attached.

Every injected fault is counted; the transport surfaces the counts as
``Metrics.counters("chaos")``.
"""

from __future__ import annotations

import dataclasses
import math
import random
from collections import Counter
from typing import Optional

from repro.net import codec
from repro.net.envelope import Envelope

__all__ = [
    "Partition",
    "LinkFault",
    "DelayWindow",
    "ChaosSpec",
    "ChaosPlane",
    "coerce_chaos",
    "DELIVER",
    "HOLD",
    "DUPLICATE",
]

#: Verdicts of :meth:`ChaosPlane.decide` (identity-compared sentinels).
DELIVER = "deliver"
#: Requeue the envelope after ``arg`` time units instead of delivering.
HOLD = "hold"
#: Deliver the envelope now *and* requeue a distinct copy after ``arg``.
DUPLICATE = "duplicate"

#: Smallest requeue delay the plane ever emits.  Strictly positive so the
#: simulator's "delays are positive" invariant holds and a heal-instant
#: hold still lands after the partition window closed.
_MIN_DELAY = 1e-9

_FAULT_KINDS = ("drop", "duplicate", "reorder", "corrupt")


def _check_window(start: float, end: float, what: str) -> None:
    if not (start >= 0 and end > start):
        raise ValueError(f"{what} window must satisfy 0 <= start < end")


@dataclasses.dataclass(frozen=True)
class Partition:
    """A network cut between party groups over ``[start, heal)``.

    ``groups`` are disjoint tuples of party indices; traffic between two
    *different* groups is held while the cut is active (parties in no
    group, and pairs within one group, are unaffected).  ``oneway=True``
    restricts the cut to messages from ``groups[0]`` to ``groups[1]``
    (exactly two groups), modelling an asymmetric split.  ``heal`` must
    be finite — eventual delivery is non-negotiable.
    """

    groups: tuple[tuple[int, ...], ...]
    start: float = 0.0
    heal: float = 10.0
    oneway: bool = False

    def __post_init__(self) -> None:
        groups = tuple(tuple(g) for g in self.groups)
        object.__setattr__(self, "groups", groups)
        if len(groups) < 2 or any(not g for g in groups):
            raise ValueError("a partition needs >= 2 non-empty groups")
        seen: set[int] = set()
        for group in groups:
            for index in group:
                if index in seen:
                    raise ValueError(
                        f"party {index} appears in two partition groups"
                    )
                seen.add(index)
        if self.oneway and len(groups) != 2:
            raise ValueError("a one-way partition needs exactly 2 groups")
        _check_window(self.start, self.heal, "partition")
        if not math.isfinite(self.heal):
            raise ValueError(
                "partition heal time must be finite (eventual delivery)"
            )

    def severs(self, sender: int, recipient: int, now: float) -> bool:
        if not self.start <= now < self.heal:
            return False
        side_of: dict[int, int] = {}
        for side, group in enumerate(self.groups):
            for index in group:
                side_of[index] = side
        src = side_of.get(sender)
        dst = side_of.get(recipient)
        if src is None or dst is None or src == dst:
            return False
        if self.oneway:
            return src == 0 and dst == 1
        return True


@dataclasses.dataclass(frozen=True)
class LinkFault:
    """A probabilistic per-transmission fault on a set of ordered links.

    Each delivery crossing an affected link during ``[start, end)`` is
    hit independently with probability ``rate``.  ``pairs`` limits the
    fault to specific ordered ``(sender, recipient)`` links (``None`` =
    all links).  ``jitter`` bounds the retry/duplicate/reorder delay
    drawn per fault (uniform in ``(0, jitter]``).
    """

    kind: str
    rate: float
    start: float = 0.0
    end: float = math.inf
    pairs: Optional[frozenset[tuple[int, int]]] = None
    jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ValueError(
                f"unknown link-fault kind {self.kind!r}; "
                f"choose from {_FAULT_KINDS}"
            )
        if not 0 <= self.rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        _check_window(self.start, self.end, "link-fault")
        if self.jitter <= 0:
            raise ValueError("jitter must be positive")
        if self.pairs is not None:
            object.__setattr__(self, "pairs", frozenset(self.pairs))

    def applies(self, sender: int, recipient: int, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return self.pairs is None or (sender, recipient) in self.pairs


@dataclasses.dataclass(frozen=True)
class DelayWindow:
    """Additive extra latency on affected links during ``[start, end)``."""

    extra: float
    start: float = 0.0
    end: float = math.inf
    pairs: Optional[frozenset[tuple[int, int]]] = None

    def __post_init__(self) -> None:
        if self.extra <= 0:
            raise ValueError("extra delay must be positive")
        _check_window(self.start, self.end, "delay")
        if self.pairs is not None:
            object.__setattr__(self, "pairs", frozenset(self.pairs))

    def applies(self, sender: int, recipient: int, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return self.pairs is None or (sender, recipient) in self.pairs


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """The declarative chaos schedule one run executes."""

    partitions: tuple[Partition, ...] = ()
    faults: tuple[LinkFault, ...] = ()
    delays: tuple[DelayWindow, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "delays", tuple(self.delays))

    @property
    def idle(self) -> bool:
        """True when the spec injects nothing (the plane short-circuits)."""
        return not (self.partitions or self.faults or self.delays)

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse the CLI mini-language into a spec.

        Semicolon-separated clauses::

            partition:0,1|2,3@5-40      two-sided cut, rounds [5, 40)
            partition-oneway:0|1,2@0-20 asymmetric cut (0 cannot reach 1,2)
            drop:0.05                   5% transmission loss, whole run
            dup:0.02@10-30              2% duplication in a window
            reorder:0.1                 10% of deliveries pulled out of line
            corrupt:0.01                1% single-byte frame corruption
            delay:+2.5@10-20            +2.5 time units of latency

        Windows (``@start-end``) are optional and default to the whole
        run (partitions require one — a cut must heal).  Times are
        simulated rounds on the simulator, seconds on the realtime
        runtimes.
        """
        partitions: list[Partition] = []
        faults: list[LinkFault] = []
        delays: list[DelayWindow] = []
        for raw in text.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            head, sep, body = clause.partition(":")
            head = head.strip().lower()
            if not sep:
                raise ValueError(f"malformed chaos clause {clause!r}")
            body, window = _split_window(body)
            if head in ("partition", "partition-oneway"):
                if window is None:
                    raise ValueError(
                        f"partition clause {clause!r} needs @start-end "
                        "(a cut must heal)"
                    )
                groups = tuple(
                    tuple(int(p) for p in part.split(",") if p.strip())
                    for part in body.split("|")
                )
                partitions.append(
                    Partition(
                        groups=groups,
                        start=window[0],
                        heal=window[1],
                        oneway=head.endswith("oneway"),
                    )
                )
                continue
            if head in ("drop", "dup", "duplicate", "reorder", "corrupt"):
                kind = "duplicate" if head == "dup" else head
                start, end = window or (0.0, math.inf)
                faults.append(
                    LinkFault(kind=kind, rate=float(body), start=start, end=end)
                )
                continue
            if head == "delay":
                start, end = window or (0.0, math.inf)
                delays.append(
                    DelayWindow(
                        extra=float(body.lstrip("+")), start=start, end=end
                    )
                )
                continue
            raise ValueError(f"unknown chaos clause kind {head!r}")
        return cls(
            partitions=tuple(partitions),
            faults=tuple(faults),
            delays=tuple(delays),
        )


def _split_window(body: str) -> tuple[str, Optional[tuple[float, float]]]:
    """Split a clause body from its optional ``@start-end`` window."""
    body, sep, window_text = body.partition("@")
    if not sep:
        return body.strip(), None
    start_text, dash, end_text = window_text.partition("-")
    if not dash:
        raise ValueError(f"malformed chaos window {window_text!r}")
    return body.strip(), (float(start_text), float(end_text))


class ChaosPlane:
    """Executes one :class:`ChaosSpec` against a transport's deliveries.

    The transport consults :meth:`decide` for every envelope entering the
    shared delivery pipeline; re-injected envelopes (holds, duplicates)
    are marked :meth:`release`-d and pass through untouched on re-entry,
    so a fault is decided exactly once per transmission.
    """

    def __init__(self, spec: ChaosSpec, seed: int = 0) -> None:
        self.spec = spec
        self.rng = random.Random(f"chaos-{seed}")
        self.counts: Counter = Counter()
        #: ``id()`` of envelopes already re-injected by the plane; a
        #: strong reference lives in the transport's requeue structure
        #: until re-entry, so the ids cannot be recycled underneath us.
        self._released: set[int] = set()
        #: False for an empty spec: the transport skips the plane
        #: entirely, so an attached-but-idle plane costs one attribute
        #: check per delivery.
        self.active = not spec.idle

    def counters(self) -> dict:
        """Live fault counts (the ``Metrics.counters("chaos")`` provider)."""
        return dict(self.counts)

    def release(self, envelope: Envelope) -> None:
        """Exempt a re-injected envelope from chaos on its next delivery."""
        self._released.add(id(envelope))

    def decide(self, envelope: Envelope, now: float) -> tuple[str, float]:
        """The plane's verdict for one delivery attempt at time ``now``.

        Returns ``(DELIVER, 0)``, ``(HOLD, delay)`` or
        ``(DUPLICATE, copy_delay)``; every verdict preserves eventual
        delivery (holds are finite, duplicates deliver the original).
        First match wins: partitions, then probabilistic link faults in
        spec order, then delay windows.
        """
        key = id(envelope)
        if key in self._released:
            self._released.discard(key)
            return (DELIVER, 0.0)
        sender = envelope.sender
        recipient = envelope.recipient
        counts = self.counts
        for partition in self.spec.partitions:
            if partition.severs(sender, recipient, now):
                counts["partitioned"] += 1
                return (HOLD, max(partition.heal - now, _MIN_DELAY))
        rng = self.rng
        for fault in self.spec.faults:
            if not fault.applies(sender, recipient, now):
                continue
            if rng.random() >= fault.rate:
                continue
            jitter = max(rng.random() * fault.jitter, _MIN_DELAY)
            if fault.kind == "drop":
                # Lost transmission, retransmitted by the reliable
                # channel: delay, never true loss.
                counts["dropped"] += 1
                return (HOLD, jitter)
            if fault.kind == "duplicate":
                counts["duplicated"] += 1
                return (DUPLICATE, jitter)
            if fault.kind == "reorder":
                counts["reordered"] += 1
                return (HOLD, jitter)
            # corrupt: flip one byte of the wire frame and let the codec
            # judge it; the clean envelope is then retransmitted.
            self._corrupt(envelope)
            return (HOLD, jitter)
        extra = 0.0
        for window in self.spec.delays:
            if window.applies(sender, recipient, now):
                extra += window.extra
        if extra > 0.0:
            counts["delayed"] += 1
            return (HOLD, extra)
        return (DELIVER, 0.0)

    def _corrupt(self, envelope: Envelope) -> None:
        """Flip one byte of the envelope's frame; count the codec's verdict.

        ``corrupt_rejected`` is the fail-closed posture working as
        designed; ``corrupt_forged`` counts flips the codec could not
        distinguish from a valid frame — those are discarded too, because
        a *link* fault delivering a forged frame would grant the network
        Byzantine powers beyond the ``f``-corruption budget.  Envelopes
        the codec cannot carry at all (in-process forgeries) skip
        corruption: there is no wire image to flip.
        """
        counts = self.counts
        try:
            body = codec.encode_envelope(envelope)
        except codec.CodecError:
            counts["corrupt_skipped"] += 1
            return
        counts["corrupted"] += 1
        mutated = bytearray(body)
        index = self.rng.randrange(len(mutated))
        mutated[index] ^= 1 << self.rng.randrange(8)
        try:
            decoded = codec.decode_envelope(bytes(mutated))
        except codec.CodecError:
            counts["corrupt_rejected"] += 1
            return
        # The codec accepted the flip (e.g. a mutated int field still in
        # range).  Fail closed anyway — and loudly distinguish a decode
        # that round-trips to a *different* envelope from a flip in
        # redundant encoding space.
        if decoded != envelope:
            counts["corrupt_forged"] += 1
        else:
            counts["corrupt_identity"] += 1


def coerce_chaos(
    chaos: "ChaosPlane | ChaosSpec | str | None", seed: int
) -> Optional[ChaosPlane]:
    """Normalize a transport's ``chaos=`` argument into a plane.

    Accepts an already-built :class:`ChaosPlane` (used as-is, its own
    seed intact), a :class:`ChaosSpec`, or the CLI mini-language string;
    spec/string forms get a plane seeded from the run seed, which is what
    makes same-seed chaos runs reproducible end-to-end.
    """
    if chaos is None:
        return None
    if isinstance(chaos, ChaosPlane):
        return chaos
    if isinstance(chaos, str):
        chaos = ChaosSpec.parse(chaos)
    if isinstance(chaos, ChaosSpec):
        return ChaosPlane(chaos, seed=seed)
    raise TypeError(
        f"chaos must be a ChaosPlane, ChaosSpec or spec string, "
        f"not {type(chaos).__name__}"
    )
