"""The adversary: Byzantine behaviours and adversarial schedulers.

Two orthogonal powers, matching the threat model of Section 2.1:

* **Corruption** — up to ``f`` parties run a :class:`Behavior` that can
  drop, mutate, duplicate or equivocate the messages their (otherwise
  honest) stack produces, or silence the party entirely.  Tests that need
  deeper protocol-specific misbehaviour subclass the honest protocol
  instead (e.g. a dealer sharing an invalid PVSS transcript).
* **Scheduling** — the adversary orders message delivery, subject to the
  asynchronous model's one obligation: every message is delivered after a
  finite delay.  Schedulers here multiply benign delays by bounded
  factors, so eventual delivery is preserved by construction.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Iterable, Optional

from repro.net.envelope import Envelope
from repro.net.payload import Payload


class Behavior:
    """Byzantine behaviour hook for one corrupted party.

    ``transform_outgoing`` may return any list of envelopes (empty to
    drop); ``allow_delivery`` may swallow incoming messages.  The default
    is honest behaviour.
    """

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        return [envelope]

    def allow_delivery(self, envelope: Envelope, rng: random.Random) -> bool:
        return True


class SilentBehavior(Behavior):
    """Sends nothing, ever — the strongest omission fault."""

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        return []


class CrashBehavior(Behavior):
    """Honest until ``after_sends`` messages have left, then dead."""

    def __init__(self, after_sends: int) -> None:
        if after_sends < 0:
            raise ValueError("after_sends must be non-negative")
        self.after_sends = after_sends
        self._sent = 0
        self.crashed = False

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        if self.crashed:
            return []
        self._sent += 1
        if self._sent > self.after_sends:
            self.crashed = True
            return []
        return [envelope]

    def allow_delivery(self, envelope: Envelope, rng: random.Random) -> bool:
        return not self.crashed


class DropBehavior(Behavior):
    """Drops each outgoing message independently with probability ``rate``."""

    def __init__(self, rate: float) -> None:
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        if rng.random() < self.rate:
            return []
        return [envelope]


class MutateBehavior(Behavior):
    """Applies ``mutator(payload, recipient, rng)`` to selected messages.

    The mutator returns a replacement payload, ``None`` to drop, or the
    original to pass through.  ``selector`` picks which messages to
    attack (default: all).
    """

    def __init__(
        self,
        mutator: Callable[[Payload, int, random.Random], Optional[Payload]],
        selector: Optional[Callable[[Envelope], bool]] = None,
    ) -> None:
        self.mutator = mutator
        self.selector = selector or (lambda envelope: True)

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        if not self.selector(envelope):
            return [envelope]
        mutated = self.mutator(envelope.payload, envelope.recipient, rng)
        if mutated is None:
            return []
        if mutated is envelope.payload:
            return [envelope]
        # replace() keeps the routing fields — including the session id —
        # so a mutated payload still reaches the instance it targets.
        return [dataclasses.replace(envelope, payload=mutated)]


class EquivocateBehavior(Behavior):
    """Sends different payloads to different halves of the parties.

    ``forger(payload, rng)`` builds the second version; recipients with
    index in ``targets`` get the forged one.  Classic split-brain attack
    against broadcast/agreement protocols.
    """

    def __init__(
        self,
        forger: Callable[[Payload, random.Random], Optional[Payload]],
        targets: Iterable[int],
        selector: Optional[Callable[[Envelope], bool]] = None,
    ) -> None:
        self.forger = forger
        self.targets = frozenset(targets)
        self.selector = selector or (lambda envelope: True)

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        if not self.selector(envelope) or envelope.recipient not in self.targets:
            return [envelope]
        forged = self.forger(envelope.payload, rng)
        if forged is None:
            return []
        return [dataclasses.replace(envelope, payload=forged)]


# -- adversarial scheduling ------------------------------------------------------------


class Scheduler:
    """Turns a benign delay into the adversary's chosen (finite) delay."""

    def schedule(
        self,
        rng: random.Random,
        envelope: Envelope,
        base_delay: float,
        time: float,
    ) -> float:
        return base_delay


class TargetedLagScheduler(Scheduler):
    """Slows traffic touching a target set by ``factor`` until ``horizon``.

    Models an adversary that isolates specific honest parties during the
    critical phase of an election, then must let messages through
    (eventual delivery).
    """

    def __init__(
        self,
        targets: Iterable[int],
        factor: float = 10.0,
        horizon: float = 50.0,
    ) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1 to keep delays finite")
        self.targets = frozenset(targets)
        self.factor = factor
        self.horizon = horizon

    def schedule(
        self,
        rng: random.Random,
        envelope: Envelope,
        base_delay: float,
        time: float,
    ) -> float:
        if time >= self.horizon:
            return base_delay
        if envelope.sender in self.targets or envelope.recipient in self.targets:
            return base_delay * self.factor
        return base_delay


class SessionLagScheduler(Scheduler):
    """Slows every message of one protocol session by ``factor``.

    Models an adversary that stalls an entire root instance — e.g. the
    current DKG epoch — while leaving other sessions on the same network
    untouched.  Delays stay finite, so the stalled session still
    terminates eventually (almost-sure termination is delayed, never
    broken); the interesting question is whether *fresh* sessions
    injected into the live network complete while the old one crawls.
    """

    def __init__(self, session: int, factor: float = 1000.0) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1 to keep delays finite")
        self.session = session
        self.factor = factor

    def schedule(
        self,
        rng: random.Random,
        envelope: Envelope,
        base_delay: float,
        time: float,
    ) -> float:
        if envelope.session == self.session:
            return base_delay * self.factor
        return base_delay


class RandomLagScheduler(Scheduler):
    """Randomly stretches individual messages by up to ``factor``.

    A chaos-monkey scheduler: keeps every delay finite but destroys any
    timing assumption a protocol might accidentally rely on.
    """

    def __init__(self, factor: float = 20.0, rate: float = 0.2) -> None:
        if factor < 1 or not 0 <= rate <= 1:
            raise ValueError("factor must be >= 1 and rate in [0, 1]")
        self.factor = factor
        self.rate = rate

    def schedule(
        self,
        rng: random.Random,
        envelope: Envelope,
        base_delay: float,
        time: float,
    ) -> float:
        if rng.random() < self.rate:
            return base_delay * rng.uniform(1.0, self.factor)
        return base_delay
