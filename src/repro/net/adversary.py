"""The adversary: Byzantine behaviours and adversarial schedulers.

Two orthogonal powers, matching the threat model of Section 2.1:

* **Corruption** — up to ``f`` parties run a :class:`Behavior` that can
  drop, mutate, duplicate or equivocate the messages their (otherwise
  honest) stack produces, or silence the party entirely.  Tests that need
  deeper protocol-specific misbehaviour subclass the honest protocol
  instead (e.g. a dealer sharing an invalid PVSS transcript).
* **Scheduling** — the adversary orders message delivery, subject to the
  asynchronous model's one obligation: every message is delivered after a
  finite delay.  Schedulers here multiply benign delays by bounded
  factors, so eventual delivery is preserved by construction.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Iterable, Optional

from repro.net.envelope import Envelope
from repro.net.payload import Payload


class Behavior:
    """Byzantine behaviour hook for one corrupted party.

    ``transform_outgoing`` may return any list of envelopes (empty to
    drop); ``allow_delivery`` may swallow incoming messages.  The default
    is honest behaviour.
    """

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        return [envelope]

    def allow_delivery(self, envelope: Envelope, rng: random.Random) -> bool:
        return True


class SilentBehavior(Behavior):
    """Sends nothing, ever — the strongest omission fault."""

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        return []


class FaultSchedule:
    """Shared crash/recovery bookkeeping for one party's fault window.

    The single source of truth for "is this process down right now":
    :class:`CrashBehavior`, :class:`CrashRecoverBehavior` and the
    crash–recovery experiment drivers (``repro.storage.recovery``,
    ``run_crash_recovery_case``) all consume it instead of keeping their
    own ``crashed`` flags.  The schedule counts two event streams —
    outgoing sends (:meth:`note_send`) and deliveries attempted while
    down (:meth:`note_delivery`) — and flips through at most three
    phases: up → down (after ``crash_after_sends`` sends) → up again
    (after ``recover_after_drops`` swallowed deliveries, if configured;
    ``None`` means the classic terminal crash).
    """

    def __init__(
        self,
        crash_after_sends: int,
        recover_after_drops: Optional[int] = None,
    ) -> None:
        if crash_after_sends < 0:
            raise ValueError("crash_after_sends must be non-negative")
        if recover_after_drops is not None and recover_after_drops < 0:
            # 0 is legal: the recovery lands on the same step as the
            # crash, so the outage swallows no deliveries at all — the
            # first delivery attempted while "down" finds the process
            # already back up.
            raise ValueError("recover_after_drops must be >= 0 (or None)")
        self.crash_after_sends = crash_after_sends
        self.recover_after_drops = recover_after_drops
        self.sent = 0
        self.dropped = 0
        self.crashed = False
        self.recovered = False

    @property
    def down(self) -> bool:
        return self.crashed and not self.recovered

    def note_send(self) -> bool:
        """Record one outgoing send; True iff it may leave the process."""
        if self.down:
            return False
        if not self.crashed:
            self.sent += 1
            if self.sent > self.crash_after_sends:
                self.crashed = True
                return False
        return True

    def note_delivery(self) -> bool:
        """Record one delivery attempt; True iff the process receives it.

        Exactly ``recover_after_drops`` deliveries are lost to the
        outage; the next one finds the process back up, goes through,
        and is *not* counted in ``dropped``.
        """
        if not self.down:
            return True
        if (
            self.recover_after_drops is not None
            and self.dropped >= self.recover_after_drops
        ):
            self.recovered = True
            return True
        self.dropped += 1
        return False


class CrashBehavior(Behavior):
    """Honest until ``after_sends`` messages have left, then dead.

    Either pass ``after_sends`` or hand in an externally owned
    :class:`FaultSchedule` (a driver that also inspects the crash state
    shares the same bookkeeping instead of duplicating it).
    """

    def __init__(
        self,
        after_sends: Optional[int] = None,
        schedule: Optional[FaultSchedule] = None,
    ) -> None:
        if (after_sends is None) == (schedule is None):
            raise ValueError("pass exactly one of after_sends / schedule")
        self.schedule = schedule or FaultSchedule(crash_after_sends=after_sends)

    @property
    def crashed(self) -> bool:
        return self.schedule.crashed

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        return [envelope] if self.schedule.note_send() else []

    def allow_delivery(self, envelope: Envelope, rng: random.Random) -> bool:
        return self.schedule.note_delivery()


class CrashRecoverBehavior(Behavior):
    """A crash *window*: down after ``after_sends`` sends, back up after
    ``recover_after_drops`` deliveries were lost to the outage.

    This is the omission-fault view of a crash — the process freezes with
    its memory intact and the messages of the outage window are simply
    gone.  It composes with any scheduler and needs no storage; contrast
    with the durable recovery path (``repro.storage.recovery``), where
    the process loses its memory and is rehydrated from snapshot + WAL
    via the transport's detach/reattach.  E14 runs both, and the gap
    between them is exactly what the write-ahead storage buys.
    """

    def __init__(self, after_sends: int, recover_after_drops: int) -> None:
        self.schedule = FaultSchedule(
            crash_after_sends=after_sends,
            recover_after_drops=recover_after_drops,
        )

    @property
    def crashed(self) -> bool:
        return self.schedule.down

    @property
    def recovered(self) -> bool:
        return self.schedule.recovered

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        return [envelope] if self.schedule.note_send() else []

    def allow_delivery(self, envelope: Envelope, rng: random.Random) -> bool:
        return self.schedule.note_delivery()


class DropBehavior(Behavior):
    """Drops each outgoing message independently with probability ``rate``."""

    def __init__(self, rate: float) -> None:
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        if rng.random() < self.rate:
            return []
        return [envelope]


class MutateBehavior(Behavior):
    """Applies ``mutator(payload, recipient, rng)`` to selected messages.

    The mutator returns a replacement payload, ``None`` to drop, or the
    original to pass through.  ``selector`` picks which messages to
    attack (default: all).
    """

    def __init__(
        self,
        mutator: Callable[[Payload, int, random.Random], Optional[Payload]],
        selector: Optional[Callable[[Envelope], bool]] = None,
    ) -> None:
        self.mutator = mutator
        self.selector = selector or (lambda envelope: True)

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        if not self.selector(envelope):
            return [envelope]
        mutated = self.mutator(envelope.payload, envelope.recipient, rng)
        if mutated is None:
            return []
        if mutated is envelope.payload:
            return [envelope]
        # replace() keeps the routing fields — including the session id —
        # so a mutated payload still reaches the instance it targets.
        return [dataclasses.replace(envelope, payload=mutated)]


class EquivocateBehavior(Behavior):
    """Sends different payloads to different halves of the parties.

    ``forger(payload, rng)`` builds the second version; recipients with
    index in ``targets`` get the forged one.  Classic split-brain attack
    against broadcast/agreement protocols.
    """

    def __init__(
        self,
        forger: Callable[[Payload, random.Random], Optional[Payload]],
        targets: Iterable[int],
        selector: Optional[Callable[[Envelope], bool]] = None,
    ) -> None:
        self.forger = forger
        self.targets = frozenset(targets)
        self.selector = selector or (lambda envelope: True)

    def transform_outgoing(self, envelope: Envelope, rng: random.Random) -> list[Envelope]:
        if not self.selector(envelope) or envelope.recipient not in self.targets:
            return [envelope]
        forged = self.forger(envelope.payload, rng)
        if forged is None:
            return []
        return [dataclasses.replace(envelope, payload=forged)]


# -- adversarial scheduling ------------------------------------------------------------


class Scheduler:
    """Turns a benign delay into the adversary's chosen (finite) delay."""

    def schedule(
        self,
        rng: random.Random,
        envelope: Envelope,
        base_delay: float,
        time: float,
    ) -> float:
        return base_delay


class TargetedLagScheduler(Scheduler):
    """Slows traffic touching a target set by ``factor`` until ``horizon``.

    Models an adversary that isolates specific honest parties during the
    critical phase of an election, then must let messages through
    (eventual delivery).
    """

    def __init__(
        self,
        targets: Iterable[int],
        factor: float = 10.0,
        horizon: float = 50.0,
    ) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1 to keep delays finite")
        self.targets = frozenset(targets)
        self.factor = factor
        self.horizon = horizon

    def schedule(
        self,
        rng: random.Random,
        envelope: Envelope,
        base_delay: float,
        time: float,
    ) -> float:
        if time >= self.horizon:
            return base_delay
        if envelope.sender in self.targets or envelope.recipient in self.targets:
            return base_delay * self.factor
        return base_delay


class SessionLagScheduler(Scheduler):
    """Slows every message of one protocol session by ``factor``.

    Models an adversary that stalls an entire root instance — e.g. the
    current DKG epoch — while leaving other sessions on the same network
    untouched.  Delays stay finite, so the stalled session still
    terminates eventually (almost-sure termination is delayed, never
    broken); the interesting question is whether *fresh* sessions
    injected into the live network complete while the old one crawls.
    """

    def __init__(self, session: int, factor: float = 1000.0) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1 to keep delays finite")
        self.session = session
        self.factor = factor

    def schedule(
        self,
        rng: random.Random,
        envelope: Envelope,
        base_delay: float,
        time: float,
    ) -> float:
        if envelope.session == self.session:
            return base_delay * self.factor
        return base_delay


class RandomLagScheduler(Scheduler):
    """Randomly stretches individual messages by up to ``factor``.

    A chaos-monkey scheduler: keeps every delay finite but destroys any
    timing assumption a protocol might accidentally rely on.
    """

    def __init__(self, factor: float = 20.0, rate: float = 0.2) -> None:
        if factor < 1 or not 0 <= rate <= 1:
            raise ValueError("factor must be >= 1 and rate in [0, 1]")
        self.factor = factor
        self.rate = rate

    def schedule(
        self,
        rng: random.Random,
        envelope: Envelope,
        base_delay: float,
        time: float,
    ) -> float:
        if rng.random() < self.rate:
            return base_delay * rng.uniform(1.0, self.factor)
        return base_delay
