"""The deterministic discrete-event simulator.

``Simulation`` is the discrete-event :class:`~repro.net.transport.Transport`:
it owns the delay model and the (possibly adversarial) scheduler, and
executes the shared delivery pipeline over a priority queue of pending
deliveries:

1. pop the earliest batch of envelopes, deliver each to its recipient's
   party (which routes it, runs handlers and sweeps "upon" conditions);
2. drain every touched party's outbox: self-addressed envelopes are
   delivered immediately (local computation — no words metered, no
   delay), network envelopes are metered into the coalescing buffer and
   scheduled in bulk before the next queue pop.

The outbox-draining, Byzantine-behavior and metrics logic lives in the
shared :class:`~repro.net.transport.Transport` base; this class adds only
simulated time.

Bulk delivery (the batched plane, on by default): every envelope still
gets its *own* delay draw from the model and its own pass through the
adversarial scheduler — in exactly the creation order the unbatched
plane would use, so the RNG streams are untouched — but envelopes that
land on the same delivery instant share one heap entry.  Under
``FixedDelay`` a whole timestep's sends collapse into a handful of heap
entries, and the engine pops them back as one batch.  Delivery order is
provably identical to the unbatched plane: within a shared entry the
creation order is preserved, across entries the heap orders by
(time, push sequence), and two envelopes with the same delivery time are
either in the same entry (same flush) or in entries pushed in creation
order (different flushes) — the exact tie-break the per-envelope plane
applies.  ``batching=False`` selects that per-envelope reference plane,
byte-for-byte the pre-batching engine.

Determinism: all randomness flows from one master seed; ties in the queue
break by insertion sequence.  The asynchronous model's eventual-delivery
obligation holds because every delay is finite.
"""

from __future__ import annotations

import heapq
import itertools
import operator
from collections import deque
from typing import Any, Callable, Optional
import random

from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import Behavior, Scheduler
from repro.net.delays import DelayModel, FixedDelay, UniformDelay
from repro.net.envelope import Envelope
from repro.net.party import Party
from repro.net.transport import (
    FRAME_HEADER_BYTES,
    RootFactory,
    Transport,
)

__all__ = ["Simulation", "RootFactory"]


class Simulation(Transport):
    """An n-party protocol execution under simulated asynchrony."""

    def __init__(
        self,
        setup: Optional[TrustedSetup],
        delay_model: Optional[DelayModel] = None,
        scheduler: Optional[Scheduler] = None,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        measure_bytes: bool = False,
        batching: bool = True,
        workers: int = 0,
        chaos: Any = None,
        shards: Any = None,
    ) -> None:
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace="simulation",
            measure_bytes=measure_bytes,
            batching=batching,
            workers=workers,
            chaos=chaos,
            shards=shards,
        )
        self.delay_model = delay_model or UniformDelay()
        self.scheduler = scheduler or Scheduler()
        self.time = 0.0
        self.steps = 0
        #: Per-session output times: ``session_output_times[sid][party]``
        #: is the simulated time at which that party produced the
        #: session's result.
        self.session_output_times: dict[int, dict[int, float]] = {}
        self._seq = itertools.count()
        #: Heap of (time, seq, entry); an entry is a single
        #: :class:`Envelope` (unbatched plane) or a list of envelopes
        #: sharing one delivery instant (batched plane).
        self._queue: list[tuple[float, int, Any]] = []
        #: Same-instant envelopes already popped and awaiting delivery.
        self._ready: deque[Envelope] = deque()
        self._net_rng = random.Random(f"simulation-net-{seed}")

    # -- timing ------------------------------------------------------------------------

    @property
    def output_times(self) -> dict[int, float]:
        """Session 0's output times (single-session compatibility view)."""
        return self.session_output_times.setdefault(0, {})

    def honest_completion_time(self, session: int = 0) -> float:
        """Time by which the last honest party produced the session's output."""
        times_for = self.session_output_times.get(session, {})
        times = [times_for[i] for i in self.honest if i in times_for]
        if not times:
            return float("nan")
        return max(times)

    # -- event loop --------------------------------------------------------------------

    def step(self) -> bool:
        """Deliver one envelope; returns False when the queue is empty."""
        while True:
            envelope = self._pop_next()
            if envelope is None:
                return False
            self.steps += 1
            if self._deliver_buffered(envelope):
                return True

    def _pop_next(self) -> Optional[Envelope]:
        """The next envelope to deliver, advancing time as needed.

        Coalesced sends are flushed (scheduled) before the queue is
        consulted — they are in-flight traffic, so quiescence is only
        declared once both the buffer and the queue are empty.
        """
        ready = self._ready
        if not ready:
            if self._outgoing:
                self._flush_coalesced()
            if not self._queue:
                return None
            when, _seq, entry = heapq.heappop(self._queue)
            # Heap pops are nondecreasing in time (delays are strictly
            # positive), so no max() re-comparison per delivery.
            self.time = when
            if type(entry) is not list:
                return entry
            ready.extend(entry)
            # A coalesced batch arrives at its recipients as one event:
            # pre-verify the whole batch before the first state machine
            # activates so workers overlap the deliveries (DESIGN §10).
            if self.pool is not None:
                self._preverify_batch(entry)
        return ready.popleft()

    def run(
        self,
        max_steps: int = 5_000_000,
        stop: Optional[Callable[["Simulation"], bool]] = None,
    ) -> None:
        """Run until quiescence, ``stop`` holds, or ``max_steps`` deliveries."""
        step = self.step
        if stop is None:
            for _ in range(max_steps):
                if not step():
                    return
        else:
            for _ in range(max_steps):
                if stop(self):
                    return
                if not step():
                    return
        raise RuntimeError(f"simulation exceeded {max_steps} deliveries")

    def run_until_all_honest_output(self, max_steps: int = 5_000_000) -> None:
        # The unbound method *is* the stop predicate — no per-run lambda
        # allocation, no extra call frame per delivery.
        self.run(max_steps=max_steps, stop=Transport.all_honest_output)

    def run_until_session_done(
        self, session: int, max_steps: int = 5_000_000
    ) -> None:
        """Deliver until every honest party produced the session's result."""
        self.run(
            max_steps=max_steps,
            stop=operator.methodcaller("session_complete", session),
        )

    def run_sync(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Uniform blocking entry point (simulated time ignores ``timeout``)."""
        del timeout  # bounded by the step limit, not wall-clock
        self.start(root_factory)
        self.run_until_all_honest_output()
        return self.honest_results()

    def round_measure(self) -> float:
        """Simulated time — the causal-chain length under ``FixedDelay``."""
        return self.time

    # -- transport hooks ---------------------------------------------------------------

    def _transmit(self, envelope: Envelope, frame: bytes | None) -> bool:
        """Schedule a network envelope at a model/scheduler-chosen time."""
        base = self.delay_model.delay(
            self._net_rng, envelope.sender, envelope.recipient, self.time
        )
        delay = self.scheduler.schedule(self._adv_rng, envelope, base, self.time)
        if delay <= 0:
            raise RuntimeError("scheduler produced a non-positive delay")
        heapq.heappush(self._queue, (self.time + delay, next(self._seq), envelope))
        return True

    def _buffered_delay(self, envelope: Envelope) -> Optional[float]:
        """Draw the envelope's delivery delay the moment it is buffered.

        This is the point the unbatched plane would call ``_transmit``,
        so the delay-model and adversary RNG streams are consumed in
        exactly the same order — interleaved with Byzantine behavior
        transforms — on both planes.  Returns ``None`` on the fast path
        (fixed delay + identity scheduler: nothing consumes randomness,
        the delay is a constant resolved at flush).
        """
        if (
            type(self.delay_model) is FixedDelay
            and type(self.scheduler) is Scheduler
        ):
            return None
        base = self.delay_model.delay(
            self._net_rng, envelope.sender, envelope.recipient, self.time
        )
        delay = self.scheduler.schedule(self._adv_rng, envelope, base, self.time)
        if delay <= 0:
            raise RuntimeError("scheduler produced a non-positive delay")
        return delay

    def _transmit_coalesced(self, batch: list) -> None:
        """Schedule one batch, sharing heap entries per delivery instant.

        Delays were drawn per-envelope at buffer time
        (:meth:`_buffered_delay`); only the heap representation is
        coalesced here.
        """
        time = self.time
        fixed = (
            self.delay_model.value
            if type(self.delay_model) is FixedDelay
            else None
        )
        buckets: dict[float, tuple[list[Envelope], list]] = {}
        for envelope, nbytes, delay in batch:
            if delay is None:
                delay = fixed
                if delay is None:
                    # The model/scheduler changed between buffer and
                    # flush (tests swapping mid-run): draw now.
                    delay = self._buffered_delay(envelope)
            when = time + delay
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = bucket = ([], [])
            bucket[0].append(envelope)
            bucket[1].append(nbytes)
        record_frame = self.metrics.record_frame
        for when, (envelopes, sizes) in buckets.items():
            heapq.heappush(self._queue, (when, next(self._seq), envelopes))
            nbytes = None
            if self.measure_bytes and None not in sizes:
                # What this bucket would cost as one coalesced wire
                # frame — composed from the already-metered per-envelope
                # sizes and the codec memos, not encoded.
                try:
                    nbytes = FRAME_HEADER_BYTES + codec.encoded_batch_size(
                        envelopes,
                        [size - FRAME_HEADER_BYTES for size in sizes],
                    )
                except codec.CodecError:
                    nbytes = None  # forged unencodable payload in bucket
            record_frame(len(envelopes), nbytes)

    def _note_progress(self, party: Party) -> None:
        self._note_progress_sessions(party)

    # -- chaos hooks -------------------------------------------------------------------

    def _chaos_now(self) -> float:
        return self.time

    def _chaos_requeue(self, envelope: Envelope, delay: float) -> None:
        """Re-inject a chaos-held envelope at ``time + delay``.

        Ordinary heap entry, ordinary tie-break: a held envelope competes
        with in-flight traffic exactly like a freshly transmitted one,
        so determinism is untouched.
        """
        heapq.heappush(
            self._queue, (self.time + delay, next(self._seq), envelope)
        )

    def _on_session_result(self, session: int, party: Party) -> None:
        """Stamp the simulated time of the party's first session output.

        Unlike the waiting sets (honest parties only), output times are
        recorded for every party — behavior-wrapped parties still run an
        honest stack and their completion instants are data.
        """
        times = self.session_output_times.setdefault(session, {})
        if party.index not in times:
            times[party.index] = self.time
