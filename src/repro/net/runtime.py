"""The deterministic discrete-event simulator.

``Simulation`` owns the parties, the delay model, the (possibly
adversarial) scheduler and the metrics.  Execution is an event loop over
a priority queue of pending deliveries:

1. pop the earliest envelope, deliver it to its recipient's party (which
   routes it, runs handlers and sweeps "upon" conditions);
2. drain every party's outbox: self-addressed envelopes are delivered
   immediately (local computation — no words metered, no delay), network
   envelopes get a delay from the model/scheduler and are pushed.

Determinism: all randomness flows from one master seed; ties in the queue
break by insertion sequence.  The asynchronous model's eventual-delivery
obligation holds because every delay is finite.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Optional

from repro.crypto.keys import TrustedSetup
from repro.net.adversary import Behavior, Scheduler
from repro.net.delays import DelayModel, UniformDelay
from repro.net.envelope import Envelope
from repro.net.metrics import Metrics
from repro.net.party import Party
from repro.net.protocol import Protocol

RootFactory = Callable[[Party], Protocol]


class Simulation:
    """An n-party protocol execution under simulated asynchrony."""

    def __init__(
        self,
        setup: TrustedSetup,
        delay_model: Optional[DelayModel] = None,
        scheduler: Optional[Scheduler] = None,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
    ) -> None:
        directory = setup.directory
        self.setup = setup
        self.n = directory.n
        self.f = directory.f
        self.delay_model = delay_model or UniformDelay()
        self.scheduler = scheduler or Scheduler()
        self.behaviors = dict(behaviors or {})
        if len(self.behaviors) > self.f:
            raise ValueError(
                f"cannot corrupt {len(self.behaviors)} parties with f={self.f}"
            )
        self.metrics = Metrics()
        self.time = 0.0
        self.steps = 0
        self.output_times: dict[int, float] = {}
        self._seq = itertools.count()
        self._queue: list[tuple[float, int, Envelope]] = []
        self._master_rng = random.Random(f"simulation-{seed}")
        self._net_rng = random.Random(f"simulation-net-{seed}")
        self._adv_rng = random.Random(f"simulation-adv-{seed}")
        self.parties = [
            Party(
                index=i,
                n=self.n,
                f=self.f,
                rng=random.Random(f"party-{seed}-{i}"),
                directory=directory,
                secret=setup.secret(i),
            )
            for i in range(self.n)
        ]

    # -- setup -----------------------------------------------------------------------

    @property
    def corrupt(self) -> frozenset[int]:
        return frozenset(self.behaviors)

    @property
    def honest(self) -> frozenset[int]:
        return frozenset(range(self.n)) - self.corrupt

    def start(self, root_factory: RootFactory) -> None:
        """Install the root protocol at every party and flush initial sends."""
        for party in self.parties:
            party.run_root(root_factory(party))
            party.sweep_conditions()
        for party in self.parties:
            self._flush_party(party)
            if party.has_result:
                self.output_times.setdefault(party.index, 0.0)

    def honest_completion_time(self) -> float:
        """Time by which the last honest party produced its output."""
        times = [self.output_times[i] for i in self.honest if i in self.output_times]
        if not times:
            return float("nan")
        return max(times)

    # -- event loop -------------------------------------------------------------------

    def step(self) -> bool:
        """Deliver one envelope; returns False when the queue is empty."""
        while self._queue:
            when, _, envelope = heapq.heappop(self._queue)
            self.time = max(self.time, when)
            self.steps += 1
            behavior = self.behaviors.get(envelope.recipient)
            if behavior is not None and not behavior.allow_delivery(
                envelope, self._adv_rng
            ):
                continue
            self.metrics.record_delivery(envelope)
            recipient = self.parties[envelope.recipient]
            recipient.deliver(envelope)
            self._flush_party(recipient)
            if recipient.has_result and recipient.index not in self.output_times:
                self.output_times[recipient.index] = self.time
            return True
        return False

    def run(
        self,
        max_steps: int = 5_000_000,
        stop: Optional[Callable[["Simulation"], bool]] = None,
    ) -> None:
        """Run until quiescence, ``stop`` holds, or ``max_steps`` deliveries."""
        for _ in range(max_steps):
            if stop is not None and stop(self):
                return
            if not self.step():
                return
        raise RuntimeError(f"simulation exceeded {max_steps} deliveries")

    def run_until_all_honest_output(self, max_steps: int = 5_000_000) -> None:
        self.run(
            max_steps=max_steps,
            stop=lambda sim: all(
                sim.parties[i].has_result for i in sim.honest
            ),
        )

    # -- results ----------------------------------------------------------------------

    def honest_results(self) -> dict[int, Any]:
        return {
            i: self.parties[i].result
            for i in sorted(self.honest)
            if self.parties[i].has_result
        }

    def all_honest_output(self) -> bool:
        return all(self.parties[i].has_result for i in self.honest)

    # -- internals ----------------------------------------------------------------------

    def _flush_party(self, party: Party) -> None:
        """Drain a party's outbox, applying behaviours and scheduling."""
        pending = party.collect_outbox()
        while pending:
            envelope = pending.pop(0)
            if envelope.recipient == envelope.sender:
                # Local delivery: immediate, free, not subject to the
                # outgoing Byzantine filter (it never hits the network).
                self.metrics.record_delivery(envelope)
                party.deliver(envelope)
                pending.extend(party.collect_outbox())
                continue
            behavior = self.behaviors.get(envelope.sender)
            outgoing = (
                behavior.transform_outgoing(envelope, self._adv_rng)
                if behavior is not None
                else [envelope]
            )
            for env in outgoing:
                self.metrics.record_send(env)
                base = self.delay_model.delay(
                    self._net_rng, env.sender, env.recipient, self.time
                )
                delay = self.scheduler.schedule(self._adv_rng, env, base, self.time)
                if delay <= 0:
                    raise RuntimeError("scheduler produced a non-positive delay")
                heapq.heappush(
                    self._queue, (self.time + delay, next(self._seq), env)
                )
