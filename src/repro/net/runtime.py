"""The deterministic discrete-event simulator.

``Simulation`` is the discrete-event :class:`~repro.net.transport.Transport`:
it owns the delay model and the (possibly adversarial) scheduler, and
executes the shared delivery pipeline over a priority queue of pending
deliveries:

1. pop the earliest envelope, deliver it to its recipient's party (which
   routes it, runs handlers and sweeps "upon" conditions);
2. drain every party's outbox: self-addressed envelopes are delivered
   immediately (local computation — no words metered, no delay), network
   envelopes get a delay from the model/scheduler and are pushed.

The outbox-draining, Byzantine-behavior and metrics logic lives in the
shared :class:`~repro.net.transport.Transport` base; this class adds only
simulated time.

Determinism: all randomness flows from one master seed; ties in the queue
break by insertion sequence.  The asynchronous model's eventual-delivery
obligation holds because every delay is finite.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional
import random

from repro.crypto.keys import TrustedSetup
from repro.net.adversary import Behavior, Scheduler
from repro.net.delays import DelayModel, UniformDelay
from repro.net.envelope import Envelope
from repro.net.party import Party
from repro.net.transport import RootFactory, Transport

__all__ = ["Simulation", "RootFactory"]


class Simulation(Transport):
    """An n-party protocol execution under simulated asynchrony."""

    def __init__(
        self,
        setup: TrustedSetup,
        delay_model: Optional[DelayModel] = None,
        scheduler: Optional[Scheduler] = None,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        measure_bytes: bool = False,
    ) -> None:
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace="simulation",
            measure_bytes=measure_bytes,
        )
        self.delay_model = delay_model or UniformDelay()
        self.scheduler = scheduler or Scheduler()
        self.time = 0.0
        self.steps = 0
        #: Per-session output times: ``session_output_times[sid][party]``
        #: is the simulated time at which that party produced the
        #: session's result.
        self.session_output_times: dict[int, dict[int, float]] = {}
        self._seq = itertools.count()
        self._queue: list[tuple[float, int, Envelope]] = []
        self._net_rng = random.Random(f"simulation-net-{seed}")

    # -- timing ------------------------------------------------------------------------

    @property
    def output_times(self) -> dict[int, float]:
        """Session 0's output times (single-session compatibility view)."""
        return self.session_output_times.setdefault(0, {})

    def honest_completion_time(self, session: int = 0) -> float:
        """Time by which the last honest party produced the session's output."""
        times_for = self.session_output_times.get(session, {})
        times = [times_for[i] for i in self.honest if i in times_for]
        if not times:
            return float("nan")
        return max(times)

    # -- event loop --------------------------------------------------------------------

    def step(self) -> bool:
        """Deliver one envelope; returns False when the queue is empty."""
        while self._queue:
            when, _, envelope = heapq.heappop(self._queue)
            self.time = max(self.time, when)
            self.steps += 1
            if self._deliver_envelope(envelope):
                return True
        return False

    def run(
        self,
        max_steps: int = 5_000_000,
        stop: Optional[Callable[["Simulation"], bool]] = None,
    ) -> None:
        """Run until quiescence, ``stop`` holds, or ``max_steps`` deliveries."""
        for _ in range(max_steps):
            if stop is not None and stop(self):
                return
            if not self.step():
                return
        raise RuntimeError(f"simulation exceeded {max_steps} deliveries")

    def run_until_all_honest_output(self, max_steps: int = 5_000_000) -> None:
        self.run(
            max_steps=max_steps,
            stop=lambda sim: sim.all_honest_output(),
        )

    def run_until_session_done(
        self, session: int, max_steps: int = 5_000_000
    ) -> None:
        """Deliver until every honest party produced the session's result."""
        self.run(
            max_steps=max_steps,
            stop=lambda sim: sim.session_complete(session),
        )

    def run_sync(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Uniform blocking entry point (simulated time ignores ``timeout``)."""
        del timeout  # bounded by the step limit, not wall-clock
        self.start(root_factory)
        self.run_until_all_honest_output()
        return self.honest_results()

    def round_measure(self) -> float:
        """Simulated time — the causal-chain length under ``FixedDelay``."""
        return self.time

    # -- transport hooks ---------------------------------------------------------------

    def _transmit(self, envelope: Envelope, frame: bytes | None) -> bool:
        """Schedule a network envelope at a model/scheduler-chosen time."""
        base = self.delay_model.delay(
            self._net_rng, envelope.sender, envelope.recipient, self.time
        )
        delay = self.scheduler.schedule(self._adv_rng, envelope, base, self.time)
        if delay <= 0:
            raise RuntimeError("scheduler produced a non-positive delay")
        heapq.heappush(self._queue, (self.time + delay, next(self._seq), envelope))
        return True

    def _note_progress(self, party: Party) -> None:
        done = []
        for session in self._sessions_incomplete:
            if not party.session_has_result(session):
                continue
            times = self.session_output_times.setdefault(session, {})
            if party.index not in times:
                times[party.index] = self.time
            if self.all_honest_output(session):
                done.append(session)
        self._sessions_incomplete.difference_update(done)
