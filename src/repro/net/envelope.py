"""Routed message envelopes.

An envelope carries a payload between two parties together with the
*instance path* that addresses the protocol instance inside the
recipient's stack (e.g. ``("nwh", "view", 3, "pe", "gather", "vrb", 2)``)
and the sender's causal depth, used for round accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.verify_cache import IdentityMemo
from repro.net.payload import Payload

Path = tuple

#: Payload word sizes are pure functions of frozen values, but computing
#: one walks the whole object (an NWH suggest carries an O(n)-word
#: transcript) — and a multicast meters it once per recipient.  Memoized
#: by payload identity, mirroring the codec's encode-once fan-out.
_word_size_memo = IdentityMemo()


@dataclass(frozen=True)
class Envelope:
    path: Path
    sender: int
    recipient: int
    payload: Payload
    depth: int

    def word_size(self) -> int:
        """Words on the wire: the payload plus one routing word."""
        payload = self.payload
        words = _word_size_memo.get(payload)
        if words is None:
            words = payload.word_size()
            _word_size_memo.put(payload, words)
        return words + 1

    def describe(self) -> str:
        return (
            f"{self.sender}->{self.recipient} "
            f"{'/'.join(str(part) for part in self.path)} "
            f"{self.payload.type_name()}"
        )
