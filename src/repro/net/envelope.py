"""Routed message envelopes.

An envelope carries a payload between two parties together with the
full instance address inside the recipient's stack: the *session id*
(which root protocol run this message belongs to — a party may host
several concurrent root instances, e.g. pipelined ADKG epochs) and the
*instance path* below that session's root (e.g.
``("nwh", "view", 3, "pe", "gather", "vrb", 2)``), plus the sender's
causal depth, used for round accounting.

On the wire the session id is the sixth envelope field; frames from the
pre-session wire format carry five fields and decode as session 0 (see
:mod:`repro.net.codec`), so old single-session traffic routes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.verify_cache import IdentityMemo
from repro.net.payload import Payload

Path = tuple

#: Payload word sizes are pure functions of frozen values, but computing
#: one walks the whole object (an NWH suggest carries an O(n)-word
#: transcript) — and a multicast meters it once per recipient.  Memoized
#: by payload identity, mirroring the codec's encode-once fan-out.
_word_size_memo = IdentityMemo()


@dataclass(frozen=True, slots=True, weakref_slot=True)
class Envelope:
    """One routed message.

    Slotted: envelopes are the single most-allocated object of a run
    (one per recipient per send), and the sim's bulk-delivery engine
    holds whole timesteps of them in memory at once — ``__slots__``
    drops the per-instance dict and speeds field access on the hot
    scheduler path.  The weakref slot keeps them identity-memoizable.
    """

    path: Path
    sender: int
    recipient: int
    payload: Payload
    depth: int
    session: int = 0

    def word_size(self) -> int:
        """Words on the wire: the payload plus one routing word."""
        payload = self.payload
        words = _word_size_memo.get(payload)
        if words is None:
            words = payload.word_size()
            _word_size_memo.put(payload, words)
        return words + 1

    def describe(self) -> str:
        prefix = f"s{self.session}:" if self.session else ""
        return (
            f"{self.sender}->{self.recipient} "
            f"{prefix}{'/'.join(str(part) for part in self.path)} "
            f"{self.payload.type_name()}"
        )
