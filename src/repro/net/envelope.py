"""Routed message envelopes.

An envelope carries a payload between two parties together with the
*instance path* that addresses the protocol instance inside the
recipient's stack (e.g. ``("nwh", "view", 3, "pe", "gather", "vrb", 2)``)
and the sender's causal depth, used for round accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.payload import Payload

Path = tuple


@dataclass(frozen=True)
class Envelope:
    path: Path
    sender: int
    recipient: int
    payload: Payload
    depth: int

    def word_size(self) -> int:
        """Words on the wire: the payload plus one routing word."""
        return self.payload.word_size() + 1

    def describe(self) -> str:
        return (
            f"{self.sender}->{self.recipient} "
            f"{'/'.join(str(part) for part in self.path)} "
            f"{self.payload.type_name()}"
        )
