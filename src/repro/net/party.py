"""One party's protocol stack: session multiplexing, routing, buffering.

The party hosts a :class:`SessionTable` of concurrent *sessions* — each
session is one root protocol instance (e.g. one ADKG epoch) with its own
tree of sub-instances addressed by path, its own "upon" condition
registry, its own deterministic RNG stream and its own terminal result.
Session 0 is the default, so single-session callers (``run_root`` /
``party.result``) read exactly as before the session layer existed.

Messages that arrive for a path that has not been spawned yet are
buffered and replayed on spawn — in an asynchronous network a peer may
race ahead and message a sub-protocol the local party has not started.
The buffering is bounded along every axis an attacker controls, so a
Byzantine peer spraying fictitious addresses cannot grow memory without
bound: at most ``pending_cap`` payloads per (session, path), at most
``8 * pending_cap`` buffered payloads per session in total (which also
bounds the number of per-path buckets), and at most
``session_backlog_cap`` root-less sessions (states created by incoming
traffic before the local party started the session).  Everything beyond
a cap is dropped and counted.  Sessions the application actually starts
are bounded by the application itself (e.g. the epoch driver's sliding
window).
Completed sessions can be garbage-collected (:meth:`Party.collect_session`):
their instance tree, buffered messages and conditions are freed, the
result is kept as a tombstone, and late traffic for them is dropped and
counted as stale.

Durability: :meth:`Party.freeze` serializes the whole session table —
every instance's declared state, the pending buffers, the per-session
RNG streams, results and tombstones — into one codec blob (no pickle);
:meth:`Party.thaw` rebuilds an equivalent party from such a blob plus
the application's root factory, and :meth:`Party.replay` pushes a
write-ahead log of post-snapshot envelopes back through the normal
:meth:`deliver` path with network re-sends suppressed (they already left
in the party's previous life).  See DESIGN.md section 9.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, TYPE_CHECKING

from repro.net.conditions import ConditionRegistry
from repro.net.envelope import Envelope, Path
from repro.net.payload import Payload
from repro.net.protocol import Protocol

if TYPE_CHECKING:
    from repro.crypto.keys import PartySecret, PublicDirectory

#: Leading tag + version of a :meth:`Party.freeze` blob.  The version is
#: part of the encoded value, checked strictly on thaw: a future format
#: bump can never be misread as the current one.
SNAPSHOT_TAG = "repro-party-snapshot"
SNAPSHOT_VERSION = 1


class SessionState:
    """Everything one party holds for one root protocol run."""

    __slots__ = (
        "sid",
        "instances",
        "pending",
        "pending_count",
        "conditions",
        "rng",
        "result",
        "result_depth",
        "collected",
        "backlog_counted",
    )

    def __init__(self, sid: int, rng: random.Random) -> None:
        self.sid = sid
        self.instances: dict[Path, Protocol] = {}
        self.pending: dict[Path, list[tuple[int, Payload]]] = {}
        self.pending_count = 0
        self.conditions = ConditionRegistry()
        self.rng = rng
        self.result: Any = _UNSET
        self.result_depth: Optional[int] = None
        self.collected = False
        #: True while this root-less state counts against the party's
        #: ``session_backlog_cap`` (set only for states allocated by
        #: *incoming traffic* — local accessors are trusted callers).
        self.backlog_counted = False

    @property
    def has_result(self) -> bool:
        return self.result is not _UNSET


class SessionTable:
    """The party's sessions, created lazily and collectable individually.

    Lazy creation matters for asynchrony: a peer that raced ahead may
    message session ``s`` before the local party was told to start it —
    the table then holds a root-less state that buffers those messages
    until ``run_root`` installs the root.  ``unstarted_count`` tracks the
    root-less states allocated *by incoming traffic*, so the party can
    refuse to allocate more than ``session_backlog_cap`` of them for
    attacker-chosen sids (states created by local accessors are trusted
    and uncounted).
    """

    def __init__(self, party: "Party") -> None:
        self._party = party
        self._states: dict[int, SessionState] = {}
        self.unstarted_count = 0

    def peek(self, sid: int) -> Optional[SessionState]:
        return self._states.get(sid)

    def ensure(self, sid: int, *, count_backlog: bool = False) -> SessionState:
        state = self._states.get(sid)
        if state is None:
            state = SessionState(sid, self._party._derive_rng(sid))
            self._states[sid] = state
            if count_backlog:
                state.backlog_counted = True
                self.unstarted_count += 1
        return state

    def mark_started(self, state: SessionState) -> None:
        """A root was installed: the state no longer counts as backlog."""
        if state.backlog_counted:
            state.backlog_counted = False
            self.unstarted_count -= 1

    def collect(self, sid: int) -> bool:
        """Free a session's instance/pending/condition state (keep result).

        Returns False if the session does not exist or was already
        collected.  The tombstone keeps the result (and the ``collected``
        flag makes :meth:`Party.deliver` drop late traffic for it).
        """
        state = self._states.get(sid)
        if state is None or state.collected:
            return False
        if state.backlog_counted:
            state.backlog_counted = False
            self.unstarted_count -= 1  # collecting a root-less backlog state
        state.instances = {}
        state.pending = {}
        state.pending_count = 0
        state.conditions = ConditionRegistry()
        state.collected = True
        return True

    def ids(self) -> list[int]:
        return sorted(self._states)

    def __iter__(self) -> Iterator[SessionState]:
        return iter(list(self._states.values()))

    def __len__(self) -> int:
        return len(self._states)


class Party:
    """A single party: a session table of protocol instances plus plumbing."""

    def __init__(
        self,
        index: int,
        n: int,
        f: int,
        rng: random.Random,
        directory: Optional["PublicDirectory"] = None,
        secret: Optional["PartySecret"] = None,
        *,
        rng_label: Optional[str] = None,
        pending_cap: Optional[int] = None,
        session_backlog_cap: int = 64,
    ) -> None:
        self.index = index
        self.n = n
        self.f = f
        self.rng = rng
        self._directory = directory
        self._secret = secret
        # Per-session RNG streams derive from this label so that session
        # ``s`` deals identically whether it runs alone, after another
        # session, or interleaved with one (the session-equivalence tests
        # rely on it).  Session 0 keeps the constructor-provided ``rng``
        # for backward compatibility with single-session seeds.
        self._rng_label = rng_label if rng_label is not None else f"party-{index}"
        #: Buffered payloads allowed per not-yet-spawned (session, path);
        #: generous for honest traffic (a few messages per sender per
        #: path) yet bounds what a spraying adversary can pin in memory.
        self.pending_cap = (
            pending_cap if pending_cap is not None else max(64, 32 * n)
        )
        #: Total buffered payloads allowed per session (across all paths)
        #: — also bounds the number of per-path buckets a session holds.
        self.pending_budget = 8 * self.pending_cap
        #: Root-less sessions the party will lazily allocate for incoming
        #: traffic; honest peers only race ahead by the service's window.
        self.session_backlog_cap = session_backlog_cap
        #: Buffer accounting: ``pending.dropped`` (per-path cap hit),
        #: ``pending.stale`` (traffic for a collected session).  Exposed
        #: through ``Metrics.counters("pending")`` by the transport.
        self.drop_stats: Counter = Counter()
        self.sessions = SessionTable(self)
        self._outbox: list[tuple[int, Path, int, Payload]] = []
        self.current_depth = 0
        self.halted = False

    # -- crypto access ---------------------------------------------------------------

    @property
    def directory(self) -> "PublicDirectory":
        if self._directory is None:
            raise RuntimeError("party has no public directory configured")
        return self._directory

    @property
    def secret(self) -> "PartySecret":
        if self._secret is None:
            raise RuntimeError("party has no secret key material configured")
        return self._secret

    # -- session access ----------------------------------------------------------------

    def _derive_rng(self, sid: int) -> random.Random:
        """Seed a session's stream (called once, at session creation)."""
        if sid == 0:
            return self.rng
        return random.Random(f"{self._rng_label}-session-{sid}")

    def session_rng(self, sid: int) -> random.Random:
        """The session's deterministic RNG stream (session 0 = base rng).

        One *persistent* ``Random`` per session: repeated draws advance
        the stream.  (Re-deriving per access would hand every caller the
        same stream restarted from its seed — independent samplings, e.g.
        a party's n PVSS dealings within one epoch, would correlate.)
        """
        return self.sessions.ensure(sid).rng

    def conditions_for(self, sid: int) -> ConditionRegistry:
        return self.sessions.ensure(sid).conditions

    @property
    def conditions(self) -> ConditionRegistry:
        """Session 0's condition registry (single-session compatibility)."""
        return self.conditions_for(0)

    def session_result(self, sid: int) -> Any:
        state = self.sessions.peek(sid)
        if state is None or not state.has_result:
            raise LookupError(f"session {sid} has no result at party {self.index}")
        return state.result

    def session_has_result(self, sid: int) -> bool:
        state = self.sessions.peek(sid)
        return state is not None and state.has_result

    @property
    def result(self) -> Any:
        state = self.sessions.peek(0)
        return state.result if state is not None else _UNSET

    @property
    def result_depth(self) -> Optional[int]:
        state = self.sessions.peek(0)
        return state.result_depth if state is not None else None

    @property
    def has_result(self) -> bool:
        return self.session_has_result(0)

    def pending_messages(self, session: Optional[int] = None) -> int:
        """Currently buffered not-yet-routable payloads (one or all sessions)."""
        if session is not None:
            state = self.sessions.peek(session)
            return state.pending_count if state is not None else 0
        return sum(state.pending_count for state in self.sessions)

    def collect_session(self, sid: int) -> bool:
        """Garbage-collect a completed session's state; see :class:`SessionTable`."""
        return self.sessions.collect(sid)

    # -- stack management --------------------------------------------------------------

    def run_root(self, protocol: Protocol, session: int = 0) -> Protocol:
        """Install and start a session's root protocol (path ``()``)."""
        state = self.sessions.ensure(session)
        if state.collected:
            raise RuntimeError(
                f"session {session} was already collected at party {self.index}"
            )
        return self._install(state, (), None, None, protocol)

    def spawn(self, parent: Protocol, name: Any, child: Protocol) -> Protocol:
        path = parent.path + (name,)
        state = self.sessions.ensure(parent._session)
        return self._install(state, path, parent, name, child)

    def _install(
        self,
        state: SessionState,
        path: Path,
        parent: Optional[Protocol],
        name: Any,
        protocol: Protocol,
    ) -> Protocol:
        if path in state.instances:
            raise RuntimeError(
                f"instance already exists at {path!r} in session {state.sid}"
            )
        protocol._party = self
        protocol._path = path
        protocol._parent = parent
        protocol._name = name
        protocol._session = state.sid
        if path == ():
            self.sessions.mark_started(state)
        state.instances[path] = protocol
        protocol.on_start()
        replay = state.pending.pop(path, [])
        state.pending_count -= len(replay)
        for sender, payload in replay:
            protocol.on_message(sender, payload)
        return protocol

    def instance(self, path: Path, session: int = 0) -> Optional[Protocol]:
        state = self.sessions.peek(session)
        return state.instances.get(path) if state is not None else None

    # -- event handling ------------------------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        """Route one delivered envelope, then sweep its session's conditions."""
        if self.halted:
            return
        if envelope.depth > self.current_depth:
            self.current_depth = envelope.depth
        existing = self.sessions.peek(envelope.session)
        if existing is not None and existing.collected:
            # The session finished and was garbage-collected; a straggler
            # (or a replaying adversary) is talking to a ghost.
            self.drop_stats["pending.stale"] += 1
            return
        if (
            existing is None
            and self.sessions.unstarted_count >= self.session_backlog_cap
        ):
            # Refuse to allocate yet another root-less session for
            # attacker-chosen sids: the backlog of sessions this party
            # has not been told to start is full.
            self.drop_stats["pending.dropped"] += 1
            return
        state = existing if existing is not None else self.sessions.ensure(
            envelope.session, count_backlog=True
        )
        instance = state.instances.get(envelope.path)
        if instance is None:
            bucket = state.pending.setdefault(envelope.path, [])
            if (
                len(bucket) >= self.pending_cap
                or state.pending_count >= self.pending_budget
            ):
                self.drop_stats["pending.dropped"] += 1
                if not bucket:
                    # Don't let the refused message leave an empty
                    # bucket behind (distinct-path spraying).
                    del state.pending[envelope.path]
            else:
                bucket.append((envelope.sender, envelope.payload))
                state.pending_count += 1
        else:
            instance.on_message(envelope.sender, envelope.payload)
        state.conditions.run_to_fixpoint()

    def preverify(self, envelope: Envelope) -> tuple:
        """``(domain, parts)`` speculation tasks for an about-to-arrive envelope.

        Called by the transports on each envelope of a just-received
        frame, before :meth:`deliver` runs.  Routing mirrors
        :meth:`deliver` — halted party, collected session, and unroutable
        paths yield nothing — and a spawned instance is consulted for its
        own :meth:`~repro.net.protocol.Protocol.preverify` (it may hold
        context the payload lacks).  Strictly advisory: any error makes
        the envelope non-speculable, never undeliverable.
        """
        if self.halted or self._directory is None:
            return ()
        state = self.sessions.peek(envelope.session)
        try:
            if state is not None:
                if state.collected:
                    return ()
                instance = state.instances.get(envelope.path)
                if instance is not None:
                    return tuple(instance.preverify(envelope.sender, envelope.payload))
            return tuple(envelope.payload.verify_tasks(self._directory))
        except Exception:
            return ()

    def sweep_conditions(self) -> None:
        for state in self.sessions:
            if not state.collected:
                state.conditions.run_to_fixpoint()

    def dispatch_output(self, protocol: Protocol, value: Any) -> None:
        if protocol._parent is not None:
            protocol._parent.on_sub_output(protocol._name, value)
        else:
            state = self.sessions.ensure(protocol._session)
            state.result = value
            state.result_depth = self.current_depth

    # -- sending -----------------------------------------------------------------------

    def queue_send(
        self, path: Path, recipient: int, payload: Payload, session: int = 0
    ) -> None:
        if self.halted:
            return
        if not 0 <= recipient < self.n:
            raise ValueError(f"recipient {recipient} out of range")
        if not isinstance(payload, Payload):
            raise TypeError(f"payload must be a Payload, got {type(payload)!r}")
        self._outbox.append((session, path, recipient, payload))

    def collect_outbox(self) -> list[Envelope]:
        """Drain queued sends into envelopes stamped with the causal depth.

        Only network envelopes advance the causal depth: a self-addressed
        envelope is free local computation, so it carries the current
        depth unchanged — otherwise chains of self-deliveries would
        inflate the asynchronous round measure (``metrics.max_depth``)
        past the paper's network-hop count.
        """
        if not self._outbox:
            return []  # the common case: most deliveries queue no sends
        depth = self.current_depth + 1
        envelopes = [
            Envelope(
                path=path,
                sender=self.index,
                recipient=recipient,
                payload=payload,
                depth=depth if recipient != self.index else self.current_depth,
                session=session,
            )
            for session, path, recipient, payload in self._outbox
        ]
        self._outbox.clear()
        return envelopes

    def halt(self) -> None:
        """Stop processing and sending (used by crash behaviours)."""
        self.halted = True
        self._outbox.clear()

    # -- durability: freeze / thaw / replay ---------------------------------------------

    def freeze(self) -> bytes:
        """Serialize this party's full protocol state to one codec blob.

        Must be called at a delivery boundary (outbox drained, conditions
        at fixpoint) — exactly where the durability recorder checkpoints.
        The blob carries, per session: the RNG stream state, the pending
        buffers, result/tombstone bookkeeping and every instance's
        :meth:`~repro.net.protocol.Protocol.snapshot` record in spawn
        order.  Constructor-time configuration (directory, secret, caps)
        is *not* serialized — a thawing party is rebuilt from the same
        trusted setup and the application's root factory.
        """
        from repro.net import codec

        if self._outbox:
            raise RuntimeError(
                "freeze() requires a drained outbox; snapshot at delivery "
                "boundaries only"
            )
        sessions = []
        for state in self.sessions:
            instances = [
                (path, instance.snapshot())
                for path, instance in state.instances.items()
            ]
            sessions.append(
                (
                    state.sid,
                    state.collected,
                    state.backlog_counted,
                    state.has_result,
                    state.result if state.has_result else None,
                    state.result_depth,
                    state.rng.getstate(),
                    state.pending,
                    instances,
                )
            )
        value = (
            SNAPSHOT_TAG,
            SNAPSHOT_VERSION,
            self.index,
            self.n,
            self.f,
            self.current_depth,
            dict(self.drop_stats),
            sessions,
        )
        return codec.encode(value)

    def thaw(
        self,
        blob: bytes,
        root_factory: Optional[Callable[["Party"], Protocol]] = None,
        root_factories: Optional[Mapping[int, Callable[["Party"], Protocol]]] = None,
    ) -> None:
        """Rebuild the session table from a :meth:`freeze` blob.

        Must be called on a pristine party constructed with the same
        ``(index, n, f, rng_label, directory, secret)`` as the frozen
        one.  ``root_factory`` rebuilds each rooted session's root
        instance (``root_factories`` overrides it per session id);
        children are rebuilt recursively through each parent's
        :meth:`~repro.net.protocol.Protocol.build_child`, ``on_start`` is
        never re-run, and every instance's pending ``upon`` conditions
        are re-derived via :meth:`~repro.net.protocol.Protocol.rearm`.
        """
        from repro.net import codec

        if len(self.sessions) or self._outbox:
            raise RuntimeError("thaw() requires a pristine party")
        value = codec.decode(blob)
        if (
            not isinstance(value, tuple)
            or len(value) != 8
            or value[0] != SNAPSHOT_TAG
        ):
            raise ValueError("not a party snapshot blob")
        tag, version, index, n, f, depth, drop_stats, sessions = value
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported party snapshot version {version}")
        if (index, n, f) != (self.index, self.n, self.f):
            raise ValueError(
                f"snapshot of party {index} (n={n}, f={f}) cannot thaw "
                f"party {self.index} (n={self.n}, f={self.f})"
            )
        self.current_depth = depth
        self.drop_stats = Counter(drop_stats)
        restored: list[tuple[SessionState, list[Protocol]]] = []
        for record in sessions:
            (
                sid,
                collected,
                backlog_counted,
                has_result,
                result,
                result_depth,
                rng_state,
                pending,
                instances,
            ) = record
            state = self.sessions.ensure(sid)
            state.rng.setstate(rng_state)
            if has_result:
                state.result = result
            state.result_depth = result_depth
            state.pending = dict(pending)
            state.pending_count = sum(len(bucket) for bucket in pending.values())
            if backlog_counted:
                state.backlog_counted = True
                self.sessions.unstarted_count += 1
            if collected:
                self.sessions.collect(sid)
                continue
            order: list[Protocol] = []
            for path, snap in instances:
                if path == ():
                    factory = None
                    if root_factories is not None:
                        factory = root_factories.get(sid)
                    if factory is None:
                        factory = root_factory
                    if factory is None:
                        raise ValueError(
                            f"session {sid} has a root but no root factory "
                            "was provided"
                        )
                    instance = self._restore_install(state, (), None, None, factory(self))
                else:
                    parent = state.instances.get(path[:-1])
                    if parent is None:
                        raise ValueError(
                            f"snapshot instance {path!r} precedes its parent"
                        )
                    name = path[-1]
                    instance = self._restore_install(
                        state, path, parent, name, parent.build_child(name)
                    )
                instance.restore(snap)
                order.append(instance)
            restored.append((state, order))
        # Re-arm conditions only once every tree stands, then sweep: a
        # re-armed chain may consult sibling instances.  The sweep must
        # not produce network sends — the snapshot was taken at a
        # condition fixpoint, so anything that fires here re-fires
        # already-done (idempotent) work.
        for state, order in restored:
            for instance in order:
                instance.rearm()
            state.conditions.run_to_fixpoint()
        if self._outbox:
            sends = [path for _s, path, _r, _p in self._outbox]
            raise RuntimeError(
                f"thaw() produced network sends from re-armed conditions: "
                f"{sends!r} — a protocol's rearm() is not idempotent"
            )

    def _restore_install(
        self,
        state: SessionState,
        path: Path,
        parent: Optional[Protocol],
        name: Any,
        protocol: Protocol,
    ) -> Protocol:
        """Install a rebuilt instance without ``on_start`` or pending replay."""
        if path in state.instances:
            raise RuntimeError(
                f"instance already exists at {path!r} in session {state.sid}"
            )
        protocol._party = self
        protocol._path = path
        protocol._parent = parent
        protocol._name = name
        protocol._session = state.sid
        if path == ():
            self.sessions.mark_started(state)
        state.instances[path] = protocol
        return protocol

    def replay(self, envelopes: Iterable[Envelope]) -> dict[str, int]:
        """Re-deliver a write-ahead log through the normal event path.

        Each envelope runs the exact live pipeline — :meth:`deliver`,
        then the outbox drained with self-addressed envelopes delivered
        inline — except that *network* sends are suppressed instead of
        transmitted: they already left the party in its pre-crash life,
        and re-emitting them would duplicate traffic.  Suppressions are
        counted in ``drop_stats["replay.suppressed"]``.  Determinism of
        the replay (same RNG stream, same delivery order, same condition
        sweeps) makes the rebuilt state exact.
        """
        delivered = 0
        suppressed = 0
        for envelope in envelopes:
            self.deliver(envelope)
            delivered += 1
            pending = self.collect_outbox()
            while pending:
                queued = pending.pop(0)
                if queued.recipient == self.index:
                    self.deliver(queued)
                    pending.extend(self.collect_outbox())
                else:
                    suppressed += 1
        if suppressed:
            self.drop_stats["replay.suppressed"] += suppressed
        return {"delivered": delivered, "suppressed": suppressed}


class _Unset:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()
