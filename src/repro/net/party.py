"""One party's protocol stack: routing, buffering, condition sweeps.

The party owns a tree of protocol instances addressed by path, an outbox
drained by the runtime, and the condition registry.  Messages that arrive
for a path that has not been spawned yet are buffered and replayed on
spawn — in an asynchronous network a peer may race ahead and message a
sub-protocol the local party has not started.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.net.conditions import ConditionRegistry
from repro.net.envelope import Envelope, Path
from repro.net.payload import Payload
from repro.net.protocol import Protocol

if TYPE_CHECKING:
    from repro.crypto.keys import PartySecret, PublicDirectory


class Party:
    """A single party: protocol instances plus plumbing."""

    def __init__(
        self,
        index: int,
        n: int,
        f: int,
        rng: random.Random,
        directory: Optional["PublicDirectory"] = None,
        secret: Optional["PartySecret"] = None,
    ) -> None:
        self.index = index
        self.n = n
        self.f = f
        self.rng = rng
        self._directory = directory
        self._secret = secret
        self.conditions = ConditionRegistry()
        self._instances: dict[Path, Protocol] = {}
        self._pending: dict[Path, list[tuple[int, Payload]]] = {}
        self._outbox: list[tuple[Path, int, Payload]] = []
        self.current_depth = 0
        self.result: Any = _UNSET
        self.result_depth: Optional[int] = None
        self.halted = False

    # -- crypto access ---------------------------------------------------------------

    @property
    def directory(self) -> "PublicDirectory":
        if self._directory is None:
            raise RuntimeError("party has no public directory configured")
        return self._directory

    @property
    def secret(self) -> "PartySecret":
        if self._secret is None:
            raise RuntimeError("party has no secret key material configured")
        return self._secret

    @property
    def has_result(self) -> bool:
        return self.result is not _UNSET

    # -- stack management --------------------------------------------------------------

    def run_root(self, protocol: Protocol) -> Protocol:
        """Install and start the root protocol (path ``()``)."""
        return self._install((), None, None, protocol)

    def spawn(self, parent: Protocol, name: Any, child: Protocol) -> Protocol:
        path = parent.path + (name,)
        return self._install(path, parent, name, child)

    def _install(
        self, path: Path, parent: Optional[Protocol], name: Any, protocol: Protocol
    ) -> Protocol:
        if path in self._instances:
            raise RuntimeError(f"instance already exists at {path!r}")
        protocol._party = self
        protocol._path = path
        protocol._parent = parent
        protocol._name = name
        self._instances[path] = protocol
        protocol.on_start()
        for sender, payload in self._pending.pop(path, []):
            protocol.on_message(sender, payload)
        return protocol

    def instance(self, path: Path) -> Optional[Protocol]:
        return self._instances.get(path)

    # -- event handling ------------------------------------------------------------------

    def deliver(self, envelope: Envelope) -> None:
        """Route one delivered envelope, then sweep conditions to fixpoint."""
        if self.halted:
            return
        if envelope.depth > self.current_depth:
            self.current_depth = envelope.depth
        instance = self._instances.get(envelope.path)
        if instance is None:
            self._pending.setdefault(envelope.path, []).append(
                (envelope.sender, envelope.payload)
            )
        else:
            instance.on_message(envelope.sender, envelope.payload)
        self.conditions.run_to_fixpoint()

    def sweep_conditions(self) -> None:
        self.conditions.run_to_fixpoint()

    def dispatch_output(self, protocol: Protocol, value: Any) -> None:
        if protocol._parent is not None:
            protocol._parent.on_sub_output(protocol._name, value)
        else:
            self.result = value
            self.result_depth = self.current_depth

    # -- sending -----------------------------------------------------------------------

    def queue_send(self, path: Path, recipient: int, payload: Payload) -> None:
        if self.halted:
            return
        if not 0 <= recipient < self.n:
            raise ValueError(f"recipient {recipient} out of range")
        if not isinstance(payload, Payload):
            raise TypeError(f"payload must be a Payload, got {type(payload)!r}")
        self._outbox.append((path, recipient, payload))

    def collect_outbox(self) -> list[Envelope]:
        """Drain queued sends into envelopes stamped with the causal depth.

        Only network envelopes advance the causal depth: a self-addressed
        envelope is free local computation, so it carries the current
        depth unchanged — otherwise chains of self-deliveries would
        inflate the asynchronous round measure (``metrics.max_depth``)
        past the paper's network-hop count.
        """
        depth = self.current_depth + 1
        envelopes = [
            Envelope(
                path=path,
                sender=self.index,
                recipient=recipient,
                payload=payload,
                depth=depth if recipient != self.index else self.current_depth,
            )
            for path, recipient, payload in self._outbox
        ]
        self._outbox.clear()
        return envelopes

    def halt(self) -> None:
        """Stop processing and sending (used by crash behaviours)."""
        self.halted = True
        self._outbox.clear()


class _Unset:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()
