"""The pluggable Transport abstraction shared by every runtime.

Historically the deterministic simulator and the asyncio runtime each
carried their own copy of the delivery pipeline; this module extracts it.
A :class:`Transport` owns the parties and the metrics and implements the
one pipeline every runtime shares:

* **outbox draining** (:meth:`Transport._flush_party`) — self-addressed
  envelopes are delivered inline (local computation: no words, no bytes,
  no delay), network envelopes pass through the sender's Byzantine
  :class:`~repro.net.adversary.Behavior` transform, are metered (words
  always, codec bytes when ``measure_bytes`` is on) and handed to the
  subclass's :meth:`Transport._transmit`;
* **delivery** (:meth:`Transport._deliver_envelope`) — the recipient's
  behavior may swallow the message, otherwise the delivery is recorded,
  routed into the party's protocol stack, the resulting outbox flushed,
  and :meth:`Transport._note_progress` (done-detection hook) runs.

Subclasses provide only *when and how* a transmitted envelope reaches
:meth:`_deliver_envelope`:

* :class:`~repro.net.runtime.Simulation` — a priority queue of simulated
  delivery times (discrete-event, deterministic);
* :class:`~repro.net.asyncio_runtime.AsyncioRuntime` — an asyncio task
  per envelope with a real randomized sleep;
* :class:`~repro.net.tcp_runtime.TCPRuntime` — codec-encoded frames over
  real TCP stream connections.

:func:`make_transport` is the single name-based injection point the CLI,
the examples and the benchmarks use.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable, Optional

from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import Behavior
from repro.net.envelope import Envelope
from repro.net.metrics import Metrics
from repro.net.party import Party
from repro.net.protocol import Protocol

RootFactory = Callable[[Party], Protocol]

TRANSPORT_KINDS = ("sim", "asyncio", "tcp")

#: Bytes of transport framing per message (length-prefix the TCP runtime
#: writes before each codec frame); counted for every transport so byte
#: totals are comparable across them.
FRAME_HEADER_BYTES = 4

#: Upper bound on one frame, enforced symmetrically: the sender refuses
#: to build a larger frame (honest: loud CodecError; forged: dropped),
#: and the TCP receiver treats a larger length prefix as an attack.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class Transport:
    """Base class: parties, adversary, metrics and the delivery pipeline."""

    #: Subclasses that put codec frames on a real wire set this True; the
    #: pipeline then builds each frame exactly once, up front, and passes
    #: it to :meth:`_transmit`.
    frames_on_wire = False

    def __init__(
        self,
        setup: TrustedSetup,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        *,
        rng_namespace: str = "transport",
        measure_bytes: bool = False,
    ) -> None:
        directory = setup.directory
        self.setup = setup
        self.n = directory.n
        self.f = directory.f
        self.behaviors = dict(behaviors or {})
        if len(self.behaviors) > self.f:
            raise ValueError(
                f"cannot corrupt {len(self.behaviors)} parties with f={self.f}"
            )
        self.measure_bytes = measure_bytes
        self.metrics = Metrics()
        self._bind_work_counters(directory)
        self.dropped_sends = 0
        self.seed = seed
        self._adv_rng = random.Random(f"{rng_namespace}-adv-{seed}")
        # Party RNG streams are namespace-independent so that the same
        # (seed, index) deals identical PVSS contributions on every
        # transport — the cross-transport equivalence tests rely on it.
        self.parties = [
            Party(
                index=i,
                n=self.n,
                f=self.f,
                rng=random.Random(f"party-{seed}-{i}"),
                directory=directory,
                secret=setup.secret(i),
            )
            for i in range(self.n)
        ]

    def _bind_work_counters(self, directory: Any) -> None:
        """Expose hot-path work counters as deltas over this run.

        ``verify`` reads the directory's per-run verification cache
        (misses = distinct values actually verified), ``encode`` the
        codec's payload encode-once memo, ``pairing`` the simulated
        group's pairing-operation count.  All are metered as growth since
        transport construction, so two transports over fresh setups are
        directly comparable.
        """
        from collections import Counter as _Counter

        from repro.net.metrics import counter_delta

        verify_stats = directory.verify_cache.stats
        verify_base = _Counter(verify_stats)
        encode_base = _Counter(codec.encode_stats)
        pair_group = directory.pair_group
        pair_base = pair_group.pair_calls
        self.metrics.attach_counters(
            "verify", lambda: counter_delta(verify_stats, verify_base)
        )
        self.metrics.attach_counters(
            "encode", lambda: counter_delta(codec.encode_stats, encode_base)
        )
        self.metrics.attach_counters(
            "pairing", lambda: {"pair_calls": pair_group.pair_calls - pair_base}
        )

    # -- membership --------------------------------------------------------------------

    @property
    def corrupt(self) -> frozenset[int]:
        return frozenset(self.behaviors)

    @property
    def honest(self) -> frozenset[int]:
        # Memoized: the corruption set is fixed at construction and this
        # is consulted on every delivery (done-detection).
        cached = getattr(self, "_honest_cache", None)
        if cached is None:
            cached = frozenset(range(self.n)) - self.corrupt
            self._honest_cache = cached
        return cached

    # -- lifecycle ---------------------------------------------------------------------

    def start(self, root_factory: RootFactory) -> None:
        """Install the root protocol at every party and flush initial sends."""
        for party in self.parties:
            party.run_root(root_factory(party))
            party.sweep_conditions()
        for party in self.parties:
            self._flush_party(party)
            self._note_progress(party)

    def run_sync(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Run the protocol to all-honest-output and return honest results.

        The uniform blocking entry point: callers of :func:`make_transport`
        can drive any transport without knowing whether it is simulated or
        realtime.
        """
        raise NotImplementedError

    def round_measure(self) -> float:
        """The transport's asynchronous-round measure for a finished run.

        Realtime transports report the maximum causal depth; the
        simulator overrides this with simulated time (which equals the
        causal-chain length under ``FixedDelay``).
        """
        return float(self.metrics.max_depth)

    # -- results -----------------------------------------------------------------------

    def honest_results(self) -> dict[int, Any]:
        return {
            i: self.parties[i].result
            for i in sorted(self.honest)
            if self.parties[i].has_result
        }

    def all_honest_output(self) -> bool:
        return all(self.parties[i].has_result for i in self.honest)

    # -- the shared pipeline -----------------------------------------------------------

    def _flush_party(self, party: Party) -> None:
        """Drain a party's outbox, applying behaviours, metering, transmitting."""
        pending = party.collect_outbox()
        while pending:
            envelope = pending.pop(0)
            if envelope.recipient == envelope.sender:
                # Local delivery: immediate, free, not subject to the
                # outgoing Byzantine filter (it never hits the network).
                self.metrics.record_delivery(envelope)
                party.deliver(envelope)
                pending.extend(party.collect_outbox())
                continue
            behavior = self.behaviors.get(envelope.sender)
            outgoing = (
                behavior.transform_outgoing(envelope, self._adv_rng)
                if behavior is not None
                else [envelope]
            )
            for env in outgoing:
                # Carryability is a property of the wire, never of the
                # metering flag: byte-metering an in-process transport must
                # not change which messages arrive.
                frame = None
                if self.frames_on_wire:
                    try:
                        frame = self._frame(env)
                    except codec.CodecError:
                        if behavior is None:
                            # An honest party produced an unencodable
                            # payload: a programming error, fail loudly.
                            raise
                        # A Byzantine transform forged garbage the codec
                        # cannot carry — the wire drops it *before*
                        # transmission; honest parties live on.
                        self.dropped_sends += 1
                        continue
                if not self._transmit(env, frame):
                    self.dropped_sends += 1
                    continue
                nbytes = (
                    len(frame)
                    if frame is not None
                    else self._measured_bytes(env, forged=behavior is not None)
                )
                self.metrics.record_send(env, nbytes=nbytes)

    def _deliver_envelope(self, envelope: Envelope) -> bool:
        """Deliver one in-flight envelope; False if the adversary ate it."""
        behavior = self.behaviors.get(envelope.recipient)
        if behavior is not None and not behavior.allow_delivery(
            envelope, self._adv_rng
        ):
            return False
        self.metrics.record_delivery(envelope)
        recipient = self.parties[envelope.recipient]
        recipient.deliver(envelope)
        self._flush_party(recipient)
        self._note_progress(recipient)
        return True

    def _frame(self, envelope: Envelope) -> bytes:
        """The envelope's wire frame: length prefix + codec bytes."""
        body = codec.encode_envelope(envelope)
        if len(body) > MAX_FRAME_BYTES:
            raise codec.CodecError(
                f"envelope frame of {len(body)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte wire bound"
            )
        return len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body

    def _measured_bytes(self, envelope: Envelope, forged: bool) -> Optional[int]:
        """Observational byte metric for in-process transports.

        Returns ``None`` when metering is off — or for a Byzantine-forged
        payload the codec cannot size (words are still metered; execution
        is identical either way).  Honest unencodable payloads still fail
        loudly so a missing codec registration is caught before the code
        ever meets a real wire.
        """
        if not self.measure_bytes:
            return None
        try:
            return FRAME_HEADER_BYTES + codec.encoded_size(envelope)
        except codec.CodecError:
            if not forged:
                raise
            return None

    # -- subclass hooks ----------------------------------------------------------------

    def _transmit(self, envelope: Envelope, frame: Optional[bytes]) -> bool:
        """Put one network envelope in flight (subclass-specific).

        ``frame`` is the pre-built wire frame when ``frames_on_wire`` or
        byte metering require one, else ``None``.  Returns False when the
        transport could not carry the envelope (counted as a dropped
        send, not metered).
        """
        raise NotImplementedError

    def _note_progress(self, party: Party) -> None:
        """Called after a party processed events (done-detection hook)."""


class RealtimeTransport(Transport):
    """Shared machinery for runtimes hosted on a live asyncio event loop.

    Subclasses implement :meth:`Transport._transmit`; delivery must call
    :meth:`Transport._deliver_envelope` from the event loop.  ``run``
    starts every party, waits until all honest parties produced output
    (or raises :class:`asyncio.TimeoutError`) and returns the honest
    results.
    """

    def __init__(
        self,
        setup: TrustedSetup,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        *,
        rng_namespace: str = "realtime",
        measure_bytes: bool = False,
    ) -> None:
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace=rng_namespace,
            measure_bytes=measure_bytes,
        )
        self._tasks: set[asyncio.Task] = set()
        self._all_output = asyncio.Event()
        self._failure: Optional[BaseException] = None

    async def run(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Start every party; return honest outputs (raises on timeout).

        ``timeout`` budgets transport setup (``_open``) *and* the wait
        for agreement together; only the synchronous per-party dealing in
        ``start()`` is outside it (CPU-bound crypto is not preemptible).
        An exception escaping any background task (a protocol handler
        bug, a codec error on the send path, ...) aborts the run and is
        re-raised here instead of surfacing as an opaque timeout.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        try:
            # _open() and start() sit inside the one cleanup scope: a
            # partial open (one of n*(n-1) connections refused) or a
            # loudly-failing start (honest unencodable payload) must
            # still cancel every already-spawned task and close sockets.
            await asyncio.wait_for(self._open(), timeout=timeout)
            self.start(root_factory)
            if not self._all_output.is_set():
                remaining = max(0.001, deadline - loop.time())
                await asyncio.wait_for(self._all_output.wait(), timeout=remaining)
        finally:
            for task in list(self._tasks):
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            await self._close()
        # A failure recorded during post-success teardown (e.g. a pump hit
        # a reset from a peer already shutting down) does not invalidate a
        # run whose honest parties all produced output.
        if self._failure is not None and not self.all_honest_output():
            raise self._failure
        return self.honest_results()

    def run_sync(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Blocking wrapper over :meth:`run` (needs no running event loop)."""
        return asyncio.run(self.run(root_factory, timeout=timeout))

    def _spawn(self, coro) -> asyncio.Task:
        """Track a background task for cancellation and error propagation."""
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._on_task_done)
        return task

    def _on_task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None and self._failure is None:
            self._failure = exc
            self._all_output.set()  # wake run() so it can re-raise

    def _note_progress(self, party: Party) -> None:
        if self.all_honest_output():
            self._all_output.set()

    # -- subclass hooks ----------------------------------------------------------------

    async def _open(self) -> None:
        """Bring up transport resources (sockets, ...) before parties start."""

    async def _close(self) -> None:
        """Tear down transport resources after the run finished."""


def make_transport(
    kind: str,
    setup: TrustedSetup,
    *,
    behaviors: Optional[dict[int, Behavior]] = None,
    seed: int = 0,
    **kwargs: Any,
) -> Transport:
    """Build a transport by name: ``"sim"``, ``"asyncio"`` or ``"tcp"``.

    Extra keyword arguments are forwarded to the selected runtime
    (e.g. ``delay_model=``/``scheduler=`` for ``sim``, ``max_delay=`` for
    ``asyncio``, ``host=`` for ``tcp``).
    """
    if kind == "sim":
        from repro.net.runtime import Simulation

        return Simulation(setup, behaviors=behaviors, seed=seed, **kwargs)
    if kind == "asyncio":
        from repro.net.asyncio_runtime import AsyncioRuntime

        return AsyncioRuntime(setup, behaviors=behaviors, seed=seed, **kwargs)
    if kind == "tcp":
        from repro.net.tcp_runtime import TCPRuntime

        return TCPRuntime(setup, behaviors=behaviors, seed=seed, **kwargs)
    raise ValueError(
        f"unknown transport kind {kind!r}; choose from {TRANSPORT_KINDS}"
    )
