"""The pluggable Transport abstraction shared by every runtime.

Historically the deterministic simulator and the asyncio runtime each
carried their own copy of the delivery pipeline; this module extracts it.
A :class:`Transport` owns the parties and the metrics and implements the
one pipeline every runtime shares:

* **outbox draining** (:meth:`Transport._flush_party`) — self-addressed
  envelopes are delivered inline (local computation: no words, no bytes,
  no delay), network envelopes pass through the sender's Byzantine
  :class:`~repro.net.adversary.Behavior` transform, are metered (words
  always, codec bytes when ``measure_bytes`` is on) and handed to the
  subclass's :meth:`Transport._transmit` — or, on the batched plane
  (``batching=True``, the default), appended to the coalescing buffer;
* **coalescing** (:meth:`Transport._flush_coalesced`) — buffered sends
  are handed to the subclass's :meth:`Transport._transmit_coalesced` as
  one creation-ordered batch at the end of each protocol activation /
  simulated timestep (and mid-activation when the buffer hits the size
  cap), so a multicast burst travels as few frames instead of n.
  *Protocol* word/byte accounting is batching-invariant: every send is
  metered with its unbatched per-envelope frame size at buffer time;
  what coalescing changes is tracked separately as frame counts,
  occupancy and actual wire bytes (``Metrics.record_frame``);
* **delivery** (:meth:`Transport._deliver_envelope`) — the recipient's
  behavior may swallow the message, otherwise the delivery is recorded,
  routed into the party's protocol stack, the resulting outbox flushed,
  and :meth:`Transport._note_progress` (done-detection hook) runs.

Subclasses provide only *when and how* a transmitted envelope reaches
:meth:`_deliver_envelope`:

* :class:`~repro.net.runtime.Simulation` — a priority queue of simulated
  delivery times (discrete-event, deterministic);
* :class:`~repro.net.asyncio_runtime.AsyncioRuntime` — an asyncio task
  per envelope with a real randomized sleep;
* :class:`~repro.net.tcp_runtime.TCPRuntime` — codec-encoded frames over
  real TCP stream connections.

:func:`make_transport` is the single name-based injection point the CLI,
the examples and the benchmarks use.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
from collections import Counter as _Counter
from typing import Any, Callable, Optional

from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import Behavior
from repro.net.chaos import DELIVER as _CHAOS_DELIVER, HOLD as _CHAOS_HOLD
from repro.net.chaos import coerce_chaos
from repro.net.envelope import Envelope
from repro.net.metrics import Metrics
from repro.net.party import Party
from repro.net.protocol import Protocol
from repro.net.sharding import SESSION_STRIDE

RootFactory = Callable[[Party], Protocol]

TRANSPORT_KINDS = ("sim", "asyncio", "tcp")

#: Bytes of transport framing per message (length-prefix the TCP runtime
#: writes before each codec frame); counted for every transport so byte
#: totals are comparable across them.
FRAME_HEADER_BYTES = 4

#: Upper bound on one frame, enforced symmetrically: the sender refuses
#: to build a larger frame (honest: loud CodecError; forged: dropped),
#: and the TCP receiver treats a larger length prefix as an attack.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class Transport:
    """Base class: parties, adversary, metrics and the delivery pipeline."""

    #: Subclasses that put codec frames on a real wire set this True; the
    #: pipeline then builds each frame exactly once, up front, and passes
    #: it to :meth:`_transmit`.
    frames_on_wire = False

    #: Coalescing-buffer flush policy: a buffer reaching this many
    #: envelopes is flushed mid-activation; a wire frame is additionally
    #: split so its body stays under ``batch_cap_bytes``.
    batch_cap_envelopes = 256
    batch_cap_bytes = 1 << 20

    def __init__(
        self,
        setup: Optional[TrustedSetup],
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        *,
        rng_namespace: str = "transport",
        measure_bytes: bool = False,
        batching: bool = True,
        workers: int = 0,
        chaos: Any = None,
        shards: Any = None,
    ) -> None:
        #: Sharded mode (DESIGN §12): the roster is the concatenation of
        #: k independent groups' parties in contiguous universe slots.
        #: Envelopes keep group-local sender/recipient indices; the
        #: session id (blocked per group, see repro.net.sharding)
        #: resolves the delivery slot.  ``None`` = the classic
        #: single-group transport, with zero behavior change.
        self.shards = tuple(shards) if shards else None
        if self.shards is not None:
            if setup is not None:
                raise ValueError(
                    "a sharded transport derives its roster from the shard "
                    "groups; pass setup=None"
                )
            if behaviors:
                raise ValueError(
                    "Byzantine behaviors are keyed by single-group party "
                    "index and are not supported in sharded mode"
                )
            if chaos is not None:
                raise ValueError(
                    "the chaos plane is not supported in sharded mode"
                )
            if workers:
                raise ValueError(
                    "the verify pool binds one directory; sharded runs "
                    "parallelize per group (ShardExecutor), not per verify"
                )
            for expected, group in enumerate(self.shards):
                if group.gid != expected:
                    raise ValueError(
                        "shard groups must be contiguous gids 0..k-1 "
                        f"(got gid {group.gid} at position {expected})"
                    )
            self.setup = None
            self.n = sum(group.n for group in self.shards)
            self.f = sum(group.f for group in self.shards)
            self._group_bases: Optional[list[int]] = []
            base = 0
            for group in self.shards:
                self._group_bases.append(base)
                base += group.n
            #: One namespaced Metrics per group, metered by the owning
            #: session's group — the fix for counter collisions under
            #: concurrent session families (merge them for totals).
            self.shard_metrics: Optional[list[Metrics]] = [
                Metrics() for _ in self.shards
            ]
        else:
            directory = setup.directory
            self.setup = setup
            self.n = directory.n
            self.f = directory.f
            self._group_bases = None
            self.shard_metrics = None
        self.behaviors = dict(behaviors or {})
        if len(self.behaviors) > self.f:
            raise ValueError(
                f"cannot corrupt {len(self.behaviors)} parties with f={self.f}"
            )
        self.measure_bytes = measure_bytes
        self.batching = batching
        #: Creation-ordered coalescing buffer of (envelope, metered
        #: nbytes, buffered-delay) records awaiting
        #: :meth:`_flush_coalesced`.  Plain tuples on purpose: they are
        #: the hot scheduler records and tuples are the slot-free
        #: optimum.  The delay slot is drawn at *append* time via
        #: :meth:`_buffered_delay` so RNG consumption interleaves with
        #: Byzantine behavior transforms exactly as on the unbatched
        #: plane (``None`` on transports without one).
        self._outgoing: list[tuple[Envelope, Optional[int], Any]] = []
        #: Last metered envelope's size components, keyed by *object
        #: identity* of every field but the recipient — a multicast burst
        #: reuses one size computation for its n-1 siblings.
        self._size_cache: Optional[tuple] = None
        #: Per-delivery observers (tracing); each is called with every
        #: network envelope that was actually delivered.
        self._delivery_observers: list[Callable[[Envelope], None]] = []
        self.metrics = Metrics()
        if self.shards is not None:
            self._bind_work_counters_sharded()
        else:
            self._bind_work_counters(directory)
        #: Process-pool verification plane (DESIGN §10).  ``workers=0``
        #: is the inline reference plane — verdicts, word/byte totals and
        #: agreement results are byte-identical with any worker count;
        #: the pool only moves *where* verification compute runs.
        self.workers = int(workers or 0)
        self.pool = None
        if self.workers > 0:
            from repro.crypto.pool import PoolVerifier

            self.pool = PoolVerifier(self.workers, directory)
            directory.verify_cache.attach_pool(self.pool)
            self.metrics.attach_counters("pool", self.pool.counters)
        self.dropped_sends = 0
        self.seed = seed
        self._adv_rng = random.Random(f"{rng_namespace}-adv-{seed}")
        #: Link-level fault injection (DESIGN §11).  ``chaos`` accepts a
        #: :class:`~repro.net.chaos.ChaosPlane`, a
        #: :class:`~repro.net.chaos.ChaosSpec` or a spec string; spec
        #: forms are seeded from the run seed, so same-seed chaos runs
        #: are exactly reproducible.  ``None`` (and an idle spec) leaves
        #: the delivery pipeline byte-identical to a plane-free run.
        self.chaos = coerce_chaos(chaos, seed)
        if self.chaos is not None:
            self.metrics.attach_counters("chaos", self.chaos.counters)
        #: Session ids whose roots have been installed on this network,
        #: and the subset still awaiting all-honest completion (progress
        #: notes scan only the latter, so a service running thousands of
        #: epochs pays O(window), not O(history), per delivery).
        self._sessions_started: set[int] = set()
        self._sessions_incomplete: set[int] = set()
        #: Per incomplete session: honest parties whose result has not
        #: been observed yet.  Done-detection discards one index per
        #: first-result event, so the per-delivery progress note costs
        #: O(incomplete sessions) dict lookups instead of an O(n) scan
        #: over all honest parties.
        self._session_waiting: dict[int, set[int]] = {}
        #: Detached (crashed) party indices mapped to the envelopes parked
        #: for them while down; re-injected on :meth:`reattach_party`.
        self._detached: dict[int, list[Envelope]] = {}
        # Party RNG streams are namespace-independent so that the same
        # (seed, index) deals identical PVSS contributions on every
        # transport — the cross-transport equivalence tests rely on it.
        # The same string doubles as the per-session RNG derivation label,
        # making session ``s`` transport- and interleaving-independent too.
        if self.shards is not None:
            # Per-group parties in contiguous slots, configured exactly
            # as a solo transport of that group (seed=group.seed) would
            # configure them — same RNG labels, same directory, same
            # secret — so a group's sessions deal byte-identically in
            # shared, sequential and worker-process execution.
            self.parties = []
            for group in self.shards:
                group_setup = group.setup
                group_directory = group_setup.directory
                for i in range(group.n):
                    label = f"party-{group.seed}-{i}"
                    self.parties.append(
                        Party(
                            index=i,
                            n=group.n,
                            f=group.f,
                            rng=random.Random(label),
                            directory=group_directory,
                            secret=group_setup.secret(i),
                            rng_label=label,
                        )
                    )
        else:
            self.parties = [self.build_party(i) for i in range(self.n)]

    def build_party(self, index: int) -> Party:
        """A pristine party with this transport's canonical constructor args.

        Used at construction and by crash recovery: a rehydrated
        replacement must be built with byte-identical configuration
        (RNG label, directory, secret) for
        :meth:`~repro.net.party.Party.thaw` to be exact.
        """
        return Party(
            index=index,
            n=self.n,
            f=self.f,
            rng=random.Random(f"party-{self.seed}-{index}"),
            directory=self.setup.directory,
            secret=self.setup.secret(index),
            rng_label=f"party-{self.seed}-{index}",
        )

    def _bind_work_counters(self, directory: Any) -> None:
        """Expose hot-path work counters as deltas over this run.

        ``verify`` reads the directory's per-run verification cache
        (misses = distinct values actually verified), ``encode`` the
        codec's payload encode-once memo, ``pairing`` the simulated
        group's pairing-operation count.  All are metered as growth since
        transport construction, so two transports over fresh setups are
        directly comparable.
        """
        from repro.net.metrics import counter_delta

        # Snapshots, not the live stats mapping: pool completion
        # callbacks mutate the cache's counters from executor threads,
        # and ``snapshot()`` copies them under the cache lock.
        verify_cache = directory.verify_cache
        verify_base = _Counter(verify_cache.snapshot())
        encode_base = _Counter(codec.encode_stats)
        pair_group = directory.pair_group
        pair_base = pair_group.pair_calls
        self.metrics.attach_counters(
            "verify", lambda: counter_delta(verify_cache.snapshot(), verify_base)
        )
        self.metrics.attach_counters(
            "encode", lambda: counter_delta(codec.encode_stats, encode_base)
        )
        self.metrics.attach_counters(
            "pairing", lambda: {"pair_calls": pair_group.pair_calls - pair_base}
        )
        self.metrics.attach_counters("pending", self._pending_counters)

    def _bind_work_counters_sharded(self) -> None:
        """Work counters for k groups: per-group views plus summed totals.

        Each group's directory has its own verification cache and pairing
        group, so its deltas bind into that group's namespaced
        :class:`Metrics`; the transport-level ``metrics.counters(...)``
        sums the per-group views (plus the process-global codec memo,
        which all groups share).
        """
        from repro.net.metrics import counter_delta

        assert self.shards is not None and self.shard_metrics is not None
        encode_base = _Counter(codec.encode_stats)
        for group, group_metrics in zip(self.shards, self.shard_metrics):
            verify_cache = group.setup.directory.verify_cache
            verify_base = _Counter(verify_cache.snapshot())
            pair_group = group.setup.directory.pair_group
            pair_base = pair_group.pair_calls
            group_metrics.attach_counters(
                "verify",
                lambda cache=verify_cache, base=verify_base: counter_delta(
                    cache.snapshot(), base
                ),
            )
            group_metrics.attach_counters(
                "pairing",
                lambda group=pair_group, base=pair_base: {
                    "pair_calls": group.pair_calls - base
                },
            )
        shard_metrics = self.shard_metrics

        def summed(name: str) -> Callable[[], dict]:
            def provider() -> dict:
                totals = _Counter()
                for group_metrics in shard_metrics:
                    totals.update(group_metrics.counters(name))
                return {key: value for key, value in totals.items() if value}

            return provider

        self.metrics.attach_counters("verify", summed("verify"))
        self.metrics.attach_counters("pairing", summed("pairing"))
        self.metrics.attach_counters(
            "encode", lambda: counter_delta(codec.encode_stats, encode_base)
        )
        self.metrics.attach_counters("pending", self._pending_counters)

    def _pending_counters(self) -> dict:
        """Session-buffer accounting aggregated over all parties.

        ``dropped``/``stale`` come from the parties' bounded pending
        buffers (see :class:`~repro.net.party.Party`); ``buffered`` is a
        live gauge of payloads currently parked for unspawned paths.
        """
        totals = _Counter()
        buffered = 0
        for party in self.parties:
            totals.update(party.drop_stats)
            buffered += party.pending_messages()
        counters = {key.split("pending.", 1)[-1]: value for key, value in totals.items()}
        if buffered:
            counters["buffered"] = buffered
        return counters

    # -- parallel crypto plane ---------------------------------------------------------

    def shutdown_workers(self) -> None:
        """Detach the verification pool (idempotent; shared executor stays warm)."""
        if self.pool is not None:
            self.setup.directory.verify_cache.detach_pool()
            self.pool.close()
            self.pool = None

    def _preverify_batch(self, envelopes: Any) -> int:
        """Speculatively submit a delivery batch's verification tasks.

        Asks each recipient party which ``(domain, parts)`` checks the
        buffered envelopes will trigger (:meth:`Party.preverify`) and
        hands them to the pool via ``VerifyCache.speculate`` *before* the
        protocol state machines activate, so ``deliver()`` usually finds
        the verdict settled.  A no-op on the inline plane and after a
        pool break; purely advisory either way — verdicts, counters and
        agreement results are unchanged, only wall-clock moves.
        """
        pool = self.pool
        if pool is None or pool.broken:
            return 0
        tasks: list = []
        parties = self.parties
        n = self.n
        for envelope in envelopes:
            recipient = envelope.recipient
            if 0 <= recipient < n:
                tasks.extend(parties[recipient].preverify(envelope))
        if not tasks:
            return 0
        return self.setup.directory.verify_cache.speculate(tasks)

    # -- sharded routing ---------------------------------------------------------------
    #
    # In sharded mode envelopes carry group-local indices; the session id
    # names the owning group and these helpers translate local indices to
    # universe slots at the routing seams (delivery, link keys, wire
    # validation).  In single-group mode they are all identity.

    def _slot(self, envelope: Envelope) -> int:
        """The universe slot an envelope's recipient lives in."""
        bases = self._group_bases
        if bases is None:
            return envelope.recipient
        return bases[envelope.session // SESSION_STRIDE] + envelope.recipient

    def _pair_slots(self, envelope: Envelope) -> tuple[int, int]:
        """The (sender, recipient) universe-slot pair (link keys)."""
        bases = self._group_bases
        if bases is None:
            return (envelope.sender, envelope.recipient)
        base = bases[envelope.session // SESSION_STRIDE]
        return (base + envelope.sender, base + envelope.recipient)

    def _wire_accepts(self, envelope: Envelope, slot: int) -> bool:
        """Is a wire-decoded envelope validly addressed to server ``slot``?

        The Byzantine-input posture at the transport edge: a forged
        session id that names no group, or a sender/recipient outside the
        group's roster, is rejected before it can index anything.
        """
        bases = self._group_bases
        if bases is None:
            return envelope.recipient == slot and 0 <= envelope.sender < self.n
        session = envelope.session
        if type(session) is not int or session < 0:
            return False
        gid = session // SESSION_STRIDE
        if gid >= len(bases):
            return False
        group_n = self.shards[gid].n
        return (
            0 <= envelope.sender < group_n
            and 0 <= envelope.recipient < group_n
            and bases[gid] + envelope.recipient == slot
        )

    def _session_group(self, session: int) -> int:
        """The gid owning a locally-originated session id (sharded mode)."""
        gid = session // SESSION_STRIDE
        if not 0 <= gid < len(self.shards):
            raise ValueError(f"session {session} maps to no shard group")
        return gid

    def _group_parties(self, gid: int) -> list[Party]:
        base = self._group_bases[gid]
        return self.parties[base : base + self.shards[gid].n]

    def _link_pairs(self) -> list[tuple[int, int]]:
        """Ordered slot pairs a wire transport needs connections for.

        All distinct pairs on a single group; intra-group pairs only in
        sharded mode — groups are independent protocols and never message
        each other, so cross-group sockets would be dead weight.
        """
        if self._group_bases is None:
            return [
                (s, r) for s in range(self.n) for r in range(self.n) if s != r
            ]
        pairs = []
        for base, group in zip(self._group_bases, self.shards):
            pairs.extend(
                (base + i, base + j)
                for i in range(group.n)
                for j in range(group.n)
                if i != j
            )
        return pairs

    # -- membership --------------------------------------------------------------------

    @property
    def corrupt(self) -> frozenset[int]:
        return frozenset(self.behaviors)

    @property
    def honest(self) -> frozenset[int]:
        # Memoized: the corruption set is fixed at construction and this
        # is consulted on every delivery (done-detection).
        cached = getattr(self, "_honest_cache", None)
        if cached is None:
            cached = frozenset(range(self.n)) - self.corrupt
            self._honest_cache = cached
        return cached

    # -- lifecycle ---------------------------------------------------------------------

    def start(self, root_factory: RootFactory, session: int = 0) -> None:
        """Install a session's root at every party and flush initial sends.

        May be called repeatedly with distinct session ids — including on
        a network that is already carrying traffic — so long-lived
        deployments can inject new root protocol runs (e.g. the next DKG
        epoch) without tearing the transport down.
        """
        if session in self._sessions_started:
            raise RuntimeError(f"session {session} already started")
        self._sessions_started.add(session)
        self._sessions_incomplete.add(session)
        if self.shards is not None:
            # A session lives entirely inside its owning group: the root
            # is installed at that group's parties only, and the waiting
            # set holds group-local indices (sound because session-id
            # blocks are disjoint — no other group's party ever reports a
            # result for this session).
            gid = self._session_group(session)
            parties = self._group_parties(gid)
            self._session_waiting[session] = set(range(self.shards[gid].n))
        else:
            parties = self.parties
            self._session_waiting[session] = set(self.honest)
        for party in parties:
            party.run_root(root_factory(party), session=session)
            party.sweep_conditions()
        for party in parties:
            self._flush_party(party)
            self._note_progress(party)
        self._flush_coalesced()

    def start_session(self, session: int, root_factory: RootFactory) -> None:
        """Alias of :meth:`start` with the session id leading (service layer)."""
        self.start(root_factory, session=session)

    @property
    def sessions_started(self) -> frozenset[int]:
        return frozenset(self._sessions_started)

    def collect_session(self, session: int) -> None:
        """Garbage-collect a completed session's state at every party."""
        for party in self.parties:
            party.collect_session(session)

    def run_sync(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Run the protocol to all-honest-output and return honest results.

        The uniform blocking entry point: callers of :func:`make_transport`
        can drive any transport without knowing whether it is simulated or
        realtime.
        """
        raise NotImplementedError

    def round_measure(self) -> float:
        """The transport's asynchronous-round measure for a finished run.

        Realtime transports report the maximum causal depth; the
        simulator overrides this with simulated time (which equals the
        causal-chain length under ``FixedDelay``).
        """
        return float(self.metrics.max_depth)

    # -- results -----------------------------------------------------------------------

    def honest_results(self, session: int = 0) -> dict[int, Any]:
        if self.shards is not None:
            # Keyed by group-local index, exactly as a solo run of the
            # owning group would key them (sharded mode has no corrupt
            # parties, so every member is honest).
            parties = self._group_parties(self._session_group(session))
            return {
                party.index: party.session_result(session)
                for party in parties
                if party.session_has_result(session)
            }
        return {
            i: self.parties[i].session_result(session)
            for i in sorted(self.honest)
            if self.parties[i].session_has_result(session)
        }

    def all_honest_output(self, session: int = 0) -> bool:
        # Started sessions are answered from the done-detection
        # bookkeeping in O(1) — this is the per-delivery stop predicate
        # of every run_until_* loop.  Sessions this transport never
        # started (probes in tests) fall back to the direct scan.
        if session in self._sessions_started:
            return session not in self._sessions_incomplete
        return all(
            self.parties[i].session_has_result(session) for i in self.honest
        )

    def session_complete(self, session: int) -> bool:
        """True once every honest party produced the session's result."""
        return self.all_honest_output(session)

    # -- the shared pipeline -----------------------------------------------------------

    def _flush_party(self, party: Party) -> None:
        """Drain a party's outbox, applying behaviours, metering, transmitting.

        On the batched plane each network envelope is metered with its
        *unbatched* frame size and appended to the coalescing buffer;
        the buffer is handed to the subclass at the next
        :meth:`_flush_coalesced` (end of activation / timestep, or here
        when the size cap trips mid-activation).
        """
        pending = party.collect_outbox()
        behaviors = self.behaviors
        batching = self.batching
        shard_metrics = self.shard_metrics
        while pending:
            envelope = pending.pop(0)
            if envelope.recipient == envelope.sender:
                # Local delivery: immediate, free, not subject to the
                # outgoing Byzantine filter (it never hits the network).
                self.metrics.record_delivery(envelope)
                if shard_metrics is not None:
                    shard_metrics[
                        envelope.session // SESSION_STRIDE
                    ].record_delivery(envelope)
                party.deliver(envelope)
                pending.extend(party.collect_outbox())
                continue
            behavior = behaviors.get(envelope.sender) if behaviors else None
            outgoing = (
                behavior.transform_outgoing(envelope, self._adv_rng)
                if behavior is not None
                else (envelope,)
            )
            for env in outgoing:
                if batching:
                    if not self._can_transmit(env):
                        self.dropped_sends += 1
                        continue
                    try:
                        nbytes = self._envelope_nbytes(env)
                    except codec.CodecError:
                        if behavior is None and (
                            self.frames_on_wire or self.measure_bytes
                        ):
                            # An honest party produced an unencodable
                            # payload: a programming error, fail loudly.
                            raise
                        if self.frames_on_wire:
                            # A Byzantine transform forged garbage the
                            # codec cannot carry — the wire drops it
                            # before transmission; honest parties live on.
                            self.dropped_sends += 1
                            continue
                        # In-process transport: carryability is a property
                        # of the wire, never of the metering flag — the
                        # forged payload travels, its bytes unmetered.
                        nbytes = None
                    self.metrics.record_send(env, nbytes=nbytes)
                    if shard_metrics is not None:
                        shard_metrics[
                            env.session // SESSION_STRIDE
                        ].record_send(env, nbytes=nbytes)
                    self._outgoing.append((env, nbytes, self._buffered_delay(env)))
                    if len(self._outgoing) >= self.batch_cap_envelopes:
                        self._flush_coalesced()
                    continue
                # Unbatched plane: the per-envelope reference pipeline.
                frame = None
                if self.frames_on_wire:
                    try:
                        frame = self._frame(env)
                    except codec.CodecError:
                        if behavior is None:
                            raise
                        self.dropped_sends += 1
                        continue
                if not self._transmit(env, frame):
                    self.dropped_sends += 1
                    continue
                nbytes = (
                    len(frame)
                    if frame is not None
                    else self._measured_bytes(env, forged=behavior is not None)
                )
                self.metrics.record_send(env, nbytes=nbytes)
                if shard_metrics is not None:
                    shard_metrics[
                        env.session // SESSION_STRIDE
                    ].record_send(env, nbytes=nbytes)

    def _envelope_nbytes(self, envelope: Envelope) -> Optional[int]:
        """The envelope's metered byte size on the batched plane.

        Identical by construction to what the unbatched plane meters —
        the length of the envelope's own length-prefixed frame — but
        composed from the codec's payload/path memo entries instead of a
        full re-encode per recipient, and short-circuited entirely for
        the siblings of a multicast burst: envelopes whose payload, path,
        sender, depth and session are the *same objects* as the last
        metered envelope's differ only in the recipient varint, so the
        cached base size is adjusted by that one field.  (Identity
        comparison makes this sound for any value: identical objects
        encode identically; a merely-equal forgery recomputes.)  ``None``
        when bytes are not metered on this transport.  Raises
        :class:`~repro.net.codec.CodecError` for unencodable payloads
        (the caller maps that to loud-failure or forged-drop exactly
        like the unbatched plane).
        """
        if not (self.frames_on_wire or self.measure_bytes):
            return None
        recipient = envelope.recipient
        if type(recipient) is int and recipient >= 0:
            recipient_size = 2 if recipient < 64 else 3 if recipient < 8192 else None
        else:
            recipient_size = None
        cached = self._size_cache
        if (
            recipient_size is not None
            and cached is not None
            and cached[0] is envelope.payload
            and cached[1] is envelope.path
            and cached[2] is envelope.sender
            and cached[3] is envelope.depth
            and cached[4] is envelope.session
        ):
            # The codec counts one payload-encode request per metered
            # send; a size served from this cache is such a request
            # served from memo, so the fan-out accounting matches the
            # unbatched plane's.
            size = cached[5] + recipient_size
            if size > MAX_FRAME_BYTES:
                raise codec.CodecError(
                    f"envelope frame of {size} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte wire bound"
                )
            stats = codec.encode_stats
            stats["payload.calls"] += 1
            stats["payload.hits"] += 1
            return FRAME_HEADER_BYTES + size
        size = codec.encoded_envelope_size(envelope)
        if size > MAX_FRAME_BYTES:
            raise codec.CodecError(
                f"envelope frame of {size} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte wire bound"
            )
        if recipient_size is not None:
            self._size_cache = (
                envelope.payload,
                envelope.path,
                envelope.sender,
                envelope.depth,
                envelope.session,
                size - recipient_size,
            )
        return FRAME_HEADER_BYTES + size

    def _deliver_envelope(self, envelope: Envelope) -> bool:
        """Deliver one in-flight envelope and flush its coalesced sends."""
        result = self._deliver_buffered(envelope)
        if self._outgoing:
            self._flush_coalesced()
        return result

    def _deliver_buffered(self, envelope: Envelope) -> bool:
        """Deliver one envelope, leaving its sends in the coalescing buffer.

        False if the adversary ate it.  Bulk delivery paths (the sim's
        same-timestamp batches, a TCP reader working through one frame)
        call this per envelope and :meth:`_flush_coalesced` once at the
        end, so one burst of activations coalesces into shared frames.
        """
        chaos = self.chaos
        if chaos is not None and chaos.active:
            action, delay = chaos.decide(envelope, self._chaos_now())
            if action is not _CHAOS_DELIVER:
                if action is _CHAOS_HOLD:
                    # Held by a partition / retransmitted after loss /
                    # pulled out of line: re-injected after ``delay``,
                    # exempt from chaos on re-entry.  Never metered as a
                    # delivery until it actually reaches the party.
                    chaos.release(envelope)
                    self._chaos_requeue(envelope, delay)
                    return False
                # DUPLICATE: the original is delivered now (below); a
                # *distinct* copy — its own identity, so the release
                # marking cannot alias — is re-injected after ``delay``.
                copy = dataclasses.replace(envelope)
                chaos.release(copy)
                self._chaos_requeue(copy, delay)
        slot = self._slot(envelope)
        parked = self._detached.get(slot)
        if parked is not None:
            # The recipient's process is down: park the delivery the way
            # a reconnecting link's send queue would, to be re-injected
            # on reattach.  Parked traffic is not metered as delivered.
            parked.append(envelope)
            return False
        behavior = self.behaviors.get(slot)
        if behavior is not None and not behavior.allow_delivery(
            envelope, self._adv_rng
        ):
            return False
        self.metrics.record_delivery(envelope)
        if self.shard_metrics is not None:
            self.shard_metrics[
                envelope.session // SESSION_STRIDE
            ].record_delivery(envelope)
        recipient = self.parties[slot]
        recipient.deliver(envelope)
        self._flush_party(recipient)
        self._note_progress(recipient)
        if self._delivery_observers:
            for observer in self._delivery_observers:
                observer(envelope)
        return True

    def add_delivery_observer(
        self, observer: Callable[[Envelope], None]
    ) -> None:
        """Register a per-network-delivery callback (tracing).

        Multiple observers coexist; each sees every delivered envelope.
        """
        self._delivery_observers.append(observer)

    def remove_delivery_observer(
        self, observer: Callable[[Envelope], None]
    ) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        try:
            self._delivery_observers.remove(observer)
        except ValueError:
            pass

    # -- detach / reattach (crash–recovery) ----------------------------------------------

    def detach_party(self, index: int) -> None:
        """Take a party's process down mid-run.

        Its in-memory protocol state is considered lost (the object is
        halted and will be replaced on reattach); traffic addressed to it
        is parked — modelling peers' transport-level send queues across a
        reconnect — and re-injected by :meth:`reattach_party`.  Works
        identically on every runtime because parking happens in the
        shared delivery pipeline.
        """
        if not 0 <= index < self.n:
            raise ValueError(f"party index {index} out of range")
        if index in self._detached:
            raise RuntimeError(f"party {index} is already detached")
        self._detached[index] = []
        self.parties[index].halt()

    def detached_parties(self) -> frozenset[int]:
        return frozenset(self._detached)

    def reattach_party(self, index: int, party: Optional[Party] = None) -> int:
        """Bring a detached party back and drain its parked traffic.

        ``party`` is the rehydrated replacement (built via
        :meth:`build_party` and ``thaw``-ed from durable storage); omit it
        to reattach the original in-memory object (an omission-style
        fault with no state loss).  Parked envelopes are re-injected
        through the normal delivery pipeline — and therefore through the
        batching plane — in arrival order.  Returns the number of parked
        envelopes actually delivered.
        """
        if index not in self._detached:
            raise RuntimeError(f"party {index} is not detached")
        parked = self._detached.pop(index)
        if party is not None:
            if party.index != index:
                raise ValueError(
                    f"replacement party has index {party.index}, expected {index}"
                )
            self.parties[index] = party
        else:
            self.parties[index].halted = False
        delivered = 0
        for envelope in parked:
            if self._deliver_buffered(envelope):
                delivered += 1
        self._flush_coalesced()
        # A thawed party may already hold session results produced before
        # the crash; fold them into done-detection immediately.
        self._note_progress(self.parties[index])
        return delivered

    # -- chaos hooks -------------------------------------------------------------------

    def _chaos_now(self) -> float:
        """The chaos plane's clock: simulated time or seconds since open."""
        return 0.0

    def _chaos_requeue(self, envelope: Envelope, delay: float) -> None:
        """Re-inject a chaos-held envelope after ``delay`` time units.

        The simulator pushes onto its delivery heap; realtime transports
        spawn a sleeping task.  Both re-enter the shared pipeline, where
        the released marking lets the envelope through.
        """
        raise NotImplementedError(
            "this transport cannot re-inject chaos-held envelopes"
        )

    def _buffered_delay(self, envelope: Envelope) -> Any:
        """Transport-specific in-flight parameter drawn at buffer time.

        The simulator overrides this to draw the envelope's delivery
        delay (delay model + adversarial scheduler) the moment the
        envelope is buffered, so the adversary RNG is consumed in
        exactly the unbatched plane's order — interleaved with the
        Byzantine behavior transforms — rather than at flush time.
        """
        return None

    # -- done-detection ----------------------------------------------------------------

    def _note_progress_sessions(self, party: Party) -> list[int]:
        """Advance done-detection for one party; return sessions that
        just reached all-honest completion.

        The single implementation of the waiting-set algorithm both
        runtimes' ``_note_progress`` hooks build on:
        :meth:`_on_session_result` fires for every (incomplete session,
        party-with-result) pair — the subclass's per-result side effect,
        e.g. the simulator's output-time stamping — then the party is
        discarded from the session's waiting set, and a session whose
        waiting set empties is moved out of ``_sessions_incomplete``.
        """
        incomplete = self._sessions_incomplete
        if not incomplete:
            return []
        done: list[int] = []
        index = party.index
        for session in incomplete:
            if not party.session_has_result(session):
                continue
            self._on_session_result(session, party)
            waiting = self._session_waiting[session]
            if index in waiting:
                waiting.discard(index)
                if not waiting:
                    done.append(session)
        if done:
            incomplete.difference_update(done)
            for session in done:
                del self._session_waiting[session]
        return done

    def _on_session_result(self, session: int, party: Party) -> None:
        """Per-(session, party-with-result) side-effect hook.

        Called on every progress note while the session is incomplete —
        implementations must dedupe themselves (the simulator keys on
        ``party.index`` already being stamped).
        """

    def _flush_coalesced(self) -> None:
        """Hand the coalescing buffer to the transport as one batch."""
        if not self._outgoing:
            return
        batch = self._outgoing
        self._outgoing = []
        self._transmit_coalesced(batch)

    def _frame(self, envelope: Envelope) -> bytes:
        """The envelope's wire frame: length prefix + codec bytes."""
        body = codec.encode_envelope(envelope)
        if len(body) > MAX_FRAME_BYTES:
            raise codec.CodecError(
                f"envelope frame of {len(body)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte wire bound"
            )
        return len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body

    def _measured_bytes(self, envelope: Envelope, forged: bool) -> Optional[int]:
        """Observational byte metric for in-process transports.

        Returns ``None`` when metering is off — or for a Byzantine-forged
        payload the codec cannot size (words are still metered; execution
        is identical either way).  Honest unencodable payloads still fail
        loudly so a missing codec registration is caught before the code
        ever meets a real wire.
        """
        if not self.measure_bytes:
            return None
        try:
            return FRAME_HEADER_BYTES + codec.encoded_size(envelope)
        except codec.CodecError:
            if not forged:
                raise
            return None

    # -- subclass hooks ----------------------------------------------------------------

    def _transmit(self, envelope: Envelope, frame: Optional[bytes]) -> bool:
        """Put one network envelope in flight (subclass-specific).

        ``frame`` is the pre-built wire frame when ``frames_on_wire`` or
        byte metering require one, else ``None``.  Returns False when the
        transport could not carry the envelope (counted as a dropped
        send, not metered).
        """
        raise NotImplementedError

    def _can_transmit(self, envelope: Envelope) -> bool:
        """Batched-plane routability check, applied *before* metering.

        Mirrors the unbatched plane's "``_transmit`` returned False"
        semantics (dropped send, never metered) for envelopes that the
        transport could not possibly carry — e.g. a forged sender/
        recipient pair with no TCP connection.
        """
        return True

    def _transmit_coalesced(
        self, batch: list[tuple[Envelope, Optional[int], Any]]
    ) -> None:
        """Put one creation-ordered batch of metered envelopes in flight.

        The default falls back to per-envelope :meth:`_transmit` (frame
        accounting then records occupancy-1 frames), so a minimal
        subclass only ever implements ``_transmit``.
        """
        for envelope, nbytes, _delay in batch:
            frame = self._frame(envelope) if self.frames_on_wire else None
            if self._transmit(envelope, frame):
                self.metrics.record_frame(1, nbytes)

    def _batch_frame(self, envelopes: list[Envelope]) -> bytes:
        """One coalesced wire frame: length prefix + batch frame body."""
        body = codec.encode_batch(envelopes)
        if len(body) > MAX_FRAME_BYTES:
            raise codec.CodecError(
                f"batch frame of {len(body)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte wire bound"
            )
        return len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body

    def _note_progress(self, party: Party) -> None:
        """Called after a party processed events (done-detection hook)."""


class RealtimeTransport(Transport):
    """Shared machinery for runtimes hosted on a live asyncio event loop.

    Subclasses implement :meth:`Transport._transmit`; delivery must call
    :meth:`Transport._deliver_envelope` from the event loop.  Two usage
    shapes:

    * one-shot — :meth:`run` starts session 0 at every party, waits until
      all honest parties produced output (or raises
      :class:`asyncio.TimeoutError`) and returns the honest results;
    * long-lived — :meth:`open` the network once, inject sessions with
      :meth:`Transport.start` / :meth:`Transport.start_session` while
      traffic is flowing, await each session's own completion future via
      :meth:`wait_session`, and :meth:`close` at the end.  This is what
      the epoch-pipelining service layer drives.
    """

    def __init__(
        self,
        setup: Optional[TrustedSetup],
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        *,
        rng_namespace: str = "realtime",
        measure_bytes: bool = False,
        batching: bool = True,
        workers: int = 0,
        chaos: Any = None,
        shards: Any = None,
    ) -> None:
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace=rng_namespace,
            measure_bytes=measure_bytes,
            batching=batching,
            workers=workers,
            chaos=chaos,
            shards=shards,
        )
        #: Pending ``call_soon`` handle for the deferred coalescing-buffer
        #: drain (see :meth:`_flush_coalesced`), or ``None``.
        self._flush_handle: Optional[asyncio.Handle] = None
        self._tasks: set[asyncio.Task] = set()
        self._session_events: dict[int, asyncio.Event] = {}
        #: Event-loop time at which each session reached all-honest
        #: completion — the *actual* completion instant, which for
        #: pipelined sessions awaited out of order can be earlier than
        #: the moment a waiter observes it.
        self.session_completion_times: dict[int, float] = {}
        self._failure: Optional[BaseException] = None
        self._opened = False
        #: Event-loop time of the first chaos-clock reading; chaos
        #: windows on realtime transports are seconds since then.
        self._chaos_epoch: Optional[float] = None

    # -- per-session completion --------------------------------------------------------

    def _session_event(self, session: int) -> asyncio.Event:
        """The session's completion future (created on demand).

        The event also fires on a background-task failure so waiters wake
        up to re-raise instead of idling into their timeout.
        """
        event = self._session_events.get(session)
        if event is None:
            event = asyncio.Event()
            self._session_events[session] = event
            if self._failure is not None or self.all_honest_output(session):
                event.set()
        return event

    async def wait_session(
        self, session: int, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Await one session's completion; returns its honest results.

        Raises :class:`asyncio.TimeoutError` if the session does not
        complete in time, or the underlying failure if a background task
        died before the session could complete.
        """
        event = self._session_event(session)
        await asyncio.wait_for(event.wait(), timeout=timeout)
        if self._failure is not None and not self.all_honest_output(session):
            raise self._failure
        return self.honest_results(session)

    # -- lifecycle ---------------------------------------------------------------------

    async def open(self) -> None:
        """Bring up transport resources; idempotent."""
        if not self._opened:
            await self._open()
            self._opened = True
            if self._chaos_epoch is None:
                self._chaos_epoch = asyncio.get_running_loop().time()

    async def close(self) -> None:
        """Cancel in-flight work and tear down transport resources."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        Transport._flush_coalesced(self)  # drain anything still parked
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        await self._close()
        self._opened = False

    async def run(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Start every party (session 0); return honest outputs.

        ``timeout`` budgets transport setup (``_open``) *and* the wait
        for agreement together; only the synchronous per-party dealing in
        ``start()`` is outside it (CPU-bound crypto is not preemptible).
        An exception escaping any background task (a protocol handler
        bug, a codec error on the send path, ...) aborts the run and is
        re-raised here instead of surfacing as an opaque timeout.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        try:
            # open() and start() sit inside the one cleanup scope: a
            # partial open (one of n*(n-1) connections refused) or a
            # loudly-failing start (honest unencodable payload) must
            # still cancel every already-spawned task and close sockets.
            await asyncio.wait_for(self.open(), timeout=timeout)
            self.start(root_factory)
            event = self._session_event(0)
            if not event.is_set():
                remaining = max(0.001, deadline - loop.time())
                await asyncio.wait_for(event.wait(), timeout=remaining)
        finally:
            await self.close()
        # A failure recorded during post-success teardown (e.g. a pump hit
        # a reset from a peer already shutting down) does not invalidate a
        # run whose honest parties all produced output.
        if self._failure is not None and not self.all_honest_output():
            raise self._failure
        return self.honest_results()

    def run_sync(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Blocking wrapper over :meth:`run` (needs no running event loop)."""
        return asyncio.run(self.run(root_factory, timeout=timeout))

    def _spawn(self, coro) -> asyncio.Task:
        """Track a background task for cancellation and error propagation."""
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._on_task_done)
        return task

    def _on_task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None and self._failure is None:
            self._failure = exc
            for event in self._session_events.values():
                event.set()  # wake every waiter so it can re-raise

    def _flush_coalesced(self) -> None:
        """Drain the coalescing buffer at the end of the loop iteration.

        On a live event loop, activations of different parties interleave
        — the base class's flush-per-activation therefore produced
        near-empty frames (mean occupancy ~1.1 on TCP at n=6 versus ~224
        on the simulator).  Deferring the drain one ``call_soon`` hop
        gives every activation scheduled in the same loop iteration a
        chance to park its sends first, and one drain then coalesces the
        lot: flush on writer-drain, not per-activation.  A buffer at the
        envelope cap is still flushed immediately, and callers outside a
        running loop (e.g. ``start()`` in a synchronous test) fall back
        to the immediate drain.
        """
        if not self._outgoing:
            return
        if len(self._outgoing) >= self.batch_cap_envelopes:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
            super()._flush_coalesced()
            return
        if self._flush_handle is not None:
            return  # drain already scheduled for this iteration
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            super()._flush_coalesced()
            return
        self._flush_handle = loop.call_soon(self._drain_coalesced)

    def _drain_coalesced(self) -> None:
        self._flush_handle = None
        super()._flush_coalesced()

    def _note_progress(self, party: Party) -> None:
        for session in self._note_progress_sessions(party):
            self._stamp_completion(session)
            event = self._session_events.get(session)
            if event is not None:
                # Absent events are fine: _session_event() re-checks
                # completion when a waiter first creates one.
                event.set()

    def _stamp_completion(self, session: int) -> None:
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:  # outside the loop (e.g. a test calling start())
            return
        self.session_completion_times.setdefault(session, now)

    # -- chaos hooks -------------------------------------------------------------------

    def _chaos_now(self) -> float:
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:  # outside the loop: treat as the run's start
            return 0.0
        if self._chaos_epoch is None:
            self._chaos_epoch = now
        return now - self._chaos_epoch

    def _chaos_requeue(self, envelope: Envelope, delay: float) -> None:
        self._spawn(self._chaos_redeliver(envelope, delay))

    async def _chaos_redeliver(self, envelope: Envelope, delay: float) -> None:
        await asyncio.sleep(delay)
        self._deliver_envelope(envelope)

    # -- subclass hooks ----------------------------------------------------------------

    async def _open(self) -> None:
        """Bring up transport resources (sockets, ...) before parties start."""

    async def _close(self) -> None:
        """Tear down transport resources after the run finished."""


def make_transport(
    kind: str,
    setup: Optional[TrustedSetup],
    *,
    behaviors: Optional[dict[int, Behavior]] = None,
    seed: int = 0,
    **kwargs: Any,
) -> Transport:
    """Build a transport by name: ``"sim"``, ``"asyncio"`` or ``"tcp"``.

    Extra keyword arguments are forwarded to the selected runtime
    (e.g. ``delay_model=``/``scheduler=`` for ``sim``, ``max_delay=`` for
    ``asyncio``, ``host=`` for ``tcp``).  Sharded deployments pass
    ``setup=None`` with ``shards=[ShardGroup, ...]`` (see
    :mod:`repro.service.shards`).
    """
    if kind == "sim":
        from repro.net.runtime import Simulation

        return Simulation(setup, behaviors=behaviors, seed=seed, **kwargs)
    if kind == "asyncio":
        from repro.net.asyncio_runtime import AsyncioRuntime

        return AsyncioRuntime(setup, behaviors=behaviors, seed=seed, **kwargs)
    if kind == "tcp":
        from repro.net.tcp_runtime import TCPRuntime

        return TCPRuntime(setup, behaviors=behaviors, seed=seed, **kwargs)
    raise ValueError(
        f"unknown transport kind {kind!r}; choose from {TRANSPORT_KINDS}"
    )
