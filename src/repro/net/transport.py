"""The pluggable Transport abstraction shared by every runtime.

Historically the deterministic simulator and the asyncio runtime each
carried their own copy of the delivery pipeline; this module extracts it.
A :class:`Transport` owns the parties and the metrics and implements the
one pipeline every runtime shares:

* **outbox draining** (:meth:`Transport._flush_party`) — self-addressed
  envelopes are delivered inline (local computation: no words, no bytes,
  no delay), network envelopes pass through the sender's Byzantine
  :class:`~repro.net.adversary.Behavior` transform, are metered (words
  always, codec bytes when ``measure_bytes`` is on) and handed to the
  subclass's :meth:`Transport._transmit`;
* **delivery** (:meth:`Transport._deliver_envelope`) — the recipient's
  behavior may swallow the message, otherwise the delivery is recorded,
  routed into the party's protocol stack, the resulting outbox flushed,
  and :meth:`Transport._note_progress` (done-detection hook) runs.

Subclasses provide only *when and how* a transmitted envelope reaches
:meth:`_deliver_envelope`:

* :class:`~repro.net.runtime.Simulation` — a priority queue of simulated
  delivery times (discrete-event, deterministic);
* :class:`~repro.net.asyncio_runtime.AsyncioRuntime` — an asyncio task
  per envelope with a real randomized sleep;
* :class:`~repro.net.tcp_runtime.TCPRuntime` — codec-encoded frames over
  real TCP stream connections.

:func:`make_transport` is the single name-based injection point the CLI,
the examples and the benchmarks use.
"""

from __future__ import annotations

import asyncio
import random
from collections import Counter as _Counter
from typing import Any, Callable, Optional

from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import Behavior
from repro.net.envelope import Envelope
from repro.net.metrics import Metrics
from repro.net.party import Party
from repro.net.protocol import Protocol

RootFactory = Callable[[Party], Protocol]

TRANSPORT_KINDS = ("sim", "asyncio", "tcp")

#: Bytes of transport framing per message (length-prefix the TCP runtime
#: writes before each codec frame); counted for every transport so byte
#: totals are comparable across them.
FRAME_HEADER_BYTES = 4

#: Upper bound on one frame, enforced symmetrically: the sender refuses
#: to build a larger frame (honest: loud CodecError; forged: dropped),
#: and the TCP receiver treats a larger length prefix as an attack.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class Transport:
    """Base class: parties, adversary, metrics and the delivery pipeline."""

    #: Subclasses that put codec frames on a real wire set this True; the
    #: pipeline then builds each frame exactly once, up front, and passes
    #: it to :meth:`_transmit`.
    frames_on_wire = False

    def __init__(
        self,
        setup: TrustedSetup,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        *,
        rng_namespace: str = "transport",
        measure_bytes: bool = False,
    ) -> None:
        directory = setup.directory
        self.setup = setup
        self.n = directory.n
        self.f = directory.f
        self.behaviors = dict(behaviors or {})
        if len(self.behaviors) > self.f:
            raise ValueError(
                f"cannot corrupt {len(self.behaviors)} parties with f={self.f}"
            )
        self.measure_bytes = measure_bytes
        self.metrics = Metrics()
        self._bind_work_counters(directory)
        self.dropped_sends = 0
        self.seed = seed
        self._adv_rng = random.Random(f"{rng_namespace}-adv-{seed}")
        #: Session ids whose roots have been installed on this network,
        #: and the subset still awaiting all-honest completion (progress
        #: notes scan only the latter, so a service running thousands of
        #: epochs pays O(window), not O(history), per delivery).
        self._sessions_started: set[int] = set()
        self._sessions_incomplete: set[int] = set()
        # Party RNG streams are namespace-independent so that the same
        # (seed, index) deals identical PVSS contributions on every
        # transport — the cross-transport equivalence tests rely on it.
        # The same string doubles as the per-session RNG derivation label,
        # making session ``s`` transport- and interleaving-independent too.
        self.parties = [
            Party(
                index=i,
                n=self.n,
                f=self.f,
                rng=random.Random(f"party-{seed}-{i}"),
                directory=directory,
                secret=setup.secret(i),
                rng_label=f"party-{seed}-{i}",
            )
            for i in range(self.n)
        ]

    def _bind_work_counters(self, directory: Any) -> None:
        """Expose hot-path work counters as deltas over this run.

        ``verify`` reads the directory's per-run verification cache
        (misses = distinct values actually verified), ``encode`` the
        codec's payload encode-once memo, ``pairing`` the simulated
        group's pairing-operation count.  All are metered as growth since
        transport construction, so two transports over fresh setups are
        directly comparable.
        """
        from repro.net.metrics import counter_delta

        verify_stats = directory.verify_cache.stats
        verify_base = _Counter(verify_stats)
        encode_base = _Counter(codec.encode_stats)
        pair_group = directory.pair_group
        pair_base = pair_group.pair_calls
        self.metrics.attach_counters(
            "verify", lambda: counter_delta(verify_stats, verify_base)
        )
        self.metrics.attach_counters(
            "encode", lambda: counter_delta(codec.encode_stats, encode_base)
        )
        self.metrics.attach_counters(
            "pairing", lambda: {"pair_calls": pair_group.pair_calls - pair_base}
        )
        self.metrics.attach_counters("pending", self._pending_counters)

    def _pending_counters(self) -> dict:
        """Session-buffer accounting aggregated over all parties.

        ``dropped``/``stale`` come from the parties' bounded pending
        buffers (see :class:`~repro.net.party.Party`); ``buffered`` is a
        live gauge of payloads currently parked for unspawned paths.
        """
        totals = _Counter()
        buffered = 0
        for party in self.parties:
            totals.update(party.drop_stats)
            buffered += party.pending_messages()
        counters = {key.split("pending.", 1)[-1]: value for key, value in totals.items()}
        if buffered:
            counters["buffered"] = buffered
        return counters

    # -- membership --------------------------------------------------------------------

    @property
    def corrupt(self) -> frozenset[int]:
        return frozenset(self.behaviors)

    @property
    def honest(self) -> frozenset[int]:
        # Memoized: the corruption set is fixed at construction and this
        # is consulted on every delivery (done-detection).
        cached = getattr(self, "_honest_cache", None)
        if cached is None:
            cached = frozenset(range(self.n)) - self.corrupt
            self._honest_cache = cached
        return cached

    # -- lifecycle ---------------------------------------------------------------------

    def start(self, root_factory: RootFactory, session: int = 0) -> None:
        """Install a session's root at every party and flush initial sends.

        May be called repeatedly with distinct session ids — including on
        a network that is already carrying traffic — so long-lived
        deployments can inject new root protocol runs (e.g. the next DKG
        epoch) without tearing the transport down.
        """
        if session in self._sessions_started:
            raise RuntimeError(f"session {session} already started")
        self._sessions_started.add(session)
        self._sessions_incomplete.add(session)
        for party in self.parties:
            party.run_root(root_factory(party), session=session)
            party.sweep_conditions()
        for party in self.parties:
            self._flush_party(party)
            self._note_progress(party)

    def start_session(self, session: int, root_factory: RootFactory) -> None:
        """Alias of :meth:`start` with the session id leading (service layer)."""
        self.start(root_factory, session=session)

    @property
    def sessions_started(self) -> frozenset[int]:
        return frozenset(self._sessions_started)

    def collect_session(self, session: int) -> None:
        """Garbage-collect a completed session's state at every party."""
        for party in self.parties:
            party.collect_session(session)

    def run_sync(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Run the protocol to all-honest-output and return honest results.

        The uniform blocking entry point: callers of :func:`make_transport`
        can drive any transport without knowing whether it is simulated or
        realtime.
        """
        raise NotImplementedError

    def round_measure(self) -> float:
        """The transport's asynchronous-round measure for a finished run.

        Realtime transports report the maximum causal depth; the
        simulator overrides this with simulated time (which equals the
        causal-chain length under ``FixedDelay``).
        """
        return float(self.metrics.max_depth)

    # -- results -----------------------------------------------------------------------

    def honest_results(self, session: int = 0) -> dict[int, Any]:
        return {
            i: self.parties[i].session_result(session)
            for i in sorted(self.honest)
            if self.parties[i].session_has_result(session)
        }

    def all_honest_output(self, session: int = 0) -> bool:
        return all(
            self.parties[i].session_has_result(session) for i in self.honest
        )

    def session_complete(self, session: int) -> bool:
        """True once every honest party produced the session's result."""
        return self.all_honest_output(session)

    # -- the shared pipeline -----------------------------------------------------------

    def _flush_party(self, party: Party) -> None:
        """Drain a party's outbox, applying behaviours, metering, transmitting."""
        pending = party.collect_outbox()
        while pending:
            envelope = pending.pop(0)
            if envelope.recipient == envelope.sender:
                # Local delivery: immediate, free, not subject to the
                # outgoing Byzantine filter (it never hits the network).
                self.metrics.record_delivery(envelope)
                party.deliver(envelope)
                pending.extend(party.collect_outbox())
                continue
            behavior = self.behaviors.get(envelope.sender)
            outgoing = (
                behavior.transform_outgoing(envelope, self._adv_rng)
                if behavior is not None
                else [envelope]
            )
            for env in outgoing:
                # Carryability is a property of the wire, never of the
                # metering flag: byte-metering an in-process transport must
                # not change which messages arrive.
                frame = None
                if self.frames_on_wire:
                    try:
                        frame = self._frame(env)
                    except codec.CodecError:
                        if behavior is None:
                            # An honest party produced an unencodable
                            # payload: a programming error, fail loudly.
                            raise
                        # A Byzantine transform forged garbage the codec
                        # cannot carry — the wire drops it *before*
                        # transmission; honest parties live on.
                        self.dropped_sends += 1
                        continue
                if not self._transmit(env, frame):
                    self.dropped_sends += 1
                    continue
                nbytes = (
                    len(frame)
                    if frame is not None
                    else self._measured_bytes(env, forged=behavior is not None)
                )
                self.metrics.record_send(env, nbytes=nbytes)

    def _deliver_envelope(self, envelope: Envelope) -> bool:
        """Deliver one in-flight envelope; False if the adversary ate it."""
        behavior = self.behaviors.get(envelope.recipient)
        if behavior is not None and not behavior.allow_delivery(
            envelope, self._adv_rng
        ):
            return False
        self.metrics.record_delivery(envelope)
        recipient = self.parties[envelope.recipient]
        recipient.deliver(envelope)
        self._flush_party(recipient)
        self._note_progress(recipient)
        return True

    def _frame(self, envelope: Envelope) -> bytes:
        """The envelope's wire frame: length prefix + codec bytes."""
        body = codec.encode_envelope(envelope)
        if len(body) > MAX_FRAME_BYTES:
            raise codec.CodecError(
                f"envelope frame of {len(body)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte wire bound"
            )
        return len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body

    def _measured_bytes(self, envelope: Envelope, forged: bool) -> Optional[int]:
        """Observational byte metric for in-process transports.

        Returns ``None`` when metering is off — or for a Byzantine-forged
        payload the codec cannot size (words are still metered; execution
        is identical either way).  Honest unencodable payloads still fail
        loudly so a missing codec registration is caught before the code
        ever meets a real wire.
        """
        if not self.measure_bytes:
            return None
        try:
            return FRAME_HEADER_BYTES + codec.encoded_size(envelope)
        except codec.CodecError:
            if not forged:
                raise
            return None

    # -- subclass hooks ----------------------------------------------------------------

    def _transmit(self, envelope: Envelope, frame: Optional[bytes]) -> bool:
        """Put one network envelope in flight (subclass-specific).

        ``frame`` is the pre-built wire frame when ``frames_on_wire`` or
        byte metering require one, else ``None``.  Returns False when the
        transport could not carry the envelope (counted as a dropped
        send, not metered).
        """
        raise NotImplementedError

    def _note_progress(self, party: Party) -> None:
        """Called after a party processed events (done-detection hook)."""


class RealtimeTransport(Transport):
    """Shared machinery for runtimes hosted on a live asyncio event loop.

    Subclasses implement :meth:`Transport._transmit`; delivery must call
    :meth:`Transport._deliver_envelope` from the event loop.  Two usage
    shapes:

    * one-shot — :meth:`run` starts session 0 at every party, waits until
      all honest parties produced output (or raises
      :class:`asyncio.TimeoutError`) and returns the honest results;
    * long-lived — :meth:`open` the network once, inject sessions with
      :meth:`Transport.start` / :meth:`Transport.start_session` while
      traffic is flowing, await each session's own completion future via
      :meth:`wait_session`, and :meth:`close` at the end.  This is what
      the epoch-pipelining service layer drives.
    """

    def __init__(
        self,
        setup: TrustedSetup,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        *,
        rng_namespace: str = "realtime",
        measure_bytes: bool = False,
    ) -> None:
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace=rng_namespace,
            measure_bytes=measure_bytes,
        )
        self._tasks: set[asyncio.Task] = set()
        self._session_events: dict[int, asyncio.Event] = {}
        #: Event-loop time at which each session reached all-honest
        #: completion — the *actual* completion instant, which for
        #: pipelined sessions awaited out of order can be earlier than
        #: the moment a waiter observes it.
        self.session_completion_times: dict[int, float] = {}
        self._failure: Optional[BaseException] = None
        self._opened = False

    # -- per-session completion --------------------------------------------------------

    def _session_event(self, session: int) -> asyncio.Event:
        """The session's completion future (created on demand).

        The event also fires on a background-task failure so waiters wake
        up to re-raise instead of idling into their timeout.
        """
        event = self._session_events.get(session)
        if event is None:
            event = asyncio.Event()
            self._session_events[session] = event
            if self._failure is not None or self.all_honest_output(session):
                event.set()
        return event

    async def wait_session(
        self, session: int, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Await one session's completion; returns its honest results.

        Raises :class:`asyncio.TimeoutError` if the session does not
        complete in time, or the underlying failure if a background task
        died before the session could complete.
        """
        event = self._session_event(session)
        await asyncio.wait_for(event.wait(), timeout=timeout)
        if self._failure is not None and not self.all_honest_output(session):
            raise self._failure
        return self.honest_results(session)

    # -- lifecycle ---------------------------------------------------------------------

    async def open(self) -> None:
        """Bring up transport resources; idempotent."""
        if not self._opened:
            await self._open()
            self._opened = True

    async def close(self) -> None:
        """Cancel in-flight work and tear down transport resources."""
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        await self._close()
        self._opened = False

    async def run(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Start every party (session 0); return honest outputs.

        ``timeout`` budgets transport setup (``_open``) *and* the wait
        for agreement together; only the synchronous per-party dealing in
        ``start()`` is outside it (CPU-bound crypto is not preemptible).
        An exception escaping any background task (a protocol handler
        bug, a codec error on the send path, ...) aborts the run and is
        re-raised here instead of surfacing as an opaque timeout.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        try:
            # open() and start() sit inside the one cleanup scope: a
            # partial open (one of n*(n-1) connections refused) or a
            # loudly-failing start (honest unencodable payload) must
            # still cancel every already-spawned task and close sockets.
            await asyncio.wait_for(self.open(), timeout=timeout)
            self.start(root_factory)
            event = self._session_event(0)
            if not event.is_set():
                remaining = max(0.001, deadline - loop.time())
                await asyncio.wait_for(event.wait(), timeout=remaining)
        finally:
            await self.close()
        # A failure recorded during post-success teardown (e.g. a pump hit
        # a reset from a peer already shutting down) does not invalidate a
        # run whose honest parties all produced output.
        if self._failure is not None and not self.all_honest_output():
            raise self._failure
        return self.honest_results()

    def run_sync(
        self, root_factory: RootFactory, timeout: float = 60.0
    ) -> dict[int, Any]:
        """Blocking wrapper over :meth:`run` (needs no running event loop)."""
        return asyncio.run(self.run(root_factory, timeout=timeout))

    def _spawn(self, coro) -> asyncio.Task:
        """Track a background task for cancellation and error propagation."""
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._on_task_done)
        return task

    def _on_task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None and self._failure is None:
            self._failure = exc
            for event in self._session_events.values():
                event.set()  # wake every waiter so it can re-raise

    def _note_progress(self, party: Party) -> None:
        done = []
        for session in self._sessions_incomplete:
            if not self.all_honest_output(session):
                continue
            self._stamp_completion(session)
            event = self._session_events.get(session)
            if event is not None:
                # Absent events are fine: _session_event() re-checks
                # completion when a waiter first creates one.
                event.set()
            done.append(session)
        self._sessions_incomplete.difference_update(done)

    def _stamp_completion(self, session: int) -> None:
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:  # outside the loop (e.g. a test calling start())
            return
        self.session_completion_times.setdefault(session, now)

    # -- subclass hooks ----------------------------------------------------------------

    async def _open(self) -> None:
        """Bring up transport resources (sockets, ...) before parties start."""

    async def _close(self) -> None:
        """Tear down transport resources after the run finished."""


def make_transport(
    kind: str,
    setup: TrustedSetup,
    *,
    behaviors: Optional[dict[int, Behavior]] = None,
    seed: int = 0,
    **kwargs: Any,
) -> Transport:
    """Build a transport by name: ``"sim"``, ``"asyncio"`` or ``"tcp"``.

    Extra keyword arguments are forwarded to the selected runtime
    (e.g. ``delay_model=``/``scheduler=`` for ``sim``, ``max_delay=`` for
    ``asyncio``, ``host=`` for ``tcp``).
    """
    if kind == "sim":
        from repro.net.runtime import Simulation

        return Simulation(setup, behaviors=behaviors, seed=seed, **kwargs)
    if kind == "asyncio":
        from repro.net.asyncio_runtime import AsyncioRuntime

        return AsyncioRuntime(setup, behaviors=behaviors, seed=seed, **kwargs)
    if kind == "tcp":
        from repro.net.tcp_runtime import TCPRuntime

        return TCPRuntime(setup, behaviors=behaviors, seed=seed, **kwargs)
    raise ValueError(
        f"unknown transport kind {kind!r}; choose from {TRANSPORT_KINDS}"
    )
