"""Reactive conditions: the paper's "upon <predicate>, do <action>" clauses.

Asynchronous protocol pseudocode is full of guards that must fire as soon
as the local state starts satisfying them — possibly long after the
triggering message arrived (e.g. Gather's "upon S_j ⊆ S_i").  A
:class:`ConditionRegistry` holds pending ``(predicate, action)`` pairs and
re-evaluates them to fixpoint after every delivered event.

:class:`Completion` is the future-like handle returned by verification
protocols (``GatherVerify``, ``PEVerify``): it resolves at most once and
runs callbacks registered before or after resolution.
"""

from __future__ import annotations

from typing import Any, Callable


class Completion:
    """A write-once future resolved by a condition."""

    __slots__ = ("_done", "_value", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise RuntimeError("completion not resolved yet")
        return self._value

    def resolve(self, value: Any = None) -> None:
        if self._done:
            return
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def on_done(self, callback: Callable[[Any], None]) -> None:
        if self._done:
            callback(self._value)
        else:
            self._callbacks.append(callback)


class Condition:
    """One pending "upon" clause."""

    __slots__ = ("predicate", "action", "once", "active", "label")

    def __init__(
        self,
        predicate: Callable[[], bool],
        action: Callable[[], None],
        once: bool,
        label: str,
    ) -> None:
        self.predicate = predicate
        self.action = action
        self.once = once
        self.active = True
        self.label = label

    def cancel(self) -> None:
        self.active = False


class ConditionRegistry:
    """All pending conditions of one party, re-checked to fixpoint."""

    def __init__(self) -> None:
        self._conditions: list[Condition] = []

    def add(
        self,
        predicate: Callable[[], bool],
        action: Callable[[], None],
        once: bool = True,
        label: str = "",
    ) -> Condition:
        condition = Condition(predicate, action, once, label)
        self._conditions.append(condition)
        return condition

    def pending_count(self) -> int:
        return sum(1 for condition in self._conditions if condition.active)

    def run_to_fixpoint(self, max_rounds: int = 10_000) -> None:
        """Fire every satisfied condition until nothing changes.

        Actions may register new conditions or change state that satisfies
        other conditions; the loop keeps sweeping until a full pass fires
        nothing.  ``max_rounds`` guards against a pathological livelock.

        This runs once per delivered event, so the no-work pass is kept
        allocation-free: each pass visits exactly the conditions present
        when it started (actions only ever *append*, so indexing is
        stable — conditions registered mid-pass are picked up by the next
        pass, same as the historical snapshot semantics), and the list is
        rebuilt only when something actually deactivated.
        """
        conditions = self._conditions
        if not conditions:
            return
        for _ in range(max_rounds):
            fired = False
            deactivated = False
            for index in range(len(conditions)):
                condition = conditions[index]
                if not condition.active:
                    deactivated = True
                    continue
                try:
                    ready = condition.predicate()
                except Exception as exc:  # predicate bugs must not be silent
                    raise RuntimeError(
                        f"condition predicate {condition.label!r} raised"
                    ) from exc
                if not ready:
                    continue
                if condition.once:
                    condition.active = False
                    deactivated = True
                condition.action()
                fired = True
            if deactivated:
                self._conditions = conditions = [
                    c for c in conditions if c.active
                ]
            if not fired:
                return
        raise RuntimeError("condition registry did not reach a fixpoint")
