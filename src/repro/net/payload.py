"""Message payloads and word-size accounting.

The paper measures communication in *words*: a word holds a constant
number of values or cryptographic objects (Section 1, Section 7).  Every
payload type implements ``word_size``; :func:`words_of` computes the word
size of arbitrary nested protocol values with the accounting rules of
DESIGN.md (scalars, indices, digests, group elements, signatures: one word
each).
"""

from __future__ import annotations

from typing import Any


class Payload:
    """Base class for protocol messages.

    Subclasses are frozen dataclasses.  ``word_size`` defaults to the
    structural size of all fields; override it when a message references
    values by index rather than by value (the Gather optimization).
    """

    def word_size(self) -> int:
        fields = getattr(self, "__dataclass_fields__", None)
        if fields is None:
            raise TypeError(f"{type(self).__name__} must be a dataclass")
        return max(1, sum(words_of(getattr(self, name)) for name in fields))

    def type_name(self) -> str:
        return type(self).__name__

    def verify_tasks(self, directory: Any) -> tuple:
        """``(domain, parts)`` verification tasks this payload will trigger.

        The speculative pre-verification plane (DESIGN §10) asks every
        payload of a just-arrived frame for the checks the protocol is
        about to run on it, and submits them to the process pool before
        the state machine activates.  The default is "nothing to
        pre-verify"; payload types carrying heavyweight proofs override
        it.  Purely advisory: a wrong or missing answer costs speculation
        efficiency, never correctness — the protocol's own check remains
        the authority.
        """
        return ()


def words_of(value: Any) -> int:
    """Word size of a nested protocol value.

    Containers cost the sum of their items; scalars cost one word; ``None``
    and booleans are flags folded into their message (zero words).
    """
    if value is None or isinstance(value, bool):
        return 0
    if isinstance(value, int):
        return 1
    if isinstance(value, str):
        return 1
    if isinstance(value, bytes):
        # Digests and short byte strings are one word per 32 bytes.
        return max(1, (len(value) + 31) // 32)
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(words_of(item) for item in value)
    if isinstance(value, dict):
        return sum(words_of(k) + words_of(v) for k, v in value.items())
    sizer = getattr(value, "word_size", None)
    if callable(sizer):
        return sizer()
    raise TypeError(f"cannot size value of type {type(value)!r} in words")
