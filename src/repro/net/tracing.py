"""Structured execution traces for protocol debugging and analysis.

A :class:`Tracer` hooks a :class:`~repro.net.runtime.Simulation` and
records every network delivery as a structured event (time, sender,
recipient, instance path, payload type, depth, words).  Traces answer the
questions protocol debugging actually asks — "when did party 2's PE start
emitting eval shares?", "which message triggered the view change?" —
without printf-ing the protocol code.

The tracer registers itself as one of the transport's *delivery
observers*
(:meth:`~repro.net.transport.Transport.add_delivery_observer`), which
fire once per successfully delivered network envelope.  This observes
the bulk-delivery engine directly — no queue snapshots, no per-step
diffing — so tracing costs O(1) per delivery regardless of how many
envelopes share a heap entry on the batched plane, and several tracers
can watch one simulation concurrently.

Filters keep traces small; ``timeline`` and ``summary`` render them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.net.envelope import Envelope
from repro.net.runtime import Simulation


@dataclass(frozen=True)
class TraceEvent:
    time: float
    step: int
    sender: int
    recipient: int
    path: tuple
    payload_type: str
    words: int
    depth: int

    def render(self) -> str:
        path = "/".join(str(part) for part in self.path) or "(root)"
        return (
            f"t={self.time:8.2f} #{self.step:<6} {self.sender}->{self.recipient} "
            f"{path:40s} {self.payload_type:16s} w={self.words:<4} d={self.depth}"
        )


class Tracer:
    """Record simulation deliveries as structured events."""

    def __init__(
        self,
        simulation: Simulation,
        predicate: Optional[Callable[[Envelope], bool]] = None,
        capacity: int = 1_000_000,
    ) -> None:
        self.simulation = simulation
        self.predicate = predicate or (lambda envelope: True)
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        simulation.add_delivery_observer(self._on_delivery)

    def _on_delivery(self, envelope: Envelope) -> None:
        if len(self.events) >= self.capacity or not self.predicate(envelope):
            return
        self.events.append(
            TraceEvent(
                time=self.simulation.time,
                step=self.simulation.steps,
                sender=envelope.sender,
                recipient=envelope.recipient,
                path=envelope.path,
                payload_type=envelope.payload.type_name(),
                words=envelope.word_size(),
                depth=envelope.depth,
            )
        )

    def detach(self) -> None:
        """Stop observing (the trace keeps its recorded events)."""
        self.simulation.remove_delivery_observer(self._on_delivery)

    # -- queries ---------------------------------------------------------------------

    def for_party(self, party: int) -> list[TraceEvent]:
        return [e for e in self.events if e.recipient == party]

    def for_layer(self, layer: str) -> list[TraceEvent]:
        def in_layer(path: tuple) -> bool:
            for part in path:
                if part == layer:
                    return True
                if isinstance(part, tuple) and part and part[0] == layer:
                    return True
            return False

        return [e for e in self.events if in_layer(e.path)]

    def timeline(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        chosen = list(events) if events is not None else self.events
        return "\n".join(event.render() for event in chosen)

    def summary(self) -> dict:
        from collections import Counter

        by_type: Counter = Counter()
        for event in self.events:
            by_type[event.payload_type] += 1
        return {
            "events": len(self.events),
            "by_type": dict(by_type),
            "span": (
                (self.events[0].time, self.events[-1].time) if self.events else None
            ),
        }
