"""Network delay models.

The asynchronous model allows arbitrary finite delays; a delay model is
the *benign* part of the scheduler (the adversarial part lives in
:mod:`repro.net.adversary`).  All models draw from the simulation's seeded
RNG so runs are reproducible.
"""

from __future__ import annotations

import random


class DelayModel:
    """Interface: a delivery delay for each (sender, recipient, time)."""

    def delay(self, rng: random.Random, sender: int, recipient: int, time: float) -> float:
        raise NotImplementedError


class FixedDelay(DelayModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError("delay must be positive")
        self.value = value

    def delay(self, rng: random.Random, sender: int, recipient: int, time: float) -> float:
        return self.value


class UniformDelay(DelayModel):
    """Uniform in ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self.low = low
        self.high = high

    def delay(self, rng: random.Random, sender: int, recipient: int, time: float) -> float:
        return rng.uniform(self.low, self.high)


class ExponentialDelay(DelayModel):
    """Exponential with the given mean (memoryless network)."""

    def __init__(self, mean: float = 1.0, floor: float = 0.01) -> None:
        if mean <= 0 or floor < 0:
            raise ValueError("mean must be positive")
        self.mean = mean
        self.floor = floor

    def delay(self, rng: random.Random, sender: int, recipient: int, time: float) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)


class HeavyTailDelay(DelayModel):
    """Log-normal delays: mostly fast, occasionally very slow links.

    This is the regime the paper motivates (unstable Internet channels,
    Section 1): timeouts misfire here, event-driven protocols do not.
    """

    def __init__(self, median: float = 1.0, sigma: float = 1.0) -> None:
        if median <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        self.median = median
        self.sigma = sigma

    def delay(self, rng: random.Random, sender: int, recipient: int, time: float) -> float:
        return self.median * rng.lognormvariate(0.0, self.sigma)
