"""Registry-based byte codec for every value that crosses a transport.

The sans-io protocols exchange frozen dataclasses (payloads, certificates,
PVSS contributions, group elements, ...).  The simulator can pass them by
reference, but the TCP runtime — and the erasure-coded broadcast, which
genuinely fragments a byte string — need a real wire format.  This module
provides one without pickle: a deterministic tag-length-value encoding
with an explicit *type registry*.

Format
------
Every value is a one-byte tag followed by tag-specific content:

====  ==========================================================
0x00  ``None``
0x01  ``True``
0x02  ``False``
0x03  int — zigzag varint (arbitrary precision)
0x04  bytes — varint length + raw bytes
0x05  str — varint length + UTF-8 bytes
0x06  tuple — varint count + items
0x07  list — varint count + items
0x08  frozenset — varint count + items, sorted by encoded bytes
0x09  set — like frozenset
0x0A  dict — varint count + key/value pairs, sorted by encoded key
0x0B  float — 8 bytes IEEE-754 big-endian
0x10  registered struct — varint type id + varint field count + fields
====  ==========================================================

Structs are registered with :func:`register` under a stable numeric id
(the ids below are part of the wire format; never reuse one).  The field
count doubles as the struct's format version: the envelope accepts the
five-field pre-session encoding (decoding it as session 0) so mixed-era
peers interoperate; all other structs require an exact count.  A
registered dataclass is encoded as its fields in declaration order, so
``decode(encode(x)) == x`` for every registered type whose fields are
themselves encodable.  Sets and dicts are serialized in sorted-encoding
order, making ``encode`` deterministic: equal values produce equal bytes.

``decode`` is strict: unknown tags, unknown type ids, truncated buffers,
trailing bytes, invalid UTF-8 and field-count mismatches all raise
:class:`CodecError`.  This is the hardening ``broadcast/wire.py`` claims:
a Byzantine dealer's malformed bytes surface as a clean error (mapped to
"dealer faulty" upstream), never as attacker-controlled object
construction the way ``pickle.loads`` would allow.

Batch frames
------------
The batched message plane coalesces several envelopes into one wire
frame.  A batch frame body is versioned and self-describing::

    0xB5 (magic)  0x01 (version)
    uvarint k     k x (uvarint length + payload encoding)
    uvarint m     m x (uvarint payload-index +
                       tuple(path, sender, recipient, depth, session))

The payload table deduplicates *within* the frame: a multicast payload
carried by several envelopes of one frame is serialized once and
referenced by index.  ``0xB5`` can never open a single-envelope frame
(those always start with the struct tag ``0x10``), so
:func:`decode_batch` transparently accepts legacy single-envelope frames
and returns them as one-element batches — mixed-era peers interoperate.
:func:`encode_batch` of a single envelope likewise emits the legacy
single-envelope encoding.  Decoding is as strict as everywhere else:
bad magic/version, truncated tables, out-of-range payload indices,
blob-length mismatches, non-``Payload`` table entries, malformed headers
and trailing bytes all raise :class:`CodecError`.

See DESIGN.md sections 3 and 8 for how the codec slots into the
transport architecture and the batched message plane.
"""

from __future__ import annotations

import dataclasses
import struct as _struct
from collections import Counter
from typing import Any, Optional

from repro.crypto.verify_cache import IdentityMemo

__all__ = [
    "CodecError",
    "register",
    "registered_types",
    "encode",
    "decode",
    "encode_envelope",
    "decode_envelope",
    "encode_batch",
    "decode_batch",
    "encoded_size",
    "encoded_envelope_size",
    "encoded_batch_size",
    "encode_heartbeat",
    "is_heartbeat",
    "encode_stats",
]

#: First body byte of a multi-envelope batch frame.  Deliberately outside
#: the codec tag space: a legacy single-envelope frame always starts with
#: ``_TAG_STRUCT`` (0x10), so the two formats are distinguishable from
#: their first byte.
BATCH_MAGIC = 0xB5
#: Batch frame format version (second body byte).
BATCH_VERSION = 0x01

#: First body byte of a connection-liveness heartbeat frame (the TCP
#: runtime's idle keepalive).  Like :data:`BATCH_MAGIC` it sits outside
#: the codec tag space *and* differs from the batch magic, so the three
#: frame formats — heartbeat, batch, legacy single envelope — are
#: distinguishable from their first byte.
HEARTBEAT_MAGIC = 0xE7
#: Heartbeat frame format version (second body byte).
HEARTBEAT_VERSION = 0x01

#: Encode-once fan-out accounting: ``payload.calls`` counts every payload
#: struct encoding request, ``payload.hits`` the ones served from the
#: identity memo (a broadcast encodes its payload once, then reuses the
#: buffer for all n recipients), ``payload.misses`` the real encodings.
encode_stats: Counter = Counter()

# Payload bytes keyed by object identity (weakref-guarded).  Sound
# because payloads are frozen value dataclasses: a distinct (e.g.
# Byzantine-transformed) payload is a distinct object and never aliases a
# memoized buffer.  Process-wide is safe for the same reason — bytes are
# a pure function of the value.
_payload_memo = IdentityMemo()
_memoized_types: set[type] = set()

# Envelope instance-path encodings, keyed by the path value itself (paths
# are small hashable tuples and repeat for every message of an instance).
# Value-keyed is sound: the encoding is a pure function of the value.
_envelope_type: Optional[type] = None
_path_memo: dict[tuple, bytes] = {}
_PATH_MEMO_LIMIT = 8192


class CodecError(ValueError):
    """Raised when bytes cannot be decoded (or a value cannot be encoded)."""


_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_BYTES = 0x04
_TAG_STR = 0x05
_TAG_TUPLE = 0x06
_TAG_LIST = 0x07
_TAG_FROZENSET = 0x08
_TAG_SET = 0x09
_TAG_DICT = 0x0A
_TAG_FLOAT = 0x0B
_TAG_STRUCT = 0x10

# Registered struct ids, stable across versions (wire compatibility):
#   1-19    substrate (Envelope)
#   20-39   crypto value types
#   64-99   protocol payloads
#   >= 9000 reserved for tests / external extensions
_ENVELOPE_ID = 1

_by_type: dict[type, tuple[int, tuple[str, ...]]] = {}
_by_id: dict[int, tuple[type, tuple[str, ...], tuple[Any, ...]]] = {}
_by_name: dict[str, type] = {}
_builtin_registered = False
_registering = False

_SIMPLE_ANNOTATIONS: dict[str, type] = {
    "int": int,
    "bytes": bytes,
    "str": str,
    "bool": bool,
    "float": float,
    "tuple": tuple,
    "Path": tuple,  # the Envelope path alias
    "list": list,
    "set": set,
    "frozenset": frozenset,
    "dict": dict,
}


def _annotation_checker(annotation: Any) -> Any:
    """Best-effort type check derived from a dataclass field annotation.

    Returns a type to isinstance-check, a class-name string resolved
    against the registry at decode time, or ``None`` for annotations we
    cannot (or should not) enforce — ``Any``, ``Optional``, unions.
    Honest encoders always satisfy their own annotations, so this rejects
    only attacker-crafted frames whose field values have the wrong shape.
    """
    if not isinstance(annotation, str):
        annotation = getattr(annotation, "__name__", "")
    if "|" in annotation:
        return None  # PEP-604 unions admit several types: unchecked
    base = annotation.strip().split("[", 1)[0].strip().split(".")[-1]
    if base in _SIMPLE_ANNOTATIONS:
        return _SIMPLE_ANNOTATIONS[base]
    if not base or base in ("Any", "Optional", "Union", "object", "None"):
        return None
    return base  # resolved against _by_name lazily


def register(cls: type, type_id: int, fields: Optional[tuple[str, ...]] = None) -> type:
    """Register a dataclass under a stable wire id.

    ``fields`` defaults to the dataclass fields in declaration order; the
    decoder reconstructs instances via ``cls(*field_values)`` and checks
    each value against the field's annotation where that annotation names
    a concrete type.  Ids below 9000 are reserved for the repo itself.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"can only register dataclasses, got {cls!r}")
    declared = {f.name: f.type for f in dataclasses.fields(cls)}
    if fields is None:
        fields = tuple(declared)
    existing = _by_id.get(type_id)
    if existing is not None and existing[0] is not cls:
        raise ValueError(
            f"codec id {type_id} already taken by {existing[0].__name__}"
        )
    checkers = tuple(_annotation_checker(declared.get(name)) for name in fields)
    _by_type[cls] = (type_id, fields)
    _by_id[type_id] = (cls, fields, checkers)
    _by_name[cls.__name__] = cls
    from repro.net.payload import Payload  # deferred: payload.py is below codec

    if issubclass(cls, Payload):
        # Protocol payloads are the multicast fan-out unit: the same
        # frozen object is addressed to all n recipients, so its struct
        # encoding is memoized by identity (see encode_stats above).
        _memoized_types.add(cls)
    return cls


def registered_types() -> dict[type, int]:
    """Every registered type and its wire id (triggers full registration)."""
    _ensure_registered()
    return {cls: type_id for cls, (type_id, _fields) in _by_type.items()}


# -- varints ---------------------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


#: Integers (after zigzag) are bounded to this many bits on the wire —
#: far above the 256-bit STANDARD group parameters, and enforced
#: symmetrically: `encode` refuses above it, `decode` rejects above it.
_MAX_INT_BITS = 4096


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > _MAX_INT_BITS:  # bounds attacker-supplied "infinite" varints
            raise CodecError("varint too long")


# Arbitrary-precision zigzag: non-negative n -> 2n, negative n -> -2n - 1.
def _zigzag_encode(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _zigzag_decode(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


# -- encoding --------------------------------------------------------------------------


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif type(value) is int:
        zigzagged = _zigzag_encode(value)
        if zigzagged.bit_length() > _MAX_INT_BITS:
            # Same bound the decoder enforces: fail loudly at the sender
            # instead of encoding bytes the receiver will reject.
            raise CodecError(f"integer exceeds the codec bound ({_MAX_INT_BITS} bits)")
        out.append(_TAG_INT)
        _write_uvarint(out, zigzagged)
    elif type(value) is bytes:
        out.append(_TAG_BYTES)
        _write_uvarint(out, len(value))
        out.extend(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_uvarint(out, len(raw))
        out.extend(raw)
    elif type(value) is tuple:
        out.append(_TAG_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) is list:
        out.append(_TAG_LIST)
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif type(value) in (frozenset, set):
        out.append(_TAG_FROZENSET if type(value) is frozenset else _TAG_SET)
        parts = sorted(encode(item) for item in value)
        _write_uvarint(out, len(parts))
        for part in parts:
            out.extend(part)
    elif type(value) is dict:
        out.append(_TAG_DICT)
        pairs = sorted((encode(k), encode(v)) for k, v in value.items())
        _write_uvarint(out, len(pairs))
        for key_bytes, value_bytes in pairs:
            out.extend(key_bytes)
            out.extend(value_bytes)
    elif type(value) is float:
        out.append(_TAG_FLOAT)
        out.extend(_struct.pack(">d", value))
    else:
        entry = _by_type.get(type(value))
        if entry is None:
            raise CodecError(
                f"no codec registration for type {type(value).__name__!r}"
            )
        type_id, fields = entry
        if type(value) in _memoized_types:
            out.extend(_payload_struct_bytes(value))
            return
        out.append(_TAG_STRUCT)
        _write_uvarint(out, type_id)
        _write_uvarint(out, len(fields))
        if type(value) is _envelope_type:
            for name in fields:
                field_value = getattr(value, name)
                if name == "path" and type(field_value) is tuple:
                    cached = _path_struct_bytes(field_value)
                    if cached is not None:
                        out.extend(cached)
                        continue
                    # Unhashable path (forged envelope): encode it
                    # directly; decode_envelope rejects it anyway.
                _encode_into(out, field_value)
            return
        for name in fields:
            _encode_into(out, getattr(value, name))


def _payload_struct_bytes(value: Any, count: bool = True) -> bytes:
    """The identity-memoized struct encoding of a fan-out payload.

    The caller must have checked ``type(value) in _memoized_types``.
    ``count=False`` fetches without touching :data:`encode_stats` —
    wire-layer *reuse* of already-produced bytes (batch assembly, size
    accounting of built frames) must not distort the encode-once
    counters the perf harness asserts on.
    """
    if count:
        encode_stats["payload.calls"] += 1
    cached = _payload_memo.get(value)
    if cached is not None:
        if count:
            encode_stats["payload.hits"] += 1
        return cached
    if count:
        encode_stats["payload.misses"] += 1
    type_id, fields = _by_type[type(value)]
    chunk = bytearray()
    chunk.append(_TAG_STRUCT)
    _write_uvarint(chunk, type_id)
    _write_uvarint(chunk, len(fields))
    for name in fields:
        _encode_into(chunk, getattr(value, name))
    buffer = bytes(chunk)
    _payload_memo.put(value, buffer)
    return buffer


def _path_struct_bytes(path: tuple) -> Optional[bytes]:
    """The value-memoized encoding of an envelope path; ``None`` if the
    path is unhashable (forged) and therefore not memoizable."""
    try:
        cached = _path_memo.get(path)
    except TypeError:
        return None
    if cached is None:
        chunk = bytearray()
        _encode_into(chunk, path)
        cached = bytes(chunk)
        if len(_path_memo) >= _PATH_MEMO_LIMIT:
            _path_memo.clear()
        _path_memo[path] = cached
    return cached


def encode(value: Any) -> bytes:
    """Deterministically encode ``value`` to bytes.

    Raises :class:`CodecError` for unregistered/unsupported types.
    """
    _ensure_registered()
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


# -- decoding --------------------------------------------------------------------------


def _decode_from(data: bytes, pos: int, depth: int = 0) -> tuple[Any, int]:
    if depth > 64:
        raise CodecError("value nesting too deep")
    if pos >= len(data):
        raise CodecError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_uvarint(data, pos)
        if raw.bit_length() > _MAX_INT_BITS:
            # Exactly the bound encode enforces: without this, a crafted
            # frame could inject an int honest parties cannot re-encode.
            raise CodecError(f"integer exceeds the codec bound ({_MAX_INT_BITS} bits)")
        return _zigzag_decode(raw), pos
    if tag == _TAG_BYTES:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated bytes")
        return data[pos : pos + length], pos + length
    if tag == _TAG_STR:
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated string")
        try:
            return data[pos : pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise CodecError("invalid UTF-8 in string") from exc
    if tag in (_TAG_TUPLE, _TAG_LIST, _TAG_FROZENSET, _TAG_SET):
        count, pos = _read_uvarint(data, pos)
        if count > len(data):  # cheap bound: every item costs >= 1 byte
            raise CodecError("container length exceeds buffer")
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos, depth + 1)
            items.append(item)
        if tag == _TAG_TUPLE:
            return tuple(items), pos
        if tag == _TAG_LIST:
            return items, pos
        try:
            collected = frozenset(items) if tag == _TAG_FROZENSET else set(items)
        except TypeError as exc:
            raise CodecError("unhashable set member") from exc
        if len(collected) != count:
            raise CodecError("duplicate set member")
        return collected, pos
    if tag == _TAG_DICT:
        count, pos = _read_uvarint(data, pos)
        if count > len(data):
            raise CodecError("container length exceeds buffer")
        result: dict = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos, depth + 1)
            value, pos = _decode_from(data, pos, depth + 1)
            try:
                result[key] = value
            except TypeError as exc:
                raise CodecError("unhashable dict key") from exc
        if len(result) != count:
            raise CodecError("duplicate dict key")
        return result, pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise CodecError("truncated float")
        return _struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _TAG_STRUCT:
        type_id, pos = _read_uvarint(data, pos)
        entry = _by_id.get(type_id)
        if entry is None:
            raise CodecError(f"unknown codec type id {type_id}")
        cls, fields, checkers = entry
        count, pos = _read_uvarint(data, pos)
        if count != len(fields):
            # Wire-format versioning for the envelope: the pre-session
            # format carried five fields (no ``session``); such frames
            # decode with the trailing session defaulted to 0, so old
            # single-session traffic keeps routing.  Every other struct
            # stays strict.
            if not (cls is _envelope_type and count == len(fields) - 1):
                raise CodecError(
                    f"field count mismatch for {cls.__name__}: "
                    f"expected {len(fields)}, got {count}"
                )
            fields = fields[:count]
            checkers = checkers[:count]
        values = []
        for name, checker in zip(fields, checkers):
            value, pos = _decode_from(data, pos, depth + 1)
            _check_field(cls, name, checker, value)
            values.append(value)
        try:
            return cls(*values), pos
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"cannot construct {cls.__name__}: {exc}") from exc
    raise CodecError(f"unknown tag byte {tag:#04x}")


def _check_field(cls: type, name: str, checker: Any, value: Any) -> None:
    """Reject attacker-crafted field values whose type contradicts the
    field's concrete annotation (crash-vector hardening; ``Any`` fields
    stay unchecked — protocol handlers isinstance-check those)."""
    if checker is None:
        return
    if isinstance(checker, str):
        resolved = _by_name.get(checker)
        if resolved is None:
            return  # annotation names a type the registry doesn't know
        checker = resolved
    if not isinstance(value, checker):
        raise CodecError(
            f"field {cls.__name__}.{name} expects {checker.__name__}, "
            f"got {type(value).__name__}"
        )


def decode(data: bytes) -> Any:
    """Decode one value; the buffer must contain exactly one encoding.

    Raises :class:`CodecError` on any malformation, including trailing
    bytes after a well-formed prefix.
    """
    _ensure_registered()
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise CodecError(f"expected bytes, got {type(data).__name__}")
    value, pos = _decode_from(bytes(data), 0)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after value")
    return value


# -- envelopes -------------------------------------------------------------------------


def encode_envelope(envelope: Any) -> bytes:
    """Encode a routed :class:`~repro.net.envelope.Envelope` to wire bytes."""
    from repro.net.envelope import Envelope

    if not isinstance(envelope, Envelope):
        raise CodecError(f"expected Envelope, got {type(envelope).__name__}")
    return encode(envelope)


def _validate_envelope(value: Any) -> Any:
    """Shared post-decode envelope validation (single and batch frames).

    The value must be an envelope with an int sender/recipient/depth/
    session, a hashable tuple path, and a
    :class:`~repro.net.payload.Payload` payload — anything else raises
    :class:`CodecError`.
    """
    from repro.net.envelope import Envelope
    from repro.net.payload import Payload

    if not isinstance(value, Envelope):
        raise CodecError("decoded value is not an Envelope")
    if not isinstance(value.path, tuple):
        raise CodecError("envelope path must be a tuple")
    try:
        hash(value.path)
    except TypeError as exc:
        # An unhashable path element (e.g. a list) would blow up the
        # recipient's instance-table lookup — fail closed here instead.
        raise CodecError("envelope path is not hashable") from exc
    if not isinstance(value.payload, Payload):
        raise CodecError("envelope payload is not a registered Payload")
    for field_name in ("sender", "recipient", "depth", "session"):
        if not isinstance(getattr(value, field_name), int):
            raise CodecError(f"envelope {field_name} must be an int")
    if value.session < 0:
        raise CodecError("envelope session must be non-negative")
    return value


def decode_envelope(data: bytes) -> Any:
    """Decode wire bytes into an :class:`~repro.net.envelope.Envelope`.

    The decoded value must be an envelope with an int sender/recipient/
    depth, a tuple path, and a :class:`~repro.net.payload.Payload`
    payload — anything else raises :class:`CodecError`.
    """
    return _validate_envelope(decode(data))


def encoded_size(value: Any) -> int:
    """Bytes ``value`` occupies on the wire (without transport framing)."""
    return len(encode(value))


# -- batch frames ----------------------------------------------------------------------


def _uvarint_size(value: int) -> int:
    """Bytes :func:`_write_uvarint` emits for ``value`` (>= 0)."""
    if value < 128:  # the overwhelmingly common case on the size path
        return 1
    return (value.bit_length() + 6) // 7


def _int_field_size(value: int) -> int:
    """Encoded size of an exact-``int`` value (tag byte + zigzag varint)."""
    zigzagged = value << 1 if value >= 0 else ((-value) << 1) - 1
    # Small-int fast paths: indices, depths and sessions live here.
    if zigzagged < 128:
        return 2
    if zigzagged < 16384:
        return 3
    if zigzagged.bit_length() > _MAX_INT_BITS:
        raise CodecError(f"integer exceeds the codec bound ({_MAX_INT_BITS} bits)")
    return 1 + (zigzagged.bit_length() + 6) // 7


def encoded_envelope_size(envelope: Any) -> int:
    """``len(encode_envelope(envelope))`` without materializing the bytes.

    The batched plane meters every send with its *unbatched* frame size
    (protocol byte accounting is batching-invariant); this composes that
    size from the payload/path memo entries instead of re-encoding the
    whole envelope per recipient.  Falls back to a full encode for any
    envelope shape outside the honest fast path, so the result is exactly
    ``len(encode(envelope))`` in every case (or :class:`CodecError` where
    that would raise).
    """
    _ensure_registered()
    if type(envelope) is not _envelope_type:
        return len(encode(envelope))
    path = envelope.path
    payload = envelope.payload
    if (
        type(path) is not tuple
        or type(payload) not in _memoized_types
        or type(envelope.sender) is not int
        or type(envelope.recipient) is not int
        or type(envelope.depth) is not int
        or type(envelope.session) is not int
    ):
        return len(encode(envelope))
    path_bytes = _path_struct_bytes(path)
    if path_bytes is None:
        return len(encode(envelope))
    # Counting mirrors the unbatched metering encode: one payload.calls
    # (and hit/miss) per metered send.
    payload_bytes = _payload_struct_bytes(payload)
    type_id, fields = _by_type[_envelope_type]
    return (
        1
        + _uvarint_size(type_id)
        + _uvarint_size(len(fields))
        + len(path_bytes)
        + _int_field_size(envelope.sender)
        + _int_field_size(envelope.recipient)
        + len(payload_bytes)
        + _int_field_size(envelope.depth)
        + _int_field_size(envelope.session)
    )


def _batch_payload_bytes(payload: Any) -> bytes:
    """One payload's encoding for batch assembly (never counts stats)."""
    _ensure_registered()
    if type(payload) in _memoized_types:
        return _payload_struct_bytes(payload, count=False)
    return encode(payload)


def _batch_header_into(out: bytearray, envelope: Any) -> None:
    """Append one envelope's routing header (everything but the payload)."""
    out.append(_TAG_TUPLE)
    _write_uvarint(out, 5)
    path = envelope.path
    cached = _path_struct_bytes(path) if type(path) is tuple else None
    if cached is not None:
        out.extend(cached)
    else:
        _encode_into(out, path)
    _encode_into(out, envelope.sender)
    _encode_into(out, envelope.recipient)
    _encode_into(out, envelope.depth)
    _encode_into(out, envelope.session)


def encode_batch(envelopes: Any) -> bytes:
    """Encode several envelopes into one coalesced wire frame body.

    Payloads are deduplicated within the frame (a multicast payload
    shared by k envelopes of the frame is serialized once); a batch of
    one envelope is emitted in the legacy single-envelope format, so
    every output of this function is decodable by :func:`decode_batch`
    and single-envelope outputs also by :func:`decode_envelope`.
    """
    _ensure_registered()
    envelopes = list(envelopes)
    if not envelopes:
        raise CodecError("cannot encode an empty batch")
    if len(envelopes) == 1:
        return encode_envelope(envelopes[0])
    for envelope in envelopes:
        if type(envelope) is not _envelope_type:
            raise CodecError(
                f"expected Envelope, got {type(envelope).__name__}"
            )
    blobs: list[bytes] = []
    index_by_bytes: dict[bytes, int] = {}
    records: list[tuple[int, Any]] = []
    for envelope in envelopes:
        blob = _batch_payload_bytes(envelope.payload)
        index = index_by_bytes.get(blob)
        if index is None:
            index = len(blobs)
            index_by_bytes[blob] = index
            blobs.append(blob)
        records.append((index, envelope))
    out = bytearray((BATCH_MAGIC, BATCH_VERSION))
    _write_uvarint(out, len(blobs))
    for blob in blobs:
        _write_uvarint(out, len(blob))
        out.extend(blob)
    _write_uvarint(out, len(records))
    for index, envelope in records:
        _write_uvarint(out, index)
        _batch_header_into(out, envelope)
    return bytes(out)


def encoded_batch_size(
    envelopes: Any, body_sizes: Optional[list[int]] = None
) -> int:
    """``len(encode_batch(envelopes))`` without materializing the bytes.

    Lets in-process transports (the simulator) account the wire bytes a
    coalesced frame *would* occupy — and therefore the bytes batching
    saves — from the same memo entries the metering uses, at O(1) cost
    per envelope.  ``body_sizes`` optionally supplies each envelope's
    already-known single-frame body size (``encoded_envelope_size``); an
    envelope's batch header is then derived algebraically — every
    envelope encoding is ``3 + path + ints + payload`` bytes and its
    batch header is ``2 + path + ints``, so ``header = body - payload - 1``
    — instead of re-sizing the fields.
    """
    _ensure_registered()
    envelopes = list(envelopes)
    if not envelopes:
        raise CodecError("cannot encode an empty batch")
    if len(envelopes) == 1:
        if body_sizes is not None:
            return body_sizes[0]
        return encoded_envelope_size(envelopes[0])
    blob_total = 0
    blob_count = 0
    index_by_bytes: dict[bytes, int] = {}
    total = 0
    for position, envelope in enumerate(envelopes):
        if type(envelope) is not _envelope_type:
            raise CodecError(f"expected Envelope, got {type(envelope).__name__}")
        blob = _batch_payload_bytes(envelope.payload)
        index = index_by_bytes.get(blob)
        if index is None:
            index = blob_count
            index_by_bytes[blob] = index
            blob_count += 1
            size = len(blob)
            blob_total += _uvarint_size(size) + size
        if body_sizes is not None:
            header = body_sizes[position] - len(blob) - 1
        else:
            path = envelope.path
            path_bytes = (
                _path_struct_bytes(path) if type(path) is tuple else None
            )
            if (
                path_bytes is not None
                and type(envelope.sender) is int
                and type(envelope.recipient) is int
                and type(envelope.depth) is int
                and type(envelope.session) is int
            ):
                header = (
                    2  # tuple tag + count (5 < 128)
                    + len(path_bytes)
                    + _int_field_size(envelope.sender)
                    + _int_field_size(envelope.recipient)
                    + _int_field_size(envelope.depth)
                    + _int_field_size(envelope.session)
                )
            else:
                chunk = bytearray()
                _batch_header_into(chunk, envelope)
                header = len(chunk)
        total += _uvarint_size(index) + header
    return (
        total
        + 2  # magic + version
        + _uvarint_size(blob_count)
        + blob_total
        + _uvarint_size(len(envelopes))
    )


def decode_batch(data: bytes) -> list:
    """Decode one wire frame body into its list of envelopes.

    Accepts both formats: a body opening with :data:`BATCH_MAGIC` is
    parsed as a multi-envelope batch frame; anything else is decoded as
    one legacy single-envelope frame.  Every envelope passes the same
    validation :func:`decode_envelope` applies; any malformation raises
    :class:`CodecError`.
    """
    _ensure_registered()
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise CodecError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    if not data:
        raise CodecError("empty frame")
    if data[0] != BATCH_MAGIC:
        return [decode_envelope(data)]
    if len(data) < 2:
        raise CodecError("truncated batch frame")
    if data[1] != BATCH_VERSION:
        raise CodecError(f"unsupported batch frame version {data[1]}")
    from repro.net.payload import Payload

    pos = 2
    blob_count, pos = _read_uvarint(data, pos)
    if blob_count == 0 or blob_count > len(data):
        raise CodecError("batch payload table count out of range")
    payloads = []
    for _ in range(blob_count):
        length, pos = _read_uvarint(data, pos)
        if pos + length > len(data):
            raise CodecError("truncated batch payload blob")
        value, end = _decode_from(data, pos)
        if end != pos + length:
            raise CodecError("batch payload blob length mismatch")
        if not isinstance(value, Payload):
            raise CodecError("batch payload is not a registered Payload")
        payloads.append(value)
        pos = end
    envelope_count, pos = _read_uvarint(data, pos)
    if envelope_count == 0 or envelope_count > len(data):
        raise CodecError("batch envelope count out of range")
    envelopes = []
    for _ in range(envelope_count):
        index, pos = _read_uvarint(data, pos)
        if index >= blob_count:
            raise CodecError("batch payload index out of range")
        header, pos = _decode_from(data, pos)
        if not isinstance(header, tuple) or len(header) != 5:
            raise CodecError("malformed batch envelope header")
        path, sender, recipient, depth, session = header
        envelope = _envelope_type(
            path=path,
            sender=sender,
            recipient=recipient,
            payload=payloads[index],
            depth=depth,
            session=session,
        )
        envelopes.append(_validate_envelope(envelope))
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after batch")
    return envelopes


def encode_heartbeat() -> bytes:
    """The two-byte body of a connection-liveness heartbeat frame.

    Heartbeats are *transport chatter*, not protocol traffic: they carry
    no envelope, are never metered as protocol words/bytes/frames, and a
    receiver identifies them with :func:`is_heartbeat` before attempting
    :func:`decode_batch` (whose strict parser would reject them).
    """
    return bytes((HEARTBEAT_MAGIC, HEARTBEAT_VERSION))


def is_heartbeat(body: bytes) -> bool:
    """True iff a frame body is a well-formed heartbeat."""
    return (
        len(body) == 2
        and body[0] == HEARTBEAT_MAGIC
        and body[1] == HEARTBEAT_VERSION
    )


# -- built-in registrations ------------------------------------------------------------


def _ensure_registered() -> None:
    """Register the repo's payloads and crypto value types (idempotent).

    Registration is lazy so that this module can be imported from anywhere
    in the net layer without creating import cycles with the protocol
    modules it serializes.
    """
    global _builtin_registered, _registering
    if _builtin_registered or _registering:
        return
    # The success flag is only set after every registration ran: if an
    # import fails mid-way, the next call retries and re-raises the real
    # error instead of silently operating on a half-filled registry.
    # The in-progress flag guards against re-entrance while the protocol
    # modules are importing.
    _registering = True
    try:
        _register_builtins()
        _builtin_registered = True
    finally:
        _registering = False


def _register_builtins() -> None:
    from repro.net.envelope import Envelope
    from repro.crypto.pairing import GroupElement
    from repro.crypto import nizk, schnorr
    from repro.crypto.kzg import KZGOpening
    from repro.crypto.merkle import MerkleProof
    from repro.crypto.pvss import ContributorTag, PVSSContribution, PVSSTranscript
    from repro.crypto.reshare import (
        HandoffSpec,
        ReshareBundle,
        ReshareDealing,
        ReshareTranscript,
    )
    from repro.crypto.scalar_pvss import DecryptedShare, ScalarDealing
    from repro.crypto.shamir import ShamirShare
    from repro.crypto.threshold_enc import Ciphertext, DecryptionShare
    from repro.crypto.threshold_sig import SignatureShare, ThresholdSignature
    from repro.crypto.threshold_vrf import EvalShare
    from repro.core.certificates import KeyTuple, SignedVote
    from repro.core.adkg import ADKGShare
    from repro.core.reshare import ReshareDealingMsg
    from repro.core.nwh import (
        BlameMsg,
        CommitMsg,
        EchoMsg,
        EquivocateMsg,
        KeyVoteMsg,
        LockVoteMsg,
        Suggest,
    )
    from repro.core.proposal_election import PEDkgShare, PEEvalShare
    from repro.broadcast.bracha import BrachaEcho, BrachaReady, BrachaVal
    from repro.broadcast.ct_rbc import CTEcho, CTReady, CTVal
    from repro.baselines.aba import Aux, BVal, CoinShareMsg, Decided

    # Substrate.
    register(Envelope, _ENVELOPE_ID)
    global _envelope_type
    _envelope_type = Envelope
    # Crypto value types.
    register(GroupElement, 20)
    register(schnorr.Signature, 21)
    register(nizk.DlogProof, 22)
    register(nizk.DleqProof, 23)
    register(MerkleProof, 24)
    register(KZGOpening, 25)
    register(ContributorTag, 26)
    register(PVSSContribution, 27)
    register(PVSSTranscript, 28)
    register(EvalShare, 29)
    register(SignedVote, 30)
    register(KeyTuple, 31)
    register(SignatureShare, 32)
    register(ThresholdSignature, 33)
    register(Ciphertext, 34)
    register(DecryptionShare, 35)
    register(ScalarDealing, 36)
    register(DecryptedShare, 37)
    register(ShamirShare, 38)
    register(HandoffSpec, 39)
    register(ReshareDealing, 40)
    register(ReshareBundle, 41)
    register(ReshareTranscript, 42)
    # Protocol payloads.
    register(BrachaVal, 64)
    register(BrachaEcho, 65)
    register(BrachaReady, 66)
    register(CTVal, 67)
    register(CTEcho, 68)
    register(CTReady, 69)
    register(PEDkgShare, 70)
    register(PEEvalShare, 71)
    register(Suggest, 72)
    register(EchoMsg, 73)
    register(KeyVoteMsg, 74)
    register(LockVoteMsg, 75)
    register(CommitMsg, 76)
    register(BlameMsg, 77)
    register(EquivocateMsg, 78)
    register(ADKGShare, 79)
    register(BVal, 80)
    register(Aux, 81)
    register(CoinShareMsg, 82)
    register(Decided, 83)
    register(ReshareDealingMsg, 84)
