"""TCP transport: every message crosses a real socket as codec bytes.

Each party runs an ``asyncio`` stream server on the loopback interface;
at startup every ordered pair of distinct parties opens one TCP
connection.  A transmitted envelope is encoded by :mod:`repro.net.codec`
into a length-prefixed frame, written to the sender's connection, read
back by the recipient's server, decoded, and only then delivered into the
recipient's protocol stack — so a full run proves the protocols execute
unchanged over an actual socket boundary, with nothing shared in memory
between sender and recipient but bytes.

Framing: a 4-byte big-endian length followed by one frame body.  On the
batched plane (default) a body is a multi-envelope batch frame
(:func:`repro.net.codec.encode_batch`) coalescing every envelope one
activation queued for the same connection, with intra-frame payload
deduplication; single envelopes — and the whole unbatched plane
(``batching=False``) — use the legacy single-envelope body, and the
reader (:func:`repro.net.codec.decode_batch`) accepts both, so
mixed-plane peers interoperate.  Malformed frames (codec errors,
oversized lengths) are dropped and counted in ``rejected_frames``, as is
every decoded envelope addressed to a different party or carrying an
out-of-range sender — the Byzantine-input posture of the codec applies
at the transport edge too.  Peer *authentication* is out of scope: an
in-range sender index is taken at face value, exactly the power the
paper's Byzantine model grants corrupted parties (a deployment would
bind sender identity to the connection via TLS or a signed handshake;
the protocols themselves sign everything that matters).

Byte metering is always on: ``metrics.bytes_total`` is the *protocol*
byte metric — the sum of per-envelope frame sizes, byte-identical with
batching on or off — while ``metrics.wire_bytes_total`` counts the bytes
actually written to sockets, so their difference is what coalescing
saved.

Backpressure: each ordered pair's send queue is a *bounded*
``asyncio.Queue`` (``send_queue_cap`` frames).  ``drain()`` applies
socket-level backpressure between frames; if a peer stalls long enough
that the queue fills anyway, further frames are shed and counted in the
``tcp.backpressure`` metrics counter (honest runs never hit the cap —
the drops model a long-lived deployment shedding load instead of
growing without bound).

Self-healing (DESIGN §11): each ordered pair is supervised by a
:class:`_Link`.  Connection loss is detected three ways — the link's
read side hits EOF (a dedicated watcher task), a frame write/drain
fails, or an idle-timeout heartbeat frame
(:func:`repro.net.codec.encode_heartbeat`) fails to go out — and is
counted once per connection generation in ``tcp.conn_lost``.  The pump
then reconnects with capped exponential backoff and deterministic
per-link jitter (``tcp.reconnects``), retaining the in-flight frame
across the outage and re-writing it on the new connection
(``tcp.resent_frames``) — the same parked-traffic model the transport's
``detach_party``/``reattach_party`` applies at the party level, here at
the socket level: the bounded send queue simply survives the reconnect
and drains onto the new socket.  Heartbeats are transport chatter, not
protocol traffic: they are never metered as protocol words/bytes or
wire frames, only counted (``tcp.heartbeats`` sent, ``heartbeats_seen``
received).  A frame whose write raced a connection loss may be
delivered twice (at-least-once delivery); that is exactly the chaos
plane's ``duplicate`` link fault, which the protocols tolerate.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Optional

from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import Behavior
from repro.net.envelope import Envelope
from repro.net.transport import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    RealtimeTransport,
    RootFactory,
)

__all__ = ["TCPRuntime", "RootFactory"]


class _Link:
    """One ordered pair's supervised, self-healing connection state.

    The bounded frame queue and the pump task are *permanent*; the
    socket behind them is replaceable.  ``generation`` increments on
    every successful (re)connect so stale EOF watchers from a previous
    socket cannot mis-count a loss of the current one; ``pending`` holds
    the frame currently being written, retained across a write failure
    and re-sent on the next connection.
    """

    __slots__ = (
        "pair",
        "queue",
        "writer",
        "pending",
        "resend",
        "generation",
        "attempts",
        "rng",
    )

    def __init__(
        self, pair: tuple[int, int], queue: asyncio.Queue, rng: random.Random
    ) -> None:
        self.pair = pair
        self.queue = queue
        self.writer: Optional[asyncio.StreamWriter] = None
        self.pending: Optional[bytes] = None
        self.resend = False
        self.generation = 0
        self.attempts = 0
        self.rng = rng


class TCPRuntime(RealtimeTransport):
    """Run an n-party protocol over real asyncio TCP stream connections."""

    frames_on_wire = True

    def __init__(
        self,
        setup: Optional[TrustedSetup],
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        measure_bytes: bool = True,
        batching: bool = True,
        send_queue_cap: int = 1024,
        workers: int = 0,
        chaos: Any = None,
        heartbeat_interval: float = 1.0,
        reconnect_base: float = 0.05,
        reconnect_cap: float = 2.0,
        shards: Any = None,
    ) -> None:
        # ``measure_bytes`` exists for call-site uniformity with the other
        # transports, but TCP always meters (the byte counts are the bytes
        # actually written to the sockets, at no extra encoding cost) —
        # refuse a request to turn it off rather than silently ignore it.
        if not measure_bytes:
            raise ValueError(
                "the TCP runtime always meters bytes; measure_bytes=False "
                "is not supported"
            )
        if send_queue_cap < 1:
            raise ValueError("send_queue_cap must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if reconnect_base <= 0 or reconnect_cap < reconnect_base:
            raise ValueError(
                "reconnect backoff needs 0 < reconnect_base <= reconnect_cap"
            )
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace="tcp-runtime",
            measure_bytes=True,
            batching=batching,
            workers=workers,
            chaos=chaos,
            shards=shards,
        )
        self.host = host
        self.ports: dict[int, int] = {}
        self.rejected_frames = 0
        self.send_queue_cap = send_queue_cap
        #: Frames shed because a pair's bounded send queue was full.
        self.backpressure_drops = 0
        #: Idle gap after which the pump writes a heartbeat frame — the
        #: bound on how long a dead idle connection can stay undetected.
        self.heartbeat_interval = heartbeat_interval
        #: Capped exponential backoff between reconnect attempts:
        #: ``min(cap, base * 2^attempt)``, jittered by a deterministic
        #: per-link factor in [0.5, 1.5).
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        #: Connection losses detected (once per connection generation).
        self.conn_lost = 0
        #: Successful reconnects after a loss.
        self.reconnects = 0
        #: Heartbeat frames written (idle links) / read back by servers.
        self.heartbeats_sent = 0
        self.heartbeats_seen = 0
        #: Data frames written again on a fresh connection after their
        #: first write failed mid-frame.  Resends are *wire* traffic
        #: only: the envelopes were metered as protocol sends exactly
        #: once, at send time.
        self.resent_frames = 0
        self._closing = False
        self._servers: list[asyncio.AbstractServer] = []
        self._links: dict[tuple[int, int], _Link] = {}
        body = codec.encode_heartbeat()
        self._heartbeat_frame = (
            len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body
        )
        self.metrics.attach_counters("tcp", self._tcp_counters)

    def _tcp_counters(self) -> dict:
        counters = {}
        for key, value in (
            ("backpressure", self.backpressure_drops),
            ("rejected_frames", self.rejected_frames),
            ("conn_lost", self.conn_lost),
            ("reconnects", self.reconnects),
            ("heartbeats", self.heartbeats_sent),
            ("heartbeats_seen", self.heartbeats_seen),
            ("resent_frames", self.resent_frames),
        ):
            if value:
                counters[key] = value
        return counters

    # -- socket lifecycle --------------------------------------------------------------

    async def _open(self) -> None:
        for i in range(self.n):
            server = await asyncio.start_server(
                lambda reader, writer, party=i: self._accept(party, reader, writer),
                host=self.host,
                port=0,
            )
            self._servers.append(server)
            self.ports[i] = server.sockets[0].getsockname()[1]
        # All ordered pairs on a single group; intra-group pairs only in
        # sharded mode (groups never message each other).
        for pair in self._link_pairs():
            sender, recipient = pair
            # Bounded: _pump applies socket backpressure via drain();
            # the cap sheds load if a peer stalls past it (counted in
            # tcp.backpressure) instead of growing without bound.
            link = _Link(
                pair,
                asyncio.Queue(maxsize=self.send_queue_cap),
                random.Random(
                    f"tcp-reconnect-{self.seed}-{sender}-{recipient}"
                ),
            )
            self._links[pair] = link
            # The initial connect is strict (a refused connection
            # aborts the open); only *re*connects go through backoff.
            reader, writer = await asyncio.open_connection(
                self.host, self.ports[recipient]
            )
            link.writer = writer
            self._spawn(self._watch_eof(link, reader, link.generation))
            self._spawn(self._pump(link))

    async def close(self) -> None:
        # Raise the closing flag *before* the base class cancels the
        # background tasks: a pump whose queued-frame future is already
        # resolved when the cancel lands can have the CancelledError
        # swallowed inside ``wait_for`` (the future-done race) — the
        # cooperative check at the top of the pump loop is what
        # guarantees it still exits.
        self._closing = True
        await super().close()

    async def _close(self) -> None:
        self._closing = True
        for link in self._links.values():
            if link.writer is not None:
                link.writer.close()
        for server in self._servers:
            server.close()
        await asyncio.gather(
            *(server.wait_closed() for server in self._servers),
            return_exceptions=True,
        )
        self._links.clear()
        self._servers.clear()

    def kill_connection(self, sender: int, recipient: int) -> None:
        """Kill one ordered link's current socket mid-run (test/chaos hook).

        The close is orderly at the socket level (frames already handed
        to the kernel still reach the peer, then FIN), so the injected
        failure is a *connection* loss, not silent data loss — the
        supervision machinery must detect it (EOF watcher or a failed
        write), reconnect with backoff and re-inject the retained
        traffic.  Raises if the pair has no link (unknown indices or the
        transport is not open).
        """
        link = self._links.get((sender, recipient))
        if link is None:
            raise ValueError(f"no TCP link for pair {(sender, recipient)}")
        if link.writer is not None:
            link.writer.close()

    # -- connection supervision --------------------------------------------------------

    def _mark_lost(self, link: _Link, generation: int) -> None:
        """Record one connection loss; idempotent per generation."""
        if (
            self._closing
            or link.generation != generation
            or link.writer is None
        ):
            return
        self.conn_lost += 1
        writer, link.writer = link.writer, None
        writer.close()

    async def _watch_eof(
        self, link: _Link, reader: asyncio.StreamReader, generation: int
    ) -> None:
        """Detect a peer-side close promptly: the server never writes, so
        any read completion (EOF or reset) means the connection died."""
        try:
            await reader.read()
        except (ConnectionError, OSError):
            pass
        self._mark_lost(link, generation)

    async def _reconnect(self, link: _Link) -> None:
        """Re-dial one link until it is connected (or the runtime closes).

        Capped exponential backoff with deterministic per-link jitter:
        attempt ``k`` sleeps ``min(cap, base * 2^k) * uniform(0.5, 1.5)``
        drawn from the link's seeded RNG stream.
        """
        while link.writer is None and not self._closing:
            delay = min(
                self.reconnect_cap, self.reconnect_base * (2 ** link.attempts)
            )
            await asyncio.sleep(delay * (0.5 + link.rng.random()))
            if self._closing:
                return
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.ports[link.pair[1]]
                )
            except OSError:
                link.attempts += 1
                continue
            link.writer = writer
            link.generation += 1
            link.attempts = 0
            self.reconnects += 1
            self._spawn(self._watch_eof(link, reader, link.generation))

    # -- sending -----------------------------------------------------------------------

    def _can_transmit(self, envelope: Envelope) -> bool:
        return self._pair_slots(envelope) in self._links

    def _transmit(self, envelope: Envelope, frame: bytes | None) -> bool:
        link = self._links.get(self._pair_slots(envelope))
        if link is None:
            # A behavior forged an unroutable sender/recipient pair: the
            # pipeline counts it as a dropped send, not a sent message.
            return False
        try:
            link.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.backpressure_drops += 1
            return False
        return True

    def _transmit_coalesced(self, batch: list) -> None:
        """Group the batch per connection and frame each group.

        Order per connection is the creation order (FIFO queue, in-frame
        order preserved by the codec); groups are split so no frame
        exceeds ``batch_cap_envelopes`` envelopes or ``batch_cap_bytes``
        of payload body.
        """
        groups: dict[tuple[int, int], list] = {}
        for envelope, nbytes, _delay in batch:
            pair = self._pair_slots(envelope)
            group = groups.get(pair)
            if group is None:
                groups[pair] = group = []
            group.append((envelope, nbytes))
        cap = self.batch_cap_envelopes
        byte_cap = min(self.batch_cap_bytes, MAX_FRAME_BYTES // 2)
        for pair, items in groups.items():
            link = self._links.get(pair)
            if link is None:
                # Connection torn down between metering and flush.
                self.dropped_sends += len(items)
                continue
            current: list[Envelope] = []
            current_bytes = 0
            for envelope, nbytes in items:
                body = (nbytes or FRAME_HEADER_BYTES) - FRAME_HEADER_BYTES
                if current and (
                    len(current) >= cap or current_bytes + body > byte_cap
                ):
                    self._put_frame(link, current)
                    current = []
                    current_bytes = 0
                current.append(envelope)
                current_bytes += body
            if current:
                self._put_frame(link, current)

    def _put_frame(self, link: _Link, envelopes: list[Envelope]) -> None:
        frame = self._batch_frame(envelopes)
        try:
            link.queue.put_nowait(frame)
        except asyncio.QueueFull:
            # The envelopes were already metered as sends (offered load);
            # the shed frame is visible in tcp.backpressure and in
            # dropped_sends.
            self.backpressure_drops += 1
            self.dropped_sends += len(envelopes)
            return
        self.metrics.record_frame(len(envelopes), len(frame))

    async def _next_frame(self, link: _Link) -> Optional[bytes]:
        """The link's next queued frame, or ``None`` after an idle gap."""
        queue = link.queue
        if not queue.empty():
            return queue.get_nowait()
        try:
            return await asyncio.wait_for(
                queue.get(), timeout=self.heartbeat_interval
            )
        except asyncio.TimeoutError:
            return None

    async def _pump(self, link: _Link) -> None:
        """Drain one ordered pair's frames onto its (current) socket.

        ``drain()`` applies socket-level backpressure between frames (the
        pump pauses while the peer's kernel buffers are full); producers
        shed load once the bounded queue fills on top of that.  The pump
        outlives the socket: a failed write marks the connection lost,
        keeps the frame in ``link.pending``, reconnects with backoff and
        re-sends.  Idle gaps produce heartbeat frames, which both prove
        liveness to the peer and bound how long a dead connection can
        hide (a heartbeat write failure triggers the same healing path).
        """
        while True:
            if self._closing:
                return
            frame = link.pending
            heartbeat = False
            if frame is None:
                frame = await self._next_frame(link)
                if frame is None:
                    if link.writer is None:
                        # Idle *and* down: heal now rather than waiting
                        # for traffic.
                        await self._reconnect(link)
                        if link.writer is None:
                            return  # runtime closing
                        continue
                    heartbeat = True
                    frame = self._heartbeat_frame
                else:
                    link.pending = frame
            if link.writer is None:
                await self._reconnect(link)
                if link.writer is None:
                    return  # runtime closing
            try:
                link.writer.write(frame)
                await link.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                # RuntimeError covers asyncio's "write after close".
                self._mark_lost(link, link.generation)
                if not heartbeat:
                    link.resend = True  # pending retained; resent above
                continue
            if heartbeat:
                self.heartbeats_sent += 1
            else:
                if link.resend:
                    link.resend = False
                    self.resent_frames += 1
                link.pending = None

    # -- receiving ---------------------------------------------------------------------

    def _accept(
        self, party: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._spawn(self._read_frames(party, reader, writer))

    async def _read_frames(
        self, party: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(FRAME_HEADER_BYTES)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    self.rejected_frames += 1
                    return  # poison-length frame: drop the connection
                try:
                    frame = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if codec.is_heartbeat(frame):
                    # Transport chatter: never metered, never delivered.
                    self.heartbeats_seen += 1
                    continue
                try:
                    envelopes = codec.decode_batch(frame)
                except codec.CodecError:
                    self.rejected_frames += 1
                    continue
                valid: list[Envelope] = []
                for envelope in envelopes:
                    if (
                        not self._wire_accepts(envelope, party)
                        or envelope.depth < 0
                    ):
                        self.rejected_frames += 1
                        continue
                    valid.append(envelope)
                # Pre-verify the whole frame before any state machine
                # activates, so deliveries overlap the pool workers.
                if self.pool is not None and valid:
                    self._preverify_batch(valid)
                for envelope in valid:
                    self._deliver_buffered(envelope)
                # One flush for the whole frame: the activations it
                # triggered coalesce into shared outgoing frames.
                self._flush_coalesced()
        finally:
            writer.close()
