"""TCP transport: every message crosses a real socket as codec bytes.

Each party runs an ``asyncio`` stream server on the loopback interface;
at startup every ordered pair of distinct parties opens one TCP
connection.  A transmitted envelope is encoded by :mod:`repro.net.codec`
into a length-prefixed frame, written to the sender's connection, read
back by the recipient's server, decoded, and only then delivered into the
recipient's protocol stack — so a full run proves the protocols execute
unchanged over an actual socket boundary, with nothing shared in memory
between sender and recipient but bytes.

Framing: a 4-byte big-endian length followed by one frame body.  On the
batched plane (default) a body is a multi-envelope batch frame
(:func:`repro.net.codec.encode_batch`) coalescing every envelope one
activation queued for the same connection, with intra-frame payload
deduplication; single envelopes — and the whole unbatched plane
(``batching=False``) — use the legacy single-envelope body, and the
reader (:func:`repro.net.codec.decode_batch`) accepts both, so
mixed-plane peers interoperate.  Malformed frames (codec errors,
oversized lengths) are dropped and counted in ``rejected_frames``, as is
every decoded envelope addressed to a different party or carrying an
out-of-range sender — the Byzantine-input posture of the codec applies
at the transport edge too.  Peer *authentication* is out of scope: an
in-range sender index is taken at face value, exactly the power the
paper's Byzantine model grants corrupted parties (a deployment would
bind sender identity to the connection via TLS or a signed handshake;
the protocols themselves sign everything that matters).

Byte metering is always on: ``metrics.bytes_total`` is the *protocol*
byte metric — the sum of per-envelope frame sizes, byte-identical with
batching on or off — while ``metrics.wire_bytes_total`` counts the bytes
actually written to sockets, so their difference is what coalescing
saved.

Backpressure: each ordered pair's send queue is a *bounded*
``asyncio.Queue`` (``send_queue_cap`` frames).  ``drain()`` applies
socket-level backpressure between frames; if a peer stalls long enough
that the queue fills anyway, further frames are shed and counted in the
``tcp.backpressure`` metrics counter (honest runs never hit the cap —
the drops model a long-lived deployment shedding load instead of
growing without bound).
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import Behavior
from repro.net.envelope import Envelope
from repro.net.transport import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    RealtimeTransport,
    RootFactory,
)

__all__ = ["TCPRuntime", "RootFactory"]


class TCPRuntime(RealtimeTransport):
    """Run an n-party protocol over real asyncio TCP stream connections."""

    frames_on_wire = True

    def __init__(
        self,
        setup: TrustedSetup,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        measure_bytes: bool = True,
        batching: bool = True,
        send_queue_cap: int = 1024,
        workers: int = 0,
    ) -> None:
        # ``measure_bytes`` exists for call-site uniformity with the other
        # transports, but TCP always meters (the byte counts are the bytes
        # actually written to the sockets, at no extra encoding cost) —
        # refuse a request to turn it off rather than silently ignore it.
        if not measure_bytes:
            raise ValueError(
                "the TCP runtime always meters bytes; measure_bytes=False "
                "is not supported"
            )
        if send_queue_cap < 1:
            raise ValueError("send_queue_cap must be >= 1")
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace="tcp-runtime",
            measure_bytes=True,
            batching=batching,
            workers=workers,
        )
        self.host = host
        self.ports: dict[int, int] = {}
        self.rejected_frames = 0
        self.send_queue_cap = send_queue_cap
        #: Frames shed because a pair's bounded send queue was full.
        self.backpressure_drops = 0
        self._servers: list[asyncio.AbstractServer] = []
        self._writers: dict[tuple[int, int], asyncio.StreamWriter] = {}
        self._send_queues: dict[tuple[int, int], asyncio.Queue] = {}
        self.metrics.attach_counters("tcp", self._tcp_counters)

    def _tcp_counters(self) -> dict:
        counters = {}
        if self.backpressure_drops:
            counters["backpressure"] = self.backpressure_drops
        if self.rejected_frames:
            counters["rejected_frames"] = self.rejected_frames
        return counters

    # -- socket lifecycle --------------------------------------------------------------

    async def _open(self) -> None:
        for i in range(self.n):
            server = await asyncio.start_server(
                lambda reader, writer, party=i: self._accept(party, reader, writer),
                host=self.host,
                port=0,
            )
            self._servers.append(server)
            self.ports[i] = server.sockets[0].getsockname()[1]
        for sender in range(self.n):
            for recipient in range(self.n):
                if sender == recipient:
                    continue
                _reader, writer = await asyncio.open_connection(
                    self.host, self.ports[recipient]
                )
                pair = (sender, recipient)
                self._writers[pair] = writer
                # Bounded: _pump applies socket backpressure via drain();
                # the cap sheds load if a peer stalls past it (counted in
                # tcp.backpressure) instead of growing without bound.
                queue: asyncio.Queue = asyncio.Queue(maxsize=self.send_queue_cap)
                self._send_queues[pair] = queue
                self._spawn(self._pump(queue, writer))

    async def _close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        for server in self._servers:
            server.close()
        await asyncio.gather(
            *(server.wait_closed() for server in self._servers),
            return_exceptions=True,
        )
        self._writers.clear()
        self._servers.clear()

    # -- sending -----------------------------------------------------------------------

    def _can_transmit(self, envelope: Envelope) -> bool:
        return (envelope.sender, envelope.recipient) in self._send_queues

    def _transmit(self, envelope: Envelope, frame: bytes | None) -> bool:
        queue = self._send_queues.get((envelope.sender, envelope.recipient))
        if queue is None:
            # A behavior forged an unroutable sender/recipient pair: the
            # pipeline counts it as a dropped send, not a sent message.
            return False
        try:
            queue.put_nowait(frame)
        except asyncio.QueueFull:
            self.backpressure_drops += 1
            return False
        return True

    def _transmit_coalesced(self, batch: list) -> None:
        """Group the batch per connection and frame each group.

        Order per connection is the creation order (FIFO queue, in-frame
        order preserved by the codec); groups are split so no frame
        exceeds ``batch_cap_envelopes`` envelopes or ``batch_cap_bytes``
        of payload body.
        """
        groups: dict[tuple[int, int], list] = {}
        for envelope, nbytes, _delay in batch:
            pair = (envelope.sender, envelope.recipient)
            group = groups.get(pair)
            if group is None:
                groups[pair] = group = []
            group.append((envelope, nbytes))
        cap = self.batch_cap_envelopes
        byte_cap = min(self.batch_cap_bytes, MAX_FRAME_BYTES // 2)
        for pair, items in groups.items():
            queue = self._send_queues.get(pair)
            if queue is None:
                # Connection torn down between metering and flush.
                self.dropped_sends += len(items)
                continue
            current: list[Envelope] = []
            current_bytes = 0
            for envelope, nbytes in items:
                body = (nbytes or FRAME_HEADER_BYTES) - FRAME_HEADER_BYTES
                if current and (
                    len(current) >= cap or current_bytes + body > byte_cap
                ):
                    self._put_frame(queue, current)
                    current = []
                    current_bytes = 0
                current.append(envelope)
                current_bytes += body
            if current:
                self._put_frame(queue, current)

    def _put_frame(self, queue: asyncio.Queue, envelopes: list[Envelope]) -> None:
        frame = self._batch_frame(envelopes)
        try:
            queue.put_nowait(frame)
        except asyncio.QueueFull:
            # The envelopes were already metered as sends (offered load);
            # the shed frame is visible in tcp.backpressure and in
            # dropped_sends.
            self.backpressure_drops += 1
            self.dropped_sends += len(envelopes)
            return
        self.metrics.record_frame(len(envelopes), len(frame))

    async def _pump(self, queue: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        """Drain one ordered pair's frames onto its socket.

        ``drain()`` applies socket-level backpressure between frames (the
        pump pauses while the peer's kernel buffers are full); producers
        shed load once the bounded queue fills on top of that.
        """
        while True:
            data = await queue.get()
            writer.write(data)
            await writer.drain()

    # -- receiving ---------------------------------------------------------------------

    def _accept(
        self, party: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._spawn(self._read_frames(party, reader, writer))

    async def _read_frames(
        self, party: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(FRAME_HEADER_BYTES)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    self.rejected_frames += 1
                    return  # poison-length frame: drop the connection
                try:
                    frame = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                try:
                    envelopes = codec.decode_batch(frame)
                except codec.CodecError:
                    self.rejected_frames += 1
                    continue
                valid: list[Envelope] = []
                for envelope in envelopes:
                    if (
                        envelope.recipient != party
                        or not 0 <= envelope.sender < self.n
                        or envelope.depth < 0
                    ):
                        self.rejected_frames += 1
                        continue
                    valid.append(envelope)
                # Pre-verify the whole frame before any state machine
                # activates, so deliveries overlap the pool workers.
                if self.pool is not None and valid:
                    self._preverify_batch(valid)
                for envelope in valid:
                    self._deliver_buffered(envelope)
                # One flush for the whole frame: the activations it
                # triggered coalesce into shared outgoing frames.
                self._flush_coalesced()
        finally:
            writer.close()
