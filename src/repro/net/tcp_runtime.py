"""TCP transport: every message crosses a real socket as codec bytes.

Each party runs an ``asyncio`` stream server on the loopback interface;
at startup every ordered pair of distinct parties opens one TCP
connection.  A transmitted envelope is encoded by :mod:`repro.net.codec`
into a length-prefixed frame, written to the sender's connection, read
back by the recipient's server, decoded, and only then delivered into the
recipient's protocol stack — so a full run proves the protocols execute
unchanged over an actual socket boundary, with nothing shared in memory
between sender and recipient but bytes.

Framing: a 4-byte big-endian length followed by one
:func:`repro.net.codec.encode_envelope` frame.  Malformed frames (codec
errors, oversized lengths, envelopes addressed to a different party or
carrying an out-of-range sender) are dropped and counted in
``rejected_frames`` — the Byzantine-input posture of the codec applies
at the transport edge too.  Peer *authentication* is out of scope: an
in-range sender index is taken at face value, exactly the power the
paper's Byzantine model grants corrupted parties (a deployment would
bind sender identity to the connection via TLS or a signed handshake;
the protocols themselves sign everything that matters).

Byte metering is always on: ``metrics.bytes_total`` counts exactly the
bytes written to sockets.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import Behavior
from repro.net.envelope import Envelope
from repro.net.transport import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    RealtimeTransport,
    RootFactory,
)

__all__ = ["TCPRuntime", "RootFactory"]


class TCPRuntime(RealtimeTransport):
    """Run an n-party protocol over real asyncio TCP stream connections."""

    frames_on_wire = True

    def __init__(
        self,
        setup: TrustedSetup,
        behaviors: Optional[dict[int, Behavior]] = None,
        seed: int = 0,
        host: str = "127.0.0.1",
        measure_bytes: bool = True,
    ) -> None:
        # ``measure_bytes`` exists for call-site uniformity with the other
        # transports, but TCP always meters (the byte counts are the bytes
        # actually written to the sockets, at no extra encoding cost) —
        # refuse a request to turn it off rather than silently ignore it.
        if not measure_bytes:
            raise ValueError(
                "the TCP runtime always meters bytes; measure_bytes=False "
                "is not supported"
            )
        super().__init__(
            setup,
            behaviors,
            seed,
            rng_namespace="tcp-runtime",
            measure_bytes=True,
        )
        self.host = host
        self.ports: dict[int, int] = {}
        self.rejected_frames = 0
        self._servers: list[asyncio.AbstractServer] = []
        self._writers: dict[tuple[int, int], asyncio.StreamWriter] = {}
        self._send_queues: dict[tuple[int, int], asyncio.Queue] = {}

    # -- socket lifecycle --------------------------------------------------------------

    async def _open(self) -> None:
        for i in range(self.n):
            server = await asyncio.start_server(
                lambda reader, writer, party=i: self._accept(party, reader, writer),
                host=self.host,
                port=0,
            )
            self._servers.append(server)
            self.ports[i] = server.sockets[0].getsockname()[1]
        for sender in range(self.n):
            for recipient in range(self.n):
                if sender == recipient:
                    continue
                _reader, writer = await asyncio.open_connection(
                    self.host, self.ports[recipient]
                )
                pair = (sender, recipient)
                self._writers[pair] = writer
                queue: asyncio.Queue = asyncio.Queue()
                self._send_queues[pair] = queue
                self._spawn(self._pump(queue, writer))

    async def _close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        for server in self._servers:
            server.close()
        await asyncio.gather(
            *(server.wait_closed() for server in self._servers),
            return_exceptions=True,
        )
        self._writers.clear()
        self._servers.clear()

    # -- sending -----------------------------------------------------------------------

    def _transmit(self, envelope: Envelope, frame: bytes | None) -> bool:
        queue = self._send_queues.get((envelope.sender, envelope.recipient))
        if queue is None:
            # A behavior forged an unroutable sender/recipient pair: the
            # pipeline counts it as a dropped send, not a sent message.
            return False
        queue.put_nowait(frame)
        return True

    async def _pump(self, queue: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        """Drain one ordered pair's frames onto its socket.

        ``drain()`` applies socket-level backpressure between frames (the
        pump pauses while the peer's kernel buffers are full); the queue
        itself is unbounded — ``_transmit`` is synchronous — which is fine
        here because a protocol run sends a finite, metered number of
        frames.  A long-lived deployment would cap it and shed load.
        """
        while True:
            data = await queue.get()
            writer.write(data)
            await writer.drain()

    # -- receiving ---------------------------------------------------------------------

    def _accept(
        self, party: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._spawn(self._read_frames(party, reader, writer))

    async def _read_frames(
        self, party: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(FRAME_HEADER_BYTES)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    self.rejected_frames += 1
                    return  # poison-length frame: drop the connection
                try:
                    frame = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                try:
                    envelope = codec.decode_envelope(frame)
                except codec.CodecError:
                    self.rejected_frames += 1
                    continue
                if (
                    envelope.recipient != party
                    or not 0 <= envelope.sender < self.n
                    or envelope.depth < 0
                ):
                    self.rejected_frames += 1
                    continue
                self._deliver_envelope(envelope)
        finally:
            writer.close()
