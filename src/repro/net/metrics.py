"""Word, message, round and frame metering — plus hot-path work counters.

Every send is recorded with its full instance path and payload type, so
experiments can report both totals (Theorems 6-10 measure total words)
and per-layer breakdowns (Theorem 8's ``n³·es + n²·ds + g(m+d) + b(n)``
decomposition).  Layer attribution is *inclusive*: a reliable-broadcast
message inside Gather inside PE counts towards ``rb``, ``gather`` and
``pe``.

Beyond the paper's word metric, a :class:`Metrics` can carry *counter
providers*: named live views over computational-work counters (crypto
verification calls/hits/misses from
:mod:`repro.crypto.verify_cache`, payload encode calls from
:mod:`repro.net.codec`, pairing operations).  The transport binds them as
deltas against its construction-time baseline, so ``counters("verify")``
is "work done by this run" — the structural quantity the perf harness
(``benchmarks/bench_hotpath.py``) asserts speedups on, independent of
wall-clock noise.

The batched message plane adds *frame* accounting on top: every send is
still metered individually (``bytes_total`` is the batching-invariant
protocol byte metric — the sum of unbatched per-envelope frame sizes),
while :meth:`Metrics.record_frame` counts the coalesced frames actually
produced, their occupancy, and the bytes they occupy on the wire
(``wire_bytes_total``); ``frames_saved`` / ``wire_bytes_saved`` are the
amortization the plane delivers.  See DESIGN.md section 8.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.net.envelope import Envelope


def counter_delta(live: Mapping[str, int], baseline: Mapping[str, int]) -> dict:
    """The non-zero growth of ``live`` over ``baseline`` (both Counters)."""
    return {
        key: live[key] - baseline.get(key, 0)
        for key in live
        if live[key] - baseline.get(key, 0)
    }


#: Instance paths repeat for every message of an instance, but layer
#: attribution re-derived the layer names from the path parts on every
#: send.  Value-keyed memo (paths are small hashable tuples; the layer
#: list is a pure function of the path), bounded like the codec's path
#: memo.
_path_layers_memo: dict[tuple, tuple[str, ...]] = {}
_PATH_LAYERS_LIMIT = 8192


def _path_layers(path: tuple) -> tuple[str, ...]:
    try:
        cached = _path_layers_memo.get(path)
    except TypeError:
        cached = None  # unhashable (forged) path: derive without caching
    else:
        if cached is None:
            cached = _derive_layers(path)
            if len(_path_layers_memo) >= _PATH_LAYERS_LIMIT:
                _path_layers_memo.clear()
            _path_layers_memo[path] = cached
        return cached
    return _derive_layers(path)


def _derive_layers(path: tuple) -> tuple[str, ...]:
    layers = []
    for part in path:
        if isinstance(part, str):
            layers.append(part)
        elif isinstance(part, tuple) and part and isinstance(part[0], str):
            layers.append(part[0])
    return tuple(layers)


@dataclass
class Metrics:
    words_total: int = 0
    messages_total: int = 0
    bytes_total: int = 0
    words_by_layer: Counter = field(default_factory=Counter)
    messages_by_layer: Counter = field(default_factory=Counter)
    words_by_type: Counter = field(default_factory=Counter)
    messages_by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    max_depth: int = 0
    deliveries: int = 0
    #: Coalesced wire frames the batched message plane actually produced
    #: (zero on the unbatched plane, where every envelope is its own
    #: frame and no batch accounting runs).
    frames_total: int = 0
    #: Largest number of envelopes observed in one frame.
    batch_occupancy_max: int = 0
    #: Actual bytes the coalesced frames occupy on the wire (transport
    #: framing included), where measurable.  ``bytes_total`` stays the
    #: *protocol* byte metric — the sum of unbatched per-envelope frame
    #: sizes, byte-identical with batching on or off — so the difference
    #: is exactly what coalescing saved.
    wire_bytes_total: int = 0
    counter_providers: dict[str, Callable[[], dict]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def record_send(self, envelope: Envelope, nbytes: int | None = None) -> None:
        """Record one network send.

        ``nbytes`` is the envelope's wire size under the byte codec
        (transport framing included); transports that do not encode to
        bytes pass ``None`` and only the paper's word metric is kept.
        """
        words = envelope.word_size()
        self.words_total += words
        self.messages_total += 1
        type_name = envelope.payload.type_name()
        self.words_by_type[type_name] += words
        self.messages_by_type[type_name] += 1
        if nbytes is not None:
            self.bytes_total += nbytes
            self.bytes_by_type[type_name] += nbytes
        for layer in _path_layers(envelope.path):
            self.words_by_layer[layer] += words
            self.messages_by_layer[layer] += 1

    def record_delivery(self, envelope: Envelope) -> None:
        self.deliveries += 1
        if envelope.depth > self.max_depth:
            self.max_depth = envelope.depth

    def record_frame(self, envelopes: int, nbytes: int | None = None) -> None:
        """Record one coalesced wire frame of ``envelopes`` envelopes.

        ``nbytes`` is the frame's actual on-wire size (transport framing
        included) where the transport can measure or compose it; ``None``
        when wire bytes are not being metered.
        """
        self.frames_total += 1
        if envelopes > self.batch_occupancy_max:
            self.batch_occupancy_max = envelopes
        if nbytes is not None:
            self.wire_bytes_total += nbytes

    @property
    def frames_saved(self) -> int:
        """Per-envelope frames the coalescing plane avoided.

        Envelopes still sitting in an unflushed coalescing buffer when a
        run stops are metered as sends but not yet framed, so this is a
        (tight) lower bound of zero on the unbatched plane.
        """
        if not self.frames_total:
            return 0
        return max(0, self.messages_total - self.frames_total)

    @property
    def batch_occupancy_mean(self) -> float:
        """Mean envelopes per coalesced frame (0.0 when not batching)."""
        if not self.frames_total:
            return 0.0
        return self.messages_total / self.frames_total

    @property
    def wire_bytes_saved(self) -> int:
        """Protocol bytes minus actual wire bytes (what coalescing saved)."""
        if not self.frames_total or not self.wire_bytes_total:
            return 0
        return max(0, self.bytes_total - self.wire_bytes_total)

    def words_for_layer(self, layer: str) -> int:
        return self.words_by_layer.get(layer, 0)

    def merge(self, other: "Metrics") -> "Metrics":
        """This metrics plus ``other``, as a new :class:`Metrics`.

        The fix for counter collisions under concurrent session families:
        each family meters into its *own* namespaced ``Metrics`` and the
        service merges them for totals, instead of every family bumping
        one shared instance and losing attribution.  Merging is
        associative and commutative — additive fields sum, ``max_depth``/
        ``batch_occupancy_max`` take the max, and counter providers are
        materialized into snapshots summed by name — so any merge order
        (and any grouping, e.g. a tree reduction over worker results)
        yields the same totals.  Neither operand is mutated; the result's
        counter views are static snapshots taken at merge time.
        """
        return Metrics.merged((self, other))

    @classmethod
    def merged(cls, parts: "Iterable[Metrics]") -> "Metrics":
        """Order-independent sum of many ``Metrics`` (see :meth:`merge`)."""
        result = cls()
        counters: dict[str, Counter] = {}
        for part in parts:
            result.words_total += part.words_total
            result.messages_total += part.messages_total
            result.bytes_total += part.bytes_total
            result.words_by_layer.update(part.words_by_layer)
            result.messages_by_layer.update(part.messages_by_layer)
            result.words_by_type.update(part.words_by_type)
            result.messages_by_type.update(part.messages_by_type)
            result.bytes_by_type.update(part.bytes_by_type)
            result.max_depth = max(result.max_depth, part.max_depth)
            result.deliveries += part.deliveries
            result.frames_total += part.frames_total
            result.batch_occupancy_max = max(
                result.batch_occupancy_max, part.batch_occupancy_max
            )
            result.wire_bytes_total += part.wire_bytes_total
            for name, provider in part.counter_providers.items():
                counters.setdefault(name, Counter()).update(provider())
        for name, totals in counters.items():
            # Bind the summed snapshot, not the live providers: a merged
            # Metrics is a value, and re-merging it later must not
            # double-read (or re-order) the originals' live views.
            result.attach_counters(name, lambda snap=dict(totals): dict(snap))
        return result

    def attach_counters(self, name: str, provider: Callable[[], dict]) -> None:
        """Register a live work-counter view (e.g. ``"verify"``, ``"encode"``)."""
        self.counter_providers[name] = provider

    def counters(self, name: str) -> dict:
        """The named counter view right now; ``{}`` if none was attached."""
        provider = self.counter_providers.get(name)
        return dict(provider()) if provider is not None else {}

    def summary(self) -> dict:
        return {
            "words_total": self.words_total,
            "messages_total": self.messages_total,
            "bytes_total": self.bytes_total,
            "frames_total": self.frames_total,
            "frames_saved": self.frames_saved,
            "batch_occupancy_mean": round(self.batch_occupancy_mean, 2),
            "batch_occupancy_max": self.batch_occupancy_max,
            "wire_bytes_total": self.wire_bytes_total,
            "wire_bytes_saved": self.wire_bytes_saved,
            "max_depth": self.max_depth,
            "deliveries": self.deliveries,
            "words_by_layer": dict(self.words_by_layer),
            "words_by_type": dict(self.words_by_type),
            "counters": {
                name: dict(provider())
                for name, provider in self.counter_providers.items()
            },
        }
