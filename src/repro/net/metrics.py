"""Word, message and round metering — plus hot-path work counters.

Every send is recorded with its full instance path and payload type, so
experiments can report both totals (Theorems 6-10 measure total words)
and per-layer breakdowns (Theorem 8's ``n³·es + n²·ds + g(m+d) + b(n)``
decomposition).  Layer attribution is *inclusive*: a reliable-broadcast
message inside Gather inside PE counts towards ``rb``, ``gather`` and
``pe``.

Beyond the paper's word metric, a :class:`Metrics` can carry *counter
providers*: named live views over computational-work counters (crypto
verification calls/hits/misses from
:mod:`repro.crypto.verify_cache`, payload encode calls from
:mod:`repro.net.codec`, pairing operations).  The transport binds them as
deltas against its construction-time baseline, so ``counters("verify")``
is "work done by this run" — the structural quantity the perf harness
(``benchmarks/bench_hotpath.py``) asserts speedups on, independent of
wall-clock noise.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.net.envelope import Envelope


def counter_delta(live: Mapping[str, int], baseline: Mapping[str, int]) -> dict:
    """The non-zero growth of ``live`` over ``baseline`` (both Counters)."""
    return {
        key: live[key] - baseline.get(key, 0)
        for key in live
        if live[key] - baseline.get(key, 0)
    }


@dataclass
class Metrics:
    words_total: int = 0
    messages_total: int = 0
    bytes_total: int = 0
    words_by_layer: Counter = field(default_factory=Counter)
    messages_by_layer: Counter = field(default_factory=Counter)
    words_by_type: Counter = field(default_factory=Counter)
    messages_by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    max_depth: int = 0
    deliveries: int = 0
    counter_providers: dict[str, Callable[[], dict]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def record_send(self, envelope: Envelope, nbytes: int | None = None) -> None:
        """Record one network send.

        ``nbytes`` is the envelope's wire size under the byte codec
        (transport framing included); transports that do not encode to
        bytes pass ``None`` and only the paper's word metric is kept.
        """
        words = envelope.word_size()
        self.words_total += words
        self.messages_total += 1
        type_name = envelope.payload.type_name()
        self.words_by_type[type_name] += words
        self.messages_by_type[type_name] += 1
        if nbytes is not None:
            self.bytes_total += nbytes
            self.bytes_by_type[type_name] += nbytes
        for part in envelope.path:
            layer = None
            if isinstance(part, str):
                layer = part
            elif isinstance(part, tuple) and part and isinstance(part[0], str):
                layer = part[0]
            if layer is not None:
                self.words_by_layer[layer] += words
                self.messages_by_layer[layer] += 1

    def record_delivery(self, envelope: Envelope) -> None:
        self.deliveries += 1
        if envelope.depth > self.max_depth:
            self.max_depth = envelope.depth

    def words_for_layer(self, layer: str) -> int:
        return self.words_by_layer.get(layer, 0)

    def attach_counters(self, name: str, provider: Callable[[], dict]) -> None:
        """Register a live work-counter view (e.g. ``"verify"``, ``"encode"``)."""
        self.counter_providers[name] = provider

    def counters(self, name: str) -> dict:
        """The named counter view right now; ``{}`` if none was attached."""
        provider = self.counter_providers.get(name)
        return dict(provider()) if provider is not None else {}

    def summary(self) -> dict:
        return {
            "words_total": self.words_total,
            "messages_total": self.messages_total,
            "bytes_total": self.bytes_total,
            "max_depth": self.max_depth,
            "deliveries": self.deliveries,
            "words_by_layer": dict(self.words_by_layer),
            "words_by_type": dict(self.words_by_type),
            "counters": {
                name: dict(provider())
                for name, provider in self.counter_providers.items()
            },
        }
