"""Cachin-Tessaro erasure-coded reliable broadcast (Appendix A, Theorem 6).

The dealer Reed-Solomon-encodes its serialized value into ``n`` fragments
(reconstruction threshold ``k = f+1``), commits to the fragment vector
with a vector commitment (Merkle tree by default; Section 7.1's
constant-size-opening alternative is available as ``vc_kind="kzg"``), and sends each party its fragment plus opening proof.
Parties echo *their own* fragment to everyone; a party that collects
``n-f`` proof-valid fragments for a root decodes, **re-encodes and
re-commits** to check the root (this is what forces agreement: a root
either commits a codeword — in which case every subset decodes the same
value — or nobody ever validates it), then votes ``ready``.  ``f+1``
readies amplify; ``2f+1`` readies plus a successful decode deliver.

Word complexity per Theorem 6: ``O(n²·(c + p) + m·n)`` with ``c`` the
commitment size (1 word) and ``p`` the opening proof size (``log n``
words).  Fragment word sizes are accounted logically (``ceil(m/(f+1))``
words) while the payload carries the real fragment bytes — see
:mod:`repro.broadcast.wire`.

With a ``validate`` predicate this is the paper's Validated Reliable
Broadcast: ``ready`` votes and delivery are gated on external validity of
the decoded value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.broadcast import erasure, wire
from repro.crypto.vector_commitment import make_scheme
from repro.net.payload import Payload, words_of
from repro.net.protocol import Protocol

Validator = Callable[[Any], bool]


def _fragment_words(claim_words: int, k: int) -> int:
    return max(1, -(-claim_words // k))


@dataclass(frozen=True)
class CTVal(Payload):
    """Dealer → party j: j's fragment with its commitment opening."""

    root: Any
    fragment: bytes
    proof: Any
    claim_words: int
    k: int

    def word_size(self) -> int:
        return 1 + _fragment_words(self.claim_words, self.k) + self.proof.word_size()


@dataclass(frozen=True)
class CTEcho(Payload):
    """Party j → all: j's own fragment."""

    root: Any
    fragment: bytes
    proof: Any
    claim_words: int
    k: int

    def word_size(self) -> int:
        return 1 + _fragment_words(self.claim_words, self.k) + self.proof.word_size()


@dataclass(frozen=True)
class CTReady(Payload):
    root: Any

    def word_size(self) -> int:
        return 1


class CTBroadcast(Protocol):
    """One erasure-coded reliable broadcast instance with a designated dealer."""

    #: Declared mutable state: per-root fragment/ready/decode bookkeeping.
    #: The lazily built vector-commitment backend (``_vc``) is derived
    #: configuration, not state — a restored instance rebuilds it on use.
    STATE_FIELDS = (
        "_echoed",
        "_ready_sent",
        "_fragments",
        "_readies",
        "_decoded",
        "_bad_roots",
    )

    def __init__(
        self,
        dealer: int,
        value: Any = None,
        validate: Optional[Validator] = None,
        vc_kind: str = "merkle",
    ) -> None:
        super().__init__()
        self.dealer = dealer
        self.value = value
        self.validate = validate or (lambda _value: True)
        self.vc_kind = vc_kind
        self._vc = None
        self._echoed = False
        self._ready_sent = False
        self._fragments: dict[bytes, dict[int, bytes]] = {}
        self._readies: dict[bytes, set[int]] = {}
        self._decoded: dict[bytes, Any] = {}
        self._bad_roots: set[bytes] = set()

    @property
    def k(self) -> int:
        """Reconstruction threshold: ``f + 1`` honest fragments suffice."""
        return self.f + 1

    @property
    def vc(self):
        """The vector-commitment backend (Merkle by default; E10 swaps KZG in)."""
        if self._vc is None:
            self._vc = make_scheme(self.vc_kind, self.directory)
        return self._vc

    def on_start(self) -> None:
        if self.me == self.dealer:
            if self.value is None:
                raise ValueError("dealer must provide a value")
            data = wire.serialize(self.value)
            fragments = erasure.rs_encode(data, self.k, self.n)
            commitment, proofs = self.vc.commit(fragments)
            claim = max(1, words_of(self.value))
            for j in range(self.n):
                self.send(
                    j,
                    CTVal(
                        root=commitment,
                        fragment=fragments[j],
                        proof=proofs[j],
                        claim_words=claim,
                        k=self.k,
                    ),
                )

    def on_message(self, sender: int, payload: Payload) -> None:
        if isinstance(payload, CTVal):
            self._on_val(sender, payload)
        elif isinstance(payload, CTEcho):
            self._on_echo(sender, payload)
        elif isinstance(payload, CTReady):
            self._on_ready(sender, payload)

    # -- handlers ----------------------------------------------------------------------

    def _on_val(self, sender: int, payload: CTVal) -> None:
        if sender != self.dealer or self._echoed:
            return
        if payload.k != self.k or not self.vc.is_commitment(payload.root):
            return
        ok = self.vc.verify(
            payload.root, payload.fragment, self.me, payload.proof, self.n
        )
        if not ok:
            return
        self._echoed = True
        self.multicast(
            CTEcho(
                root=payload.root,
                fragment=payload.fragment,
                proof=payload.proof,
                claim_words=payload.claim_words,
                k=payload.k,
            )
        )

    def _on_echo(self, sender: int, payload: CTEcho) -> None:
        if payload.k != self.k or not self.vc.is_commitment(payload.root):
            return
        if not self._fragment_valid(sender, payload):
            return
        slot = self._fragments.setdefault(payload.root, {})
        if sender in slot:
            return
        slot[sender] = payload.fragment
        self._progress(payload.root)

    def _fragment_valid(self, sender: int, payload: CTEcho) -> bool:
        """Proof-check ``sender``'s echoed fragment, amortized.

        The same (root, fragment, proof) triple is verified by every one
        of the n-1 echo recipients, so the verdict is content-memoized in
        the directory's verify cache — O(distinct fragments) openings per
        run instead of O(n · echoes).  Sound under Byzantine inputs for
        the usual reason: the key is the canonical encoding of everything
        the verdict depends on (including the claimed sender index), so a
        mutated fragment or a replayed proof under a different index
        misses the cache and is verified for real.
        """
        return self.directory.verify_cache.identity_memoize(
            "ctrbc-frag",
            payload,
            (sender, self.n, self.vc_kind),
            (payload.root, payload.fragment, sender, payload.proof,
             self.n, self.vc_kind),
            lambda: self.vc.verify(
                payload.root, payload.fragment, sender, payload.proof, self.n
            ),
        )

    def _on_ready(self, sender: int, payload: CTReady) -> None:
        if not self.vc.is_commitment(payload.root):
            return
        self._readies.setdefault(payload.root, set()).add(sender)
        self._progress(payload.root)

    # -- state machine -------------------------------------------------------------------

    def _progress(self, root: bytes) -> None:
        if root in self._bad_roots:
            return
        fragments = self._fragments.get(root, {})
        readies = self._readies.get(root, ())
        decodable = len(fragments) >= self.quorum or (
            len(readies) >= self.f + 1 and len(fragments) >= self.k
        )
        if root not in self._decoded and decodable:
            self._try_decode(root)
        value_ready = root in self._decoded
        if not self._ready_sent and (value_ready or len(readies) >= self.f + 1):
            # Ready on own decode-and-validate, or amplify f+1 readies
            # (at least one honest party already vouched for the root).
            self._ready_sent = True
            self.multicast(CTReady(root))
        if value_ready and len(readies) >= 2 * self.f + 1:
            self.output(self._decoded[root])

    def _try_decode(self, root: bytes) -> None:
        # The decoded value is a function of the root alone: every
        # fragment in ``_fragments`` carries a proof-valid opening, so it
        # *is* a leaf of the vector the root commits — if any k-subset
        # decodes to data whose re-encoding recommits to the root, the
        # leaves form a codeword and every other subset decodes the same
        # data; if not, no subset can pass the recommit check.  The whole
        # decode→recommit→deserialize pipeline is therefore memoized per
        # (root, k, n, scheme) in the directory cache: one RS decode and
        # one commitment rebuild per distinct root per run, instead of
        # one per party.  ``None`` (root commits no codeword / garbage
        # bytes) is cached too.  External validity stays per instance —
        # two broadcasts may validate the same value differently.
        value = self.directory.verify_cache.memoize(
            "ctrbc-decode",
            (root, self.k, self.n, self.vc_kind),
            lambda: self._decode_codeword(root),
        )
        if value is None or not self._try_validate(value):
            self._bad_roots.add(root)
            return
        self._decoded[root] = value

    def _decode_codeword(self, root: bytes) -> Any:
        """Decode the root's codeword from this party's fragments.

        Returns the deserialized value, or ``None`` when the fragments do
        not decode / the root does not commit the re-encoded codeword /
        the bytes are malformed.
        """
        fragments = self._fragments.get(root, {})
        try:
            data = erasure.rs_decode(fragments, self.k)
        except ValueError:
            return None
        # Re-encode and re-commit: the root must commit exactly this
        # codeword (kept as its own memoized domain so the E10 ablation
        # counters stay comparable).
        if not self.directory.verify_cache.memoize(
            "ctrbc-root",
            (data, root, self.k, self.n, self.vc_kind),
            lambda: self._recommit_matches(data, root),
        ):
            return None
        return wire.deserialize(data)

    def _recommit_matches(self, data: bytes, root: Any) -> bool:
        check_fragments = erasure.rs_encode(data, self.k, self.n)
        return self.vc.commitment_only(check_fragments) == root

    def _try_validate(self, value: Any) -> bool:
        try:
            return bool(self.validate(value))
        except Exception:
            return False
