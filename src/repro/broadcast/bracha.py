"""Bracha's reliable broadcast [11, 12] with optional external validity.

The simple ``O(n²·m)``-word protocol: the dealer sends its value, parties
echo it, and two rounds of amplified ``ready`` votes pin it down.  The
paper uses the erasure-coded variant (:mod:`repro.broadcast.ct_rbc`) for
its complexity results; Bracha is kept as the ablation baseline (E9) and
as the reference implementation the CT variant's tests compare against.

Properties (Section 2.2): Validity, Agreement, Termination; with a
``validate`` predicate also External Validity (only valid values are
echoed, readied or output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.crypto.hashing import hash_bytes
from repro.net.payload import Payload, words_of
from repro.net.protocol import Protocol

Validator = Callable[[Any], bool]


@dataclass(frozen=True)
class BrachaVal(Payload):
    value: Any

    def word_size(self) -> int:
        return max(1, words_of(self.value))


@dataclass(frozen=True)
class BrachaEcho(Payload):
    value: Any

    def word_size(self) -> int:
        return max(1, words_of(self.value))


@dataclass(frozen=True)
class BrachaReady(Payload):
    value: Any

    def word_size(self) -> int:
        return max(1, words_of(self.value))


class BrachaBroadcast(Protocol):
    """One broadcast instance with a designated ``dealer``.

    The dealer's instance takes the ``value`` to broadcast; everyone
    else passes ``None``.  The instance outputs the delivered value.
    """

    #: Declared mutable state — plain dicts/sets of encodable values, so
    #: an instance snapshot/restores without pickle (DESIGN.md section 9).
    STATE_FIELDS = ("_echoed", "_ready_sent", "_echoes", "_readies", "_values")

    def __init__(
        self,
        dealer: int,
        value: Any = None,
        validate: Optional[Validator] = None,
    ) -> None:
        super().__init__()
        self.dealer = dealer
        self.value = value
        self.validate = validate or (lambda _value: True)
        self._echoed = False
        self._ready_sent = False
        self._echoes: dict[bytes, set[int]] = {}
        self._readies: dict[bytes, set[int]] = {}
        self._values: dict[bytes, Any] = {}

    def on_start(self) -> None:
        if self.me == self.dealer:
            if self.value is None:
                raise ValueError("dealer must provide a value")
            self.multicast(BrachaVal(self.value))

    def on_message(self, sender: int, payload: Payload) -> None:
        if isinstance(payload, BrachaVal):
            self._on_val(sender, payload.value)
        elif isinstance(payload, BrachaEcho):
            self._on_vote(sender, payload.value, self._echoes)
        elif isinstance(payload, BrachaReady):
            self._on_vote(sender, payload.value, self._readies)

    # -- handlers -------------------------------------------------------------------

    def _on_val(self, sender: int, value: Any) -> None:
        if sender != self.dealer or self._echoed:
            return
        if not self._try_validate(value):
            return
        self._echoed = True
        self.multicast(BrachaEcho(value))

    def _on_vote(self, sender: int, value: Any, box: dict[bytes, set[int]]) -> None:
        try:
            digest = self._digest(value)
        except TypeError:
            return  # unencodable garbage from a Byzantine sender
        box.setdefault(digest, set()).add(sender)
        self._values.setdefault(digest, value)
        self._progress(digest)

    def _progress(self, digest: bytes) -> None:
        value = self._values[digest]
        echoes = len(self._echoes.get(digest, ()))
        readies = len(self._readies.get(digest, ()))
        if not self._ready_sent and (
            echoes >= self.quorum or readies >= self.f + 1
        ):
            if self._try_validate(value):
                self._ready_sent = True
                self.multicast(BrachaReady(value))
        if readies >= 2 * self.f + 1 and self._try_validate(value):
            self.output(value)

    # -- helpers --------------------------------------------------------------------

    def _digest(self, value: Any) -> bytes:
        from repro.crypto.encoding import encode

        return hash_bytes("bracha-value", encode(value))

    def _try_validate(self, value: Any) -> bool:
        try:
            return bool(self.validate(value))
        except Exception:
            return False
