"""Reliable broadcast protocols (Section 2.2, Appendix A).

Two interchangeable implementations of (validated) reliable broadcast:

* :class:`repro.broadcast.bracha.BrachaBroadcast` — the classic Bracha
  protocol; ``O(n² · m)`` words, used as the ablation baseline (E9);
* :class:`repro.broadcast.ct_rbc.CTBroadcast` — the Cachin-Tessaro
  erasure-coded protocol the paper instantiates (Theorem 6):
  ``O(n²·(c + p) + m·n)`` words with Merkle-tree vector commitments and
  Reed-Solomon dispersal.

Both accept an external ``validate`` predicate, turning them into the
paper's *Validated Reliable Broadcast* (only externally valid values are
ever output).
"""

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.ct_rbc import CTBroadcast
from repro.broadcast.erasure import rs_decode, rs_encode
from repro.broadcast.validated import make_broadcast

__all__ = [
    "BrachaBroadcast",
    "CTBroadcast",
    "rs_encode",
    "rs_decode",
    "make_broadcast",
]
