"""Value (de)serialization for dispersal-style broadcasts.

The erasure-coded broadcast genuinely fragments a byte string; protocol
values (PVSS transcripts, key tuples, ...) are encoded with the registry
byte codec (:mod:`repro.net.codec`) to produce it.  Word accounting is
*not* derived from the byte length — the logical word size of the
original value travels with the fragments so the metered complexity
matches the paper's model (see ``CTVal.word_size``).

``deserialize`` is hardened for Byzantine-dealer inputs by construction:
the codec never executes attacker-chosen constructors the way
``pickle.loads`` would — unknown type ids, truncated buffers and
structurally invalid values all fail closed, surfacing as ``None`` here
and mapped to "dealer faulty" by the broadcast.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net import codec


def serialize(value: Any) -> bytes:
    """Encode a protocol value to deterministic codec bytes."""
    return codec.encode(value)


def deserialize(data: bytes) -> Optional[Any]:
    """Decode bytes back into a value; ``None`` if the bytes are malformed."""
    try:
        return codec.decode(data)
    except codec.CodecError:
        return None
