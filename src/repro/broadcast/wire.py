"""Value (de)serialization for dispersal-style broadcasts.

The erasure-coded broadcast genuinely fragments a byte string; protocol
values (PVSS transcripts, key tuples, ...) are pickled to produce it.
Word accounting is *not* derived from the pickle length — the logical
word size of the original value travels with the fragments so the metered
complexity matches the paper's model (see ``CTFragment.word_size``).

``deserialize`` is restricted-unpickling hardened only lightly: the
simulator passes objects between in-process parties, so the threat model
is malformed bytes (a Byzantine dealer), which surface as exceptions and
are mapped to "dealer faulty".
"""

from __future__ import annotations

import pickle
from typing import Any, Optional


def serialize(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize(data: bytes) -> Optional[Any]:
    """Decode bytes back into a value; ``None`` if the bytes are malformed."""
    try:
        return pickle.loads(data)
    except Exception:
        return None
