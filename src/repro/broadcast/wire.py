"""Value (de)serialization for dispersal-style broadcasts.

The erasure-coded broadcast genuinely fragments a byte string; protocol
values (PVSS transcripts, key tuples, ...) are encoded with the registry
byte codec (:mod:`repro.net.codec`) to produce it.  Word accounting is
*not* derived from the byte length — the logical word size of the
original value travels with the fragments so the metered complexity
matches the paper's model (see ``CTVal.word_size``).

``deserialize`` is hardened for Byzantine-dealer inputs by construction:
the codec never executes attacker-chosen constructors the way
``pickle.loads`` would — unknown type ids, truncated buffers and
structurally invalid values all fail closed, surfacing as ``None`` here
and mapped to "dealer faulty" by the broadcast.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net import codec

#: Content-addressed decode memo: every party decodes the same broadcast
#: codeword, so the bytes→value mapping (pure, deterministic) is computed
#: once per distinct byte string.  Decoded values are frozen dataclasses
#: shared by reference, exactly as the in-process simulator already shares
#: the sender's objects.  Bounded: cleared wholesale when full.
_decode_memo: dict[bytes, Any] = {}
_DECODE_MEMO_LIMIT = 4096


def serialize(value: Any) -> bytes:
    """Encode a protocol value to deterministic codec bytes."""
    return codec.encode(value)


def deserialize(data: bytes) -> Optional[Any]:
    """Decode bytes back into a value; ``None`` if the bytes are malformed."""
    data = bytes(data)
    codec.encode_stats["wire.decode.calls"] += 1
    if data in _decode_memo:
        codec.encode_stats["wire.decode.hits"] += 1
        return _decode_memo[data]
    try:
        value = codec.decode(data)
    except codec.CodecError:
        value = None
    if len(_decode_memo) >= _DECODE_MEMO_LIMIT:
        _decode_memo.clear()
    _decode_memo[data] = value
    return value
