"""Uniform constructor for (validated) reliable broadcast instances.

The Gather protocol and the ablation benchmark (E9) swap broadcast
implementations by name; this factory is the single injection point.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.ct_rbc import CTBroadcast
from repro.net.protocol import Protocol

BROADCAST_KINDS = ("ct", "ct-kzg", "bracha")


def make_broadcast(
    kind: str,
    dealer: int,
    value: Any = None,
    validate: Optional[Callable[[Any], bool]] = None,
) -> Protocol:
    """Build a reliable-broadcast instance of the given ``kind``.

    ``kind`` is ``"ct"`` (the paper's erasure-coded protocol with Merkle
    openings, default everywhere), ``"ct-kzg"`` (Section 7.1's
    constant-size-opening variant, trusted setup), or ``"bracha"`` (the
    ablation baseline).  A non-``None`` ``validate`` yields the Validated
    Reliable Broadcast variant.
    """
    if kind == "ct":
        return CTBroadcast(dealer=dealer, value=value, validate=validate)
    if kind == "ct-kzg":
        return CTBroadcast(
            dealer=dealer, value=value, validate=validate, vc_kind="kzg"
        )
    if kind == "bracha":
        return BrachaBroadcast(dealer=dealer, value=value, validate=validate)
    raise ValueError(f"unknown broadcast kind {kind!r}; choose from {BROADCAST_KINDS}")
