"""Systematic-rate Reed-Solomon erasure coding over GF(2^8).

The Cachin-Tessaro broadcast disperses an ``m``-word message as ``n``
fragments of ``~m/(f+1)`` words such that any ``f+1`` fragments
reconstruct it.  We code over GF(256) (primitive polynomial ``0x11D``,
the field of QR codes and most storage RS codecs), which supports up to
255 fragments — far beyond the party counts any Python simulation of an
``Õ(n³)`` protocol reaches.

``rs_encode`` treats each ``k``-byte block of the (length-prefixed,
zero-padded) message as the coefficients of a degree < k polynomial and
evaluates it at points ``1..n``; ``rs_decode`` Lagrange-interpolates the
coefficients back from any ``k`` fragments.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Mapping, Sequence

_PRIM = 0x11D
_FIELD = 256

_EXP = [0] * 512
_LOG = [0] * 256
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _PRIM
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(256)")
    return _EXP[255 - _LOG[a]]


def _poly_eval(coeffs: Sequence[int], x: int) -> int:
    """Horner evaluation of ``coeffs[0] + coeffs[1]·x + ...`` at ``x``."""
    acc = 0
    for coeff in reversed(coeffs):
        acc = gf_mul(acc, x) ^ coeff
    return acc


@lru_cache(maxsize=256)
def _mul_table(constant: int) -> bytes:
    """A 256-byte ``bytes.translate`` table for multiplication by ``constant``.

    ``data.translate(_mul_table(c))`` multiplies every byte of ``data`` by
    ``c`` in GF(256) at C speed — the whole-column primitive the vectorized
    encoder/decoder below are built from.  At most 255 tables exist, so the
    cache never evicts in practice.
    """
    return bytes(gf_mul(constant, value) for value in range(256))


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    """Bytewise XOR of two equal-length strings (via int arithmetic, C speed)."""
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(len(a), "big")


def _poly_mul(a: Sequence[int], b: Sequence[int]) -> list[int]:
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            if bj:
                out[i + j] ^= gf_mul(ai, bj)
    return out


@lru_cache(maxsize=512)
def _lagrange_matrix(xs: tuple[int, ...], k: int) -> tuple[tuple[int, ...], ...]:
    """``matrix[t][i]`` = coefficient ``t`` of the i-th Lagrange basis poly.

    Cached per point set: every party decoding the same broadcast (and
    every broadcast among the same fastest ``k`` senders) reuses it.
    """
    matrix = [[0] * k for _ in range(k)]
    for i, x_i in enumerate(xs):
        basis = [1]
        denominator = 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            basis = _poly_mul(basis, [x_j, 1])  # (x + x_j) == (x - x_j) in GF(2^m)
            denominator = gf_mul(denominator, x_i ^ x_j)
        scale = gf_inv(denominator)
        for t in range(k):
            matrix[t][i] = gf_mul(basis[t], scale)
    return tuple(tuple(row) for row in matrix)


def fragment_point(index: int) -> int:
    """The evaluation point for fragment ``index`` (1-based: 0 is reserved)."""
    if not 0 <= index < _FIELD - 1:
        raise ValueError(f"fragment index {index} out of range for GF(256)")
    return index + 1


def rs_encode(data: bytes, k: int, n: int) -> list[bytes]:
    """Encode ``data`` into ``n`` fragments, any ``k`` of which reconstruct it."""
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n")
    if n > _FIELD - 1:
        raise ValueError(f"GF(256) supports at most {_FIELD - 1} fragments")
    prefixed = len(data).to_bytes(4, "big") + data
    if len(prefixed) % k:
        prefixed += b"\x00" * (k - len(prefixed) % k)
    # Each k-byte block is a polynomial; fragment j evaluates every block
    # at point x_j.  Vectorized column-wise: coefficient column i (every
    # i-th byte) is scaled by x_j^i with one translate() and the columns
    # are XOR-folded, so the Python-level work is O(k) per fragment
    # instead of O(len(data)).
    columns = [prefixed[i::k] for i in range(k)]
    fragments = []
    for j in range(n):
        x = fragment_point(j)
        acc = columns[0]
        power = 1
        for i in range(1, k):
            power = gf_mul(power, x)
            acc = _xor_bytes(acc, columns[i].translate(_mul_table(power)))
        fragments.append(acc)
    return fragments


def rs_decode(fragments: Mapping[int, bytes], k: int) -> bytes:
    """Reconstruct the message from ``k`` (or more) fragments.

    ``fragments`` maps fragment index → fragment bytes.  Raises
    ``ValueError`` on inconsistent fragment lengths, too few fragments, or
    a decoded length prefix that does not fit the payload (a malformed
    dealer encoding).
    """
    if len(fragments) < k:
        raise ValueError(f"need at least {k} fragments, got {len(fragments)}")
    chosen = sorted(fragments.items())[:k]
    lengths = {len(frag) for _, frag in chosen}
    if len(lengths) != 1:
        raise ValueError("fragments have inconsistent lengths")
    (block_count,) = lengths
    xs = tuple(fragment_point(index) for index, _ in chosen)
    matrix = _lagrange_matrix(xs, k)
    ys = [frag for _, frag in chosen]
    # Vectorized per coefficient position: out[t::k] = Σ_i matrix[t][i]·ys[i],
    # computed with one translate() per (t, i) pair over whole fragments.
    out = bytearray(block_count * k)
    zero = bytes(block_count)
    for t in range(k):
        row = matrix[t]
        acc = zero
        for i in range(k):
            if row[i]:
                acc = _xor_bytes(acc, ys[i].translate(_mul_table(row[i])))
        out[t::k] = acc
    raw = bytes(out)
    length = int.from_bytes(raw[:4], "big")
    if length > len(raw) - 4:
        raise ValueError("decoded length prefix exceeds payload")
    return raw[4 : 4 + length]
