"""External-validity plumbing shared by the core protocols.

A *validator* is a predicate over candidate values (Section 2.2's
``validate: M -> {0,1}``).  Byzantine senders can ship values whose mere
inspection raises (wrong types, malformed transcripts), so every protocol
calls validators through :func:`safe_validate`, which maps exceptions to
"invalid".
"""

from __future__ import annotations

from typing import Any, Callable

Validator = Callable[[Any], bool]


def always_valid(_value: Any) -> bool:
    return True


def safe_validate(validate: Validator, value: Any) -> bool:
    """Run a validator defensively: exceptions mean invalid."""
    try:
        return bool(validate(value))
    except Exception:
        return False
