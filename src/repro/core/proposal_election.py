"""Proposal Election (Section 4, Algorithms 3-5, Theorem 3).

Round 1   every party deals an independent PVSS contribution to every
          other party; party ``i`` aggregates the first ``n-f`` verifying
          contributions addressed to it into its *personal* VRF-DKG
          transcript ``vrf_dkg_i``.
Round 2   party ``i`` inputs ``(prop_i, vrf_dkg_i)`` into Verifiable
          Gather — committing to the pair before the election outcome is
          knowable.
Round 3   after outputting a gather-set, ``i`` reliably broadcasts just
          its *index set* (O(n) words).
Round 4   for every tuple in a gather-set that passed ``GatherVerify``,
          parties release threshold-VRF evaluation shares of
          ``φ(vrf_dkg_k, ⟨k⟩)`` — only now, which is what makes the
          evaluations unbiasable.  With ``n-f`` shares per index the
          evaluations are combined; the proposal with the maximal
          evaluation wins.

α-binding (Theorem 3): the binding core of Gather contains ≥ n-f tuples,
≥ n-2f of them from parties nonfaulty at core-fixing time; each tuple's
evaluation is uniform and independent, so with probability ≥ (n-2f)/n ≥
1/3 the global maximum lands on an honest core tuple — in which case all
parties output that proposal and nothing else verifies.

The output is ``(proposal, proof)`` where the proof is the index set of
the elected party's gather-set; :meth:`verify` is ``PEVerify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.broadcast.validated import make_broadcast
from repro.core.gather import Gather, _valid_index_set
from repro.core.validity import Validator, always_valid, safe_validate
from repro.crypto import pvss, threshold_vrf as tvrf
from repro.net.conditions import Completion
from repro.net.payload import Payload, words_of
from repro.net.protocol import Protocol


@dataclass(frozen=True)
class PEDkgShare(Payload):
    """Round 1: one PVSS contribution dealt to the recipient."""

    contribution: Any

    def word_size(self) -> int:
        return max(1, words_of(self.contribution))

    def verify_tasks(self, directory: Any) -> tuple:
        if isinstance(self.contribution, pvss.PVSSContribution):
            return (("pvss-contrib", (self.contribution,)),)
        return ()


@dataclass(frozen=True)
class PEEvalShare(Payload):
    """Round 4: sender's VRF evaluation share for index ``k``."""

    k: int
    share: Any

    def word_size(self) -> int:
        return 1 + max(1, words_of(self.share))


class ProposalElection(Protocol):
    """One PE instance; outputs ``(proposal, proof)``."""

    #: Declared mutable state.  ``proposal`` is listed although it is a
    #: constructor argument: a parent rebuilding this instance (NWH view
    #: PE) does not know the proposal it originally chose, so the value
    #: rides the snapshot.  ``gather`` (an instance reference) is
    #: deliberately absent — it is re-linked by :meth:`build_child`.
    STATE_FIELDS = (
        "proposal",
        "dkg_contributions",
        "vrf_dkg",
        "gather_output",
        "start_eval",
        "evals",
        "_pending_shares",
        "_verified_shares",
        "_seen_index_bcasts",
    )

    def __init__(
        self,
        proposal: Any,
        validate: Optional[Validator] = None,
        broadcast_kind: str = "ct",
    ) -> None:
        super().__init__()
        self.proposal = proposal
        self.validate = validate or always_valid
        self.broadcast_kind = broadcast_kind
        self.dkg_contributions: list = []
        self.vrf_dkg: Any = None
        self.gather: Optional[Gather] = None
        self.gather_output: Optional[dict] = None
        # start_eval: k -> (prop_k, vrf_dkg_k); evals: k -> VRF output int.
        self.start_eval: dict[int, tuple] = {}
        self.evals: dict[int, int] = {}
        self._pending_shares: dict[int, dict[int, Any]] = {}
        self._verified_shares: dict[int, dict[int, Any]] = {}
        #: dealer -> the index set its broadcast delivered (the set is
        #: kept, not just the dealer, so restore can re-arm the
        #: GatherVerify chain for sets still awaiting verification).
        self._seen_index_bcasts: dict[int, frozenset] = {}

    # -- round 1: VRF-DKG dealing -----------------------------------------------------

    def on_start(self) -> None:
        for j in range(self.n):
            contribution = tvrf.DKGSh(self.directory, self.secret, self.rng)
            self.send(j, PEDkgShare(contribution=contribution))
        # Index-set broadcasts of the other parties can start any time.
        for j in range(self.n):
            if j != self.me:
                self._spawn_index_broadcast(j, None)

    def on_message(self, sender: int, payload: Payload) -> None:
        if isinstance(payload, PEDkgShare):
            self._on_dkg_share(sender, payload.contribution)
        elif isinstance(payload, PEEvalShare):
            self._on_eval_share(sender, payload.k, payload.share)

    def preverify(self, sender: int, payload: Payload) -> tuple:
        """Add eval-share pairing checks once their tuple is committed.

        Only this instance knows which transcript an eval share for ``k``
        will be verified against (``start_eval``); shares for a ``k``
        still racing the gather verification are skipped — they park in
        ``_pending_shares`` and are verified later, without speculation.
        Read-only on protocol state, as the contract requires.
        """
        if isinstance(payload, PEEvalShare) and payload.k in self.start_eval:
            _prop_k, vrf_dkg_k = self.start_eval[payload.k]
            share = payload.share
            if isinstance(share, tvrf.EvalShare) and share.party == sender:
                return (
                    (
                        "tvrf-evalsh",
                        (share, self._eval_message(payload.k), vrf_dkg_k),
                    ),
                )
        return super().preverify(sender, payload)

    def _on_dkg_share(self, sender: int, contribution: Any) -> None:
        if self.vrf_dkg is not None:
            return  # already aggregated
        if any(c.dealer == sender for c in self.dkg_contributions):
            return  # one contribution per dealer
        if not isinstance(contribution, pvss.PVSSContribution):
            return
        if contribution.dealer != sender:
            return
        if not tvrf.DKGShVerify(self.directory, contribution):
            return
        self.dkg_contributions.append(contribution)
        if len(self.dkg_contributions) >= self.quorum:
            self.vrf_dkg = tvrf.DKGAggregate(self.directory, self.dkg_contributions)
            self._start_gather()

    # -- round 2: gather over (proposal, vrf_dkg) ----------------------------------------

    def _make_gather(self) -> Gather:
        directory = self.directory
        validate = self.validate

        def check_validity(pair: Any) -> bool:
            """Algorithm 4: validate(prop) and DKGVerify(vrf_dkg)."""
            if not isinstance(pair, tuple) or len(pair) != 2:
                return False
            prop, dkg = pair
            if not safe_validate(validate, prop):
                return False
            return tvrf.DKGVerify(directory, dkg)

        return Gather(
            my_value=(self.proposal, self.vrf_dkg),
            validate=check_validity,
            broadcast_kind=self.broadcast_kind,
        )

    def _start_gather(self) -> None:
        self.gather = self._make_gather()
        self.spawn("gather", self.gather)

    # -- round 3: broadcast the index set -------------------------------------------------

    def _make_index_broadcast(
        self, dealer: int, value: Optional[frozenset]
    ) -> Protocol:
        n, minimum = self.n, self.quorum
        return make_broadcast(
            self.broadcast_kind,
            dealer,
            value=value,
            validate=lambda s: _valid_index_set(s, n, minimum),
        )

    def _spawn_index_broadcast(self, dealer: int, value: Optional[frozenset]) -> None:
        self.spawn(("idx", dealer), self._make_index_broadcast(dealer, value))

    # -- durability ----------------------------------------------------------------------

    def build_child(self, name: Any) -> Protocol:
        if name == "gather":
            self.gather = self._make_gather()
            return self.gather
        stage, dealer = name
        if stage == "idx":
            return self._make_index_broadcast(dealer, None)
        raise ValueError(f"unknown ProposalElection child {name!r}")

    def rearm(self) -> None:
        # Re-issue the GatherVerify chain for every index broadcast seen:
        # chains already satisfied re-resolve and release no new shares
        # (``_release_shares`` keys off ``start_eval``), chains still
        # pending re-register exactly the conditions the crash dropped.
        for dealer in self._seen_index_bcasts:
            self._arm_index_verify(dealer)
        if self.gather_output is not None:
            self._arm_output_condition()

    def on_sub_output(self, name: Any, value: Any) -> None:
        if name == "gather":
            self.gather_output = value
            self._spawn_index_broadcast(self.me, frozenset(value))
            self._arm_output_condition()
            return
        stage, dealer = name
        if stage == "idx":
            self._on_index_broadcast(dealer, value)

    # -- round 4: release evaluation shares ------------------------------------------------

    def _on_index_broadcast(self, dealer: int, index_set: frozenset) -> None:
        if dealer in self._seen_index_bcasts:
            return
        self._seen_index_bcasts[dealer] = index_set
        self._arm_index_verify(dealer)

    def _arm_index_verify(self, dealer: int) -> None:
        index_set = self._seen_index_bcasts[dealer]
        # The index set may arrive before our own gather even started
        # (we are still collecting DKG shares); defer until it exists.
        self.upon(
            lambda: self.gather is not None,
            lambda: self.gather.verify(index_set).on_done(self._release_shares),
            label=f"pe-idx-{dealer}",
        )

    def _release_shares(self, gather_set: dict) -> None:
        """Send eval shares for every newly seen tuple, then extend start_eval."""
        fresh = {
            k: pair for k, pair in gather_set.items() if k not in self.start_eval
        }
        for k, (prop_k, vrf_dkg_k) in fresh.items():
            share = tvrf.EvalSh(
                self.directory, self.secret, vrf_dkg_k, self._eval_message(k)
            )
            self.multicast(PEEvalShare(k=k, share=share))
        self.start_eval.update(fresh)
        # Shares that raced ahead of the gather verification can be
        # verified now that their tuple is committed.
        for k in fresh:
            for sender, share in self._pending_shares.pop(k, {}).items():
                self._verify_and_absorb(sender, k, share)

    def _eval_message(self, k: int) -> tuple:
        """Domain-separated VRF input ⟨k⟩, unique per PE instance."""
        return ("pe-eval", self.path, k)

    def _on_eval_share(self, sender: int, k: int, share: Any) -> None:
        if not isinstance(k, int) or not 0 <= k < self.n:
            return
        if k in self.start_eval:
            self._verify_and_absorb(sender, k, share)
            return
        slot = self._pending_shares.setdefault(k, {})
        if sender not in slot:  # first eval message from this sender for k
            slot[sender] = share

    def _verify_and_absorb(self, sender: int, k: int, share: Any) -> None:
        if k in self.evals:
            return  # already combined
        verified = self._verified_shares.setdefault(k, {})
        if sender in verified:
            return
        _prop_k, vrf_dkg_k = self.start_eval[k]
        ok = tvrf.EvalShVerify(
            self.directory, vrf_dkg_k, sender, self._eval_message(k), share
        )
        if not ok:
            return
        verified[sender] = share
        if len(verified) >= self.quorum:
            evaluation, _proof = tvrf.Eval(
                self.directory, vrf_dkg_k, self._eval_message(k), list(verified.values())
            )
            self.evals[k] = tvrf.vrf_output(self.directory, evaluation)

    # -- output -----------------------------------------------------------------------------

    def _arm_output_condition(self) -> None:
        def all_evaluated() -> bool:
            return bool(self.gather_output) and all(
                k in self.evals for k in self.gather_output
            )

        def emit() -> None:
            if self.has_output:
                return
            winner = max(
                self.gather_output,
                key=lambda k: (self.evals[k], k),
            )
            proposal, _dkg = self.gather_output[winner]
            proof = frozenset(self.gather_output)
            self.output((proposal, proof))

        self.upon(all_evaluated, emit, label="pe-output")

    # -- PEVerify (Algorithm 5) ----------------------------------------------------------------

    def verify(self, value: Any, proof: Any) -> Completion:
        """``PEVerify_i(x, π)``: resolves iff ``x`` is the elected proposal.

        Never resolves for anything else — under a successful (binding)
        election that means only the unique elected proposal verifies.
        """
        completion = Completion()
        if not _valid_index_set(proof, self.n, self.quorum):
            return completion

        def stage1() -> bool:
            return self.gather is not None and all(
                k in self.evals and k in self.start_eval for k in proof
            )

        def stage2() -> None:
            self.gather.verify(proof).on_done(lambda _gset: check())

        def check() -> None:
            winner = max(proof, key=lambda k: (self.evals[k], k))
            elected_proposal, _dkg = self.start_eval[winner]
            if value == elected_proposal:
                completion.resolve(value)

        self.upon(stage1, stage2, label="pe-verify")
        return completion
