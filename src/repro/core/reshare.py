"""The handoff session: new committee agrees on a reshare bundle via NWH.

Mirrors :mod:`repro.core.adkg` one layer up the key's lifetime: where an
ADKG session *creates* a sharing, a :class:`ReshareAgreement` session
*re-homes* an existing one.  The old committee's dealings are published
before the handoff starts (the membership driver injects each dealing
into at least one new-committee party as an initial input — a departing
party cannot be required to stick around); on start every party fans its
initial dealings out to the whole committee, collects dealings until it
holds ``f_old + 1`` verifying ones from distinct old dealers, bundles
them, and runs NWH with bundle validity
(:func:`repro.crypto.reshare.verify_bundle`, pinned to the locally known
:class:`~repro.crypto.reshare.HandoffSpec`) as the external-validity
predicate.  NWH's certificates (:mod:`repro.core.certificates`) gate the
handoff: the committee commits to *one* valid bundle, and finalization —
a deterministic interpolation of that bundle — gives every party the
same reshared transcript under the invariant group key.

Byzantine or crashed initial holders are tolerated the same way ADKG
tolerates silent dealers: every dealing is signed by its old dealer (a
tampered copy fails verification) and only ``f_old + 1`` of the
``n_old ≥ 3 f_old + 1`` dealings need to survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.nwh import NWH
from repro.crypto import reshare
from repro.net.payload import Payload, words_of
from repro.net.protocol import Protocol

__all__ = ["ReshareAgreement", "ReshareDealingMsg"]


@dataclass(frozen=True)
class ReshareDealingMsg(Payload):
    """One published reshare dealing (⟨reshare_{i,j}⟩), relayed peer-to-peer."""

    dealing: Any

    def word_size(self) -> int:
        return max(1, words_of(self.dealing))


class ReshareAgreement(Protocol):
    """One handoff instance; outputs the finalized reshared transcript."""

    #: Declared mutable state (the ``nwh`` reference is rebuilt by
    #: :meth:`build_child`; ``spec``/``initial`` are constructor inputs
    #: restored by the root factory).
    STATE_FIELDS = ("received", "proposal")

    def __init__(
        self,
        spec: reshare.HandoffSpec,
        initial: tuple = (),
        broadcast_kind: str = "ct",
    ) -> None:
        super().__init__()
        self.spec = spec
        self.initial = tuple(initial)
        self.broadcast_kind = broadcast_kind
        self.received: list = []
        self.proposal: Any = None
        self.nwh: Optional[NWH] = None

    def on_start(self) -> None:
        for dealing in self.initial:
            for j in range(self.n):
                self.send(j, ReshareDealingMsg(dealing=dealing))

    def on_message(self, sender: int, payload: Payload) -> None:
        if not isinstance(payload, ReshareDealingMsg):
            return
        if self.nwh is not None:
            return  # already bundled and agreeing
        dealing = payload.dealing
        if not isinstance(dealing, reshare.ReshareDealing):
            return
        if any(existing.dealer == dealing.dealer for existing in self.received):
            return
        if not reshare.verify_dealing(self.directory, self.spec, dealing):
            return
        self.received.append(dealing)
        if len(self.received) >= self.spec.threshold:
            chosen = sorted(
                self.received[: self.spec.threshold],
                key=lambda d: d.dealer,
            )
            self.proposal = reshare.ReshareBundle(
                spec=self.spec, dealings=tuple(chosen)
            )
            self.nwh = self._make_nwh()
            self.spawn("nwh", self.nwh)

    def _make_nwh(self) -> NWH:
        directory = self.directory
        spec = self.spec
        return NWH(
            my_value=self.proposal,
            validate=lambda bundle: reshare.verify_bundle(
                directory, bundle, expected=spec
            ),
            broadcast_kind=self.broadcast_kind,
        )

    def build_child(self, name: Any) -> Protocol:
        if name == "nwh":
            self.nwh = self._make_nwh()
            return self.nwh
        raise ValueError(f"unknown ReshareAgreement child {name!r}")

    def on_sub_output(self, name: Any, value: Any) -> None:
        if name == "nwh":
            self.output(reshare.finalize(self.directory, value))
