"""The paper's contribution: Gather, Proposal Election, NWH, A-DKG.

* :class:`repro.core.gather.Gather` — Verifiable Gather (Section 3):
  every party's output contains a common core; any index-set passing
  :meth:`Gather.verify` contains it too.
* :class:`repro.core.proposal_election.ProposalElection` — PE (Section 4):
  with probability α ≥ 1/3 all parties elect the same proposal of a party
  that was nonfaulty, and only that proposal passes verification.
* :class:`repro.core.nwh.NWH` — No Waitin' HotStuff (Section 5): a
  Validated Asynchronous Byzantine Agreement protocol driven by PE as a
  per-view "virtual leader".
* :class:`repro.core.adkg.ADKG` — the A-DKG (Section 6): exchange PVSS
  contributions, aggregate, agree with NWH.
"""

from repro.core.gather import Gather
from repro.core.proposal_election import ProposalElection
from repro.core.nwh import NWH
from repro.core.adkg import ADKG

__all__ = ["Gather", "ProposalElection", "NWH", "ADKG"]
