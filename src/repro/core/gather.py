"""Verifiable Gather (Section 3, Algorithms 1-2, Theorem 1).

Every party validated-broadcasts its input (round 1), then reliably
broadcasts two rounds of *index sets*: ``S_i`` (whose round-1 broadcasts
it received) and ``T_i`` (whose ``S`` sets it accepted).  The key
communication trick: rounds 2-3 reference round-1 values purely by party
index, so their broadcasts carry O(n) words, not O(n·m).

Output: the gather-set ``R_i = {(j, x_j)}`` once ``n-f`` ``T`` sets are
accepted.  Binding core (Theorem 1): by a counting argument there is an
index ``i*`` present in ``f+1`` broadcast ``T`` sets, so every party's
output — and every index-set passing :meth:`verify` — contains ``S_{i*}``.

:meth:`verify` is the ``GatherVerify`` protocol: given an index-set ``I``
it resolves (with the gather-set ``{(j, x_j) : j ∈ I}``) once ``I ⊆ S_i``
and at least ``n-f`` accepted ``T``-entries satisfy ``V_j ⊆ I``.
Instances keep updating state after output, as Algorithm 1 requires.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.broadcast.validated import make_broadcast
from repro.core.validity import Validator, always_valid
from repro.net.conditions import Completion
from repro.net.protocol import Protocol


def _valid_index_set(candidate: Any, n: int, minimum: int) -> bool:
    return (
        isinstance(candidate, frozenset)
        and len(candidate) >= minimum
        and all(isinstance(j, int) and 0 <= j < n for j in candidate)
    )


class Gather(Protocol):
    """One Verifiable Gather instance.

    ``my_value`` is this party's externally valid input; ``validate`` the
    common external-validity predicate for round-1 values.  The instance
    outputs the gather-set as a dict ``{j: x_j}`` (a snapshot of ``R_i``).
    """

    #: Declared mutable state.  ``pending_s``/``pending_t`` hold the
    #: index sets whose "upon S_j ⊆ S_i" / "upon T_j ⊆ T_i" clauses have
    #: not fired yet — as fields, not closure captures, so a restored
    #: instance re-derives exactly the pending conditions (:meth:`rearm`).
    STATE_FIELDS = (
        "values",
        "received_from",
        "accepted_s",
        "accepted_u",
        "pending_s",
        "pending_t",
        "_sent_round2",
        "_sent_round3",
    )

    def __init__(
        self,
        my_value: Any,
        validate: Optional[Validator] = None,
        broadcast_kind: str = "ct",
    ) -> None:
        super().__init__()
        self.my_value = my_value
        self.validate = validate or always_valid
        self.broadcast_kind = broadcast_kind
        self.values: dict[int, Any] = {}  # R_i
        self.received_from: set[int] = set()  # S_i
        self.accepted_s: dict[int, frozenset] = {}  # j -> S_j accepted (j ∈ T_i)
        self.accepted_u: dict[int, frozenset] = {}  # j -> V_j (U_i)
        self.pending_s: dict[int, frozenset] = {}  # delivered, not yet ⊆ S_i
        self.pending_t: dict[int, frozenset] = {}  # delivered, not yet ⊆ T_i
        self._sent_round2 = False
        self._sent_round3 = False

    # -- wiring -------------------------------------------------------------------

    def on_start(self) -> None:
        for j in range(self.n):
            value = self.my_value if j == self.me else None
            self.spawn(
                ("vrb", j),
                make_broadcast(
                    self.broadcast_kind, j, value=value, validate=self.validate
                ),
            )
            if j != self.me:
                self._spawn_round(2, j, None)
                self._spawn_round(3, j, None)

    def _index_set_broadcast(self, dealer: int, value: Optional[frozenset]) -> Protocol:
        minimum = self.quorum
        n = self.n
        return make_broadcast(
            self.broadcast_kind,
            dealer,
            value=value,
            validate=lambda s: _valid_index_set(s, n, minimum),
        )

    def _spawn_round(self, round_no: int, dealer: int, value: Optional[frozenset]) -> None:
        self.spawn(
            (f"rb{round_no}", dealer), self._index_set_broadcast(dealer, value)
        )

    def build_child(self, name: Any) -> Protocol:
        stage, dealer = name
        if stage == "vrb":
            return make_broadcast(
                self.broadcast_kind, dealer, value=None, validate=self.validate
            )
        if stage in ("rb2", "rb3"):
            return self._index_set_broadcast(dealer, None)
        raise ValueError(f"unknown Gather child {name!r}")

    def rearm(self) -> None:
        for j in self.pending_s:
            self._arm_s(j)
        for j in self.pending_t:
            self._arm_t(j)

    # -- sub-protocol outputs ----------------------------------------------------------

    def on_sub_output(self, name: Any, value: Any) -> None:
        stage, dealer = name
        if stage == "vrb":
            self._on_value(dealer, value)
        elif stage == "rb2":
            self._on_s_set(dealer, value)
        elif stage == "rb3":
            self._on_t_set(dealer, value)

    def _on_value(self, j: int, x_j: Any) -> None:
        """Round 1: ⟨1, x_j⟩ delivered from j's validated broadcast."""
        if j in self.values:
            return
        self.values[j] = x_j
        self.received_from.add(j)
        if not self._sent_round2 and len(self.received_from) >= self.quorum:
            self._sent_round2 = True
            self._spawn_round(2, self.me, frozenset(self.received_from))

    def _on_s_set(self, j: int, s_j: frozenset) -> None:
        """Round 2: accept ⟨2, S_j⟩ once S_j ⊆ S_i (persistent condition)."""
        if j in self.accepted_s or j in self.pending_s:
            return
        self.pending_s[j] = s_j
        self._arm_s(j)

    def _arm_s(self, j: int) -> None:
        self.upon(
            lambda: self.pending_s[j] <= self.received_from,
            lambda: self._accept_s(j),
            label=f"gather-accept-S-{j}",
        )

    def _accept_s(self, j: int) -> None:
        self.accepted_s[j] = self.pending_s.pop(j)
        if not self._sent_round3 and len(self.accepted_s) >= self.quorum:
            self._sent_round3 = True
            self._spawn_round(3, self.me, frozenset(self.accepted_s))

    def _on_t_set(self, j: int, t_j: frozenset) -> None:
        """Round 3: accept ⟨3, T_j⟩ once T_j ⊆ T_i, then record V_j."""
        if j in self.accepted_u or j in self.pending_t:
            return
        self.pending_t[j] = t_j
        self._arm_t(j)

    def _arm_t(self, j: int) -> None:
        self.upon(
            lambda: self.pending_t[j] <= self.accepted_s.keys(),
            lambda: self._accept_t(j),
            label=f"gather-accept-T-{j}",
        )

    def _accept_t(self, j: int) -> None:
        t_j = self.pending_t.pop(j)
        union: set[int] = set()
        for k in t_j:
            union |= self.accepted_s[k]
        self.accepted_u[j] = frozenset(union)
        if not self.has_output and len(self.accepted_u) >= self.quorum:
            self.output(dict(self.values))

    # -- GatherVerify (Algorithm 2) ------------------------------------------------------

    def verify(self, index_set: Any) -> Completion:
        """Start ``GatherVerify_i(I)``; resolves with ``{j: x_j for j ∈ I}``.

        Per the paper's termination semantics, the completion simply never
        resolves for index-sets that are not verifiable (e.g. missing the
        binding core).
        """
        completion = Completion()
        if not _valid_index_set(index_set, self.n, self.quorum):
            return completion  # structurally invalid: never verifies

        def satisfied() -> bool:
            if not index_set <= self.received_from:
                return False
            covered = sum(
                1 for v_j in self.accepted_u.values() if v_j <= index_set
            )
            return covered >= self.quorum

        self.upon(
            satisfied,
            lambda: completion.resolve({j: self.values[j] for j in index_set}),
            label="gather-verify",
        )
        return completion
