"""Key / lock / commit certificates for NWH (Algorithms 11-13, Definition 3).

A certificate is ``n - f`` signed votes on ``(kind, H(value), view)``.
Values can be large (an aggregated PVSS transcript is O(n) words), so
votes sign the canonical digest of the value; the certificate travels
with the value itself, and the checker re-derives the digest.

Per the paper, keys and locks from before the first view (``view == 0``)
are vacuously correct, and ``keyCorrect`` additionally demands external
validity of the value (Algorithm 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto import schnorr
from repro.crypto.encoding import encode
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import PartySecret, PublicDirectory
from repro.core.validity import Validator, safe_validate

KIND_ECHO = "echo"
KIND_KEY = "key"
KIND_LOCK = "lock"

_CHAIN = {KIND_ECHO: KIND_ECHO, KIND_KEY: KIND_ECHO, KIND_LOCK: KIND_KEY}


@dataclass(frozen=True)
class SignedVote:
    """One party's signature on ``(kind, H(value), view)``."""

    signer: int
    signature: schnorr.Signature

    def word_size(self) -> int:
        return 1


Certificate = tuple  # tuple[SignedVote, ...]


def value_digest(value: Any) -> bytes:
    """Canonical digest of an agreement value (possibly large)."""
    try:
        return hash_bytes("nwh-value", encode(value))
    except TypeError:
        return hash_bytes("nwh-value-opaque", repr(value))


def make_vote(
    directory: PublicDirectory,
    secret: PartySecret,
    kind: str,
    value: Any,
    view: int,
) -> SignedVote:
    """Sign ``(kind, H(value), view)`` — the paper's σ on ⟨kind, v, view⟩."""
    signature = schnorr.sign(
        directory.sign_group,
        secret.sign,
        "nwh-vote",
        directory.session,
        kind,
        value_digest(value),
        view,
    )
    return SignedVote(signer=secret.index, signature=signature)


def vote_valid(
    directory: PublicDirectory,
    vote: Any,
    kind: str,
    value: Any,
    view: int,
) -> bool:
    if not isinstance(vote, SignedVote):
        return False
    if not 0 <= vote.signer < directory.n:
        return False
    return schnorr.verify(
        directory.sign_group,
        directory.sign_pks[vote.signer],
        vote.signature,
        "nwh-vote",
        directory.session,
        kind,
        value_digest(value),
        view,
    )


def certificate_valid(
    directory: PublicDirectory,
    proof: Any,
    kind: str,
    value: Any,
    view: int,
) -> bool:
    """``n - f`` distinct valid votes on ``(kind, H(value), view)``."""
    if not isinstance(proof, tuple):
        return False
    signers = set()
    for vote in proof:
        if not vote_valid(directory, vote, kind, value, view):
            return False
        signers.add(vote.signer)
    return len(signers) >= directory.quorum


def key_correct(
    directory: PublicDirectory,
    validate: Validator,
    view: int,
    value: Any,
    proof: Any,
) -> bool:
    """Algorithm 11: external validity + echo-certificate (or view 0)."""
    if not safe_validate(validate, value):
        return False
    if not isinstance(view, int) or view < 0:
        return False
    if view == 0:
        return True
    return certificate_valid(directory, proof, KIND_ECHO, value, view)


def lock_correct(
    directory: PublicDirectory,
    view: int,
    value: Any,
    proof: Any,
) -> bool:
    """Algorithm 12: key-certificate (or view 0)."""
    if not isinstance(view, int) or view < 0:
        return False
    if view == 0:
        return True
    return certificate_valid(directory, proof, KIND_KEY, value, view)


def commit_correct(
    directory: PublicDirectory,
    view: int,
    value: Any,
    proof: Any,
) -> bool:
    """Algorithm 13: lock-certificate (no view-0 escape hatch)."""
    if not isinstance(view, int) or view < 1:
        return False
    return certificate_valid(directory, proof, KIND_LOCK, value, view)


@dataclass(frozen=True)
class KeyTuple:
    """The (key, key_val, key_proof) triple NWH feeds into PE.

    ``view == 0`` means "no key yet" — ``value`` is then the party's own
    input and ``proof`` is ``None`` (the paper's ``(0, x_i, ⊥)``).
    """

    view: int
    value: Any
    proof: Optional[Certificate]

    def word_size(self) -> int:
        from repro.net.payload import words_of

        proof_words = words_of(self.proof) if self.proof else 0
        return 1 + max(1, words_of(self.value)) + proof_words


def key_tuple_correct(
    directory: PublicDirectory, validate: Validator, candidate: Any
) -> bool:
    """External-validity predicate over :class:`KeyTuple` values."""
    if not isinstance(candidate, KeyTuple):
        return False
    return key_correct(
        directory, validate, candidate.view, candidate.value, candidate.proof
    )
