"""Key / lock / commit certificates for NWH (Algorithms 11-13, Definition 3).

A certificate is ``n - f`` signed votes on ``(kind, H(value), view)``.
Values can be large (an aggregated PVSS transcript is O(n) words), so
votes sign the canonical digest of the value; the certificate travels
with the value itself, and the checker re-derives the digest.

Per the paper, keys and locks from before the first view (``view == 0``)
are vacuously correct, and ``keyCorrect`` additionally demands external
validity of the value (Algorithm 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto import pool, schnorr
from repro.crypto.encoding import encode
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import PartySecret, PublicDirectory
from repro.crypto.verify_cache import IdentityMemo
from repro.core.validity import Validator, safe_validate

KIND_ECHO = "echo"
KIND_KEY = "key"
KIND_LOCK = "lock"

_CHAIN = {KIND_ECHO: KIND_ECHO, KIND_KEY: KIND_ECHO, KIND_LOCK: KIND_KEY}


@dataclass(frozen=True)
class SignedVote:
    """One party's signature on ``(kind, H(value), view)``."""

    signer: int
    signature: schnorr.Signature

    def word_size(self) -> int:
        return 1


Certificate = tuple  # tuple[SignedVote, ...]


#: Identity memo for :func:`value_digest`: agreement values (aggregated
#: PVSS transcripts) are O(n) words and every vote check re-derives their
#: digest, so the same immutable object is hashed once, not once per vote.
_digest_memo = IdentityMemo()


def value_digest(value: Any) -> bytes:
    """Canonical digest of an agreement value (possibly large)."""
    cached = _digest_memo.get(value)
    if cached is not None:
        return cached
    try:
        digest = hash_bytes("nwh-value", encode(value))
    except TypeError:
        digest = hash_bytes("nwh-value-opaque", repr(value))
    _digest_memo.put(value, digest)
    return digest


def make_vote(
    directory: PublicDirectory,
    secret: PartySecret,
    kind: str,
    value: Any,
    view: int,
) -> SignedVote:
    """Sign ``(kind, H(value), view)`` — the paper's σ on ⟨kind, v, view⟩."""
    signature = schnorr.sign(
        directory.sign_group,
        secret.sign,
        "nwh-vote",
        directory.session,
        kind,
        value_digest(value),
        view,
    )
    return SignedVote(signer=secret.index, signature=signature)


def vote_valid(
    directory: PublicDirectory,
    vote: Any,
    kind: str,
    value: Any,
    view: int,
) -> bool:
    """One vote's signature check, memoized per ``(vote, kind, digest, view)``.

    The value enters the key only through its canonical digest — exactly
    what the signature covers — so votes forwarded inside many
    certificates are verified once per distinct vote.
    """
    if not isinstance(vote, SignedVote):
        return False
    if not 0 <= vote.signer < directory.n:
        return False
    digest = value_digest(value)

    def check() -> bool:
        return schnorr.verify(
            directory.sign_group,
            directory.sign_pks[vote.signer],
            vote.signature,
            "nwh-vote",
            directory.session,
            kind,
            digest,
            view,
        )

    return directory.verify_cache.identity_memoize(
        "cert-vote", vote, (kind, digest, view), (vote, kind, digest, view), check
    )


def certificate_valid(
    directory: PublicDirectory,
    proof: Any,
    kind: str,
    value: Any,
    view: int,
) -> bool:
    """``n - f`` distinct valid votes on ``(kind, H(value), view)``.

    Memoized per distinct certificate: NWH re-checks the same echo/key/
    lock certificates inside every message that forwards them.
    """
    if not isinstance(proof, tuple):
        return False

    def check() -> bool:
        signers = set()
        for vote in proof:
            if not vote_valid(directory, vote, kind, value, view):
                return False
            signers.add(vote.signer)
        return len(signers) >= directory.quorum

    return directory.verify_cache.memoize(
        "cert", (proof, kind, value_digest(value), view), check
    )


def key_correct(
    directory: PublicDirectory,
    validate: Validator,
    view: int,
    value: Any,
    proof: Any,
) -> bool:
    """Algorithm 11: external validity + echo-certificate (or view 0)."""
    if not safe_validate(validate, value):
        return False
    if not isinstance(view, int) or view < 0:
        return False
    if view == 0:
        return True
    return certificate_valid(directory, proof, KIND_ECHO, value, view)


def lock_correct(
    directory: PublicDirectory,
    view: int,
    value: Any,
    proof: Any,
) -> bool:
    """Algorithm 12: key-certificate (or view 0)."""
    if not isinstance(view, int) or view < 0:
        return False
    if view == 0:
        return True
    return certificate_valid(directory, proof, KIND_KEY, value, view)


def commit_correct(
    directory: PublicDirectory,
    view: int,
    value: Any,
    proof: Any,
) -> bool:
    """Algorithm 13: lock-certificate (no view-0 escape hatch)."""
    if not isinstance(view, int) or view < 1:
        return False
    return certificate_valid(directory, proof, KIND_LOCK, value, view)


@dataclass(frozen=True)
class KeyTuple:
    """The (key, key_val, key_proof) triple NWH feeds into PE.

    ``view == 0`` means "no key yet" — ``value`` is then the party's own
    input and ``proof`` is ``None`` (the paper's ``(0, x_i, ⊥)``).
    """

    view: int
    value: Any
    proof: Optional[Certificate]

    def word_size(self) -> int:
        from repro.net.payload import words_of

        proof_words = words_of(self.proof) if self.proof else 0
        return 1 + max(1, words_of(self.value)) + proof_words


def key_tuple_correct(
    directory: PublicDirectory, validate: Validator, candidate: Any
) -> bool:
    """External-validity predicate over :class:`KeyTuple` values."""
    if not isinstance(candidate, KeyTuple):
        return False
    return key_correct(
        directory, validate, candidate.view, candidate.value, candidate.proof
    )


# -- process-pool worker verifiers (see repro.crypto.pool) ---------------------------
#
# Byte-level equivalents of vote_valid / certificate_valid: the memoized
# parts carry the value only through its canonical digest, which is
# exactly what the signatures cover, so a worker verifies from the parts
# alone.  Neither registers ``demand=True``: the inline "cert" check
# walks vote_valid (populating the shared cert-vote counters), so
# offloading it would change the structural stats the benchmarks pin.


def _pool_vote_valid(directory: PublicDirectory, parts: tuple) -> bool:
    vote, kind, digest, view = parts
    if not isinstance(vote, SignedVote):
        return False
    if not 0 <= vote.signer < directory.n:
        return False
    return schnorr.verify(
        directory.sign_group,
        directory.sign_pks[vote.signer],
        vote.signature,
        "nwh-vote",
        directory.session,
        kind,
        digest,
        view,
    )


def _pool_certificate_valid(directory: PublicDirectory, parts: tuple) -> bool:
    proof, kind, digest, view = parts
    if not isinstance(proof, tuple):
        return False
    signers = set()
    for vote in proof:
        if not _pool_vote_valid(directory, (vote, kind, digest, view)):
            return False
        signers.add(vote.signer)
    return len(signers) >= directory.quorum


pool.register_worker("cert-vote", _pool_vote_valid)
pool.register_worker("cert", _pool_certificate_valid)
