"""No Waitin' HotStuff (Section 5, Algorithms 6-13, Theorem 4).

NWH is a Validated Asynchronous Byzantine Agreement protocol in the
HotStuff Key-Lock-Commit family.  Each *view* runs one Proposal Election
as a "virtual leader":

1. ``viewChange`` (Algorithm 8): everyone sends its current key in a
   ``suggest``; with ``n-f`` correct suggestions, the freshest key (or the
   party's own input, as a view-0 key) is fed into the view's PE.
2. On a PE output ``(k, v, π_key), π_election``: if the key is recent
   enough to open the local lock (``view > k ≥ lock``), sign and ``echo``
   it; otherwise ``blame`` with the lock as evidence and move on
   (Algorithm 10 / 9).
3. ``n-f`` PE-verified echoes on one tuple → set the *key* and send a
   ``key`` vote; ``n-f`` key votes → set the *lock* and send a ``lock``
   vote; ``n-f`` lock votes → ``commit``, output, terminate.
4. ``checkTermination`` (Algorithm 7) runs across views: any correct
   ``commit`` message is forwarded to everyone and adopted.
5. Fault paths: a PE-verified tuple too old for a correct lock justifies
   a ``blame``; two different PE-verified tuples justify an
   ``equivocate``.  Either (once verified locally) is forwarded and the
   view advances — no waiting, hence the name.

Safety comes from quorum-intersection over the vote certificates
(Lemmas 5-6); liveness from PE's completeness/agreement-on-verification
(Lemma 8) and termination from PE's α-binding: each view independently
succeeds with probability ≥ 1/3, so the number of views is geometric
(Lemma 10, Theorem 9).

Messages of old views are dropped (except ``commit``); messages of
future views are buffered, exactly as Algorithm 6's "delay any message
from any view v > view_i" prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core import certificates as certs
from repro.core.certificates import KeyTuple, SignedVote
from repro.core.proposal_election import ProposalElection
from repro.core.validity import Validator, always_valid
from repro.crypto import pvss
from repro.net.payload import Payload, words_of
from repro.net.protocol import Protocol


def _transcript_tasks(directory: Any, *values: Any) -> tuple:
    """Speculation tasks for every PVSS transcript a message carries.

    NWH's external-validity check on agreement values is ``DKGVerify`` —
    ``verify_transcript(·, 2f+1)`` — so that is the check worth warming.
    ``KeyTuple`` wrappers are unwrapped; anything else (including forged
    non-transcript values) yields no task, which is merely unhelpful,
    never unsound.
    """
    tasks = []
    seen: set[int] = set()
    for value in values:
        if isinstance(value, KeyTuple):
            value = value.value
        if isinstance(value, pvss.PVSSTranscript) and id(value) not in seen:
            seen.add(id(value))
            tasks.append(("pvss-transcript", (value, 2 * directory.f + 1)))
    return tuple(tasks)


@dataclass(frozen=True)
class Suggest(Payload):
    key: Any
    view: int

    def word_size(self) -> int:
        return 1 + words_of(self.key)

    def verify_tasks(self, directory: Any) -> tuple:
        return _transcript_tasks(directory, self.key)


@dataclass(frozen=True)
class EchoMsg(Payload):
    key: Any  # KeyTuple output by PE
    election_proof: Any
    vote: Any  # SignedVote on ⟨echo, H(v), view⟩
    view: int

    def word_size(self) -> int:
        return 2 + words_of(self.key) + words_of(self.election_proof)

    def verify_tasks(self, directory: Any) -> tuple:
        return _transcript_tasks(directory, self.key)


@dataclass(frozen=True)
class KeyVoteMsg(Payload):
    value: Any
    proof: Any  # echo-certificate
    vote: Any  # SignedVote on ⟨key, H(v), view⟩
    view: int

    def word_size(self) -> int:
        return 2 + max(1, words_of(self.value)) + words_of(self.proof)

    def verify_tasks(self, directory: Any) -> tuple:
        return _transcript_tasks(directory, self.value)


@dataclass(frozen=True)
class LockVoteMsg(Payload):
    value: Any
    proof: Any  # key-certificate
    vote: Any  # SignedVote on ⟨lock, H(v), view⟩
    view: int

    def word_size(self) -> int:
        return 2 + max(1, words_of(self.value)) + words_of(self.proof)

    def verify_tasks(self, directory: Any) -> tuple:
        return _transcript_tasks(directory, self.value)


@dataclass(frozen=True)
class CommitMsg(Payload):
    value: Any
    proof: Any  # lock-certificate
    view: int

    def word_size(self) -> int:
        return 1 + max(1, words_of(self.value)) + words_of(self.proof)

    def verify_tasks(self, directory: Any) -> tuple:
        return _transcript_tasks(directory, self.value)


@dataclass(frozen=True)
class BlameMsg(Payload):
    key: Any  # PE output tuple
    election_proof: Any
    lock_view: int
    lock_value: Any
    lock_proof: Any
    view: int

    def word_size(self) -> int:
        return 2 + words_of(self.key) + words_of(self.election_proof) + (
            max(1, words_of(self.lock_value)) + words_of(self.lock_proof)
        )

    def verify_tasks(self, directory: Any) -> tuple:
        return _transcript_tasks(directory, self.key, self.lock_value)


@dataclass(frozen=True)
class EquivocateMsg(Payload):
    key_a: Any
    proof_a: Any
    key_b: Any
    proof_b: Any
    view: int

    def word_size(self) -> int:
        return 1 + sum(
            words_of(part)
            for part in (self.key_a, self.proof_a, self.key_b, self.proof_b)
        )

    def verify_tasks(self, directory: Any) -> tuple:
        return _transcript_tasks(directory, self.key_a, self.key_b)


class NWH(Protocol):
    """One NWH (VABA) instance; outputs the agreed externally valid value."""

    #: Declared mutable state.  ``my_value`` rides the snapshot (it seeds
    #: view-0 keys long after ``on_start``); the ``_pe`` instance-reference
    #: map is rebuilt by :meth:`build_child`.  The ``*_seen`` journals hold
    #: every fault-relevant message whose PEVerify chain may still be
    #: pending, so :meth:`rearm` can re-derive those chains exactly.
    STATE_FIELDS = (
        "my_value",
        "view",
        "terminated",
        "key_view",
        "key_value",
        "key_proof",
        "lock_view",
        "lock_value",
        "lock_proof",
        "_suggestions",
        "_pe_started",
        "_echoes",
        "_echo_seen",
        "_echo_tuple",
        "_key_votes",
        "_lock_votes",
        "_key_sent",
        "_lock_sent",
        "_commit_sent",
        "_advanced",
        "_blame_seen",
        "_equiv_seen",
        "_future",
        "_commit_forwarded",
        "views_entered",
    )

    def __init__(
        self,
        my_value: Any,
        validate: Optional[Validator] = None,
        broadcast_kind: str = "ct",
    ) -> None:
        super().__init__()
        self.my_value = my_value
        self.validate = validate or always_valid
        self.broadcast_kind = broadcast_kind
        self.view = 1
        self.terminated = False
        # Key / lock fields (Algorithm 6 lines 1-2; Lemma 7's invariant
        # needs view-0 fields to carry the party's own valid input).
        self.key_view = 0
        self.key_value = my_value
        self.key_proof: Any = None
        self.lock_view = 0
        self.lock_value = my_value
        self.lock_proof: Any = None
        # Per-view state.
        self._suggestions: dict[int, dict[int, KeyTuple]] = {}
        self._pe: dict[int, ProposalElection] = {}
        self._pe_started: set[int] = set()
        self._echoes: dict[int, dict[int, tuple]] = {}
        self._echo_seen: dict[int, list[tuple[int, EchoMsg]]] = {}
        self._echo_tuple: dict[int, tuple] = {}  # view -> (key_tuple, proof)
        self._key_votes: dict[int, dict[int, SignedVote]] = {}
        self._lock_votes: dict[int, dict[int, SignedVote]] = {}
        self._key_sent: set[int] = set()
        self._lock_sent: set[int] = set()
        self._commit_sent: set[int] = set()
        self._advanced: set[int] = set()
        self._blame_seen: dict[int, list[tuple[int, BlameMsg]]] = {}
        self._equiv_seen: dict[int, list[tuple[int, EquivocateMsg]]] = {}
        self._future: dict[int, list[tuple[int, Payload]]] = {}
        self._commit_forwarded = False
        self.views_entered = 1

    # -- lifecycle ---------------------------------------------------------------------

    def on_start(self) -> None:
        self._start_view(1)

    def _start_view(self, view: int) -> None:
        """Algorithm 8 viewChange: announce the current key."""
        key = KeyTuple(self.key_view, self.key_value, self.key_proof)
        self.multicast(Suggest(key=key, view=view))

    # -- dispatch -----------------------------------------------------------------------

    def on_message(self, sender: int, payload: Payload) -> None:
        if isinstance(payload, CommitMsg):
            self._on_commit(sender, payload)
            return
        if self.terminated:
            return
        view = getattr(payload, "view", None)
        if not isinstance(view, int) or view < 1:
            return
        if view > self.view:
            self._future.setdefault(view, []).append((sender, payload))
            return
        if view < self.view:
            return  # old-view messages are dropped (Algorithm 6)
        self._dispatch(sender, payload)

    def _dispatch(self, sender: int, payload: Payload) -> None:
        if isinstance(payload, Suggest):
            self._on_suggest(sender, payload)
        elif isinstance(payload, EchoMsg):
            self._on_echo(sender, payload)
        elif isinstance(payload, KeyVoteMsg):
            self._on_key_vote(sender, payload)
        elif isinstance(payload, LockVoteMsg):
            self._on_lock_vote(sender, payload)
        elif isinstance(payload, BlameMsg):
            self._on_blame(sender, payload)
        elif isinstance(payload, EquivocateMsg):
            self._on_equivocate(sender, payload)

    #: Per-(view, sender) cap on journaled blame/equivocate messages
    #: (echoes are deduped to one per sender).  An honest sender
    #: originates at most one fault message per view and forwards at
    #: most one more, so 4 is generous — and because the bound is per
    #: sender, a Byzantine spammer can fill only its own allowance,
    #: never censor honest fault messages out of a shared pool.  Total
    #: journal growth is ≤ 4n per view, matching the bounded-buffer
    #: posture of the rest of the stack (and keeping freeze() blobs
    #: bounded).
    PER_SENDER_FAULT_CAP = 4

    def _journal_fault(self, journal: dict, view: int, sender: int, payload) -> bool:
        """Admit one fault message into a per-view journal, bounded.

        Exact duplicates (e.g. the same blame forwarded by several
        parties) are dropped regardless of sender; beyond that each
        sender may hold :data:`PER_SENDER_FAULT_CAP` distinct entries.
        Returns True iff the message was admitted (and should arm its
        verification chain).
        """
        entries = journal.setdefault(view, [])
        from_sender = 0
        for seen_sender, seen_payload in entries:
            if seen_payload == payload:
                return False
            if seen_sender == sender:
                from_sender += 1
        if from_sender >= self.PER_SENDER_FAULT_CAP:
            return False
        entries.append((sender, payload))
        return True

    def _advance_view(self, from_view: int) -> None:
        if self.terminated or self.view != from_view:
            return
        self.view = from_view + 1
        self.views_entered += 1
        # Journals of past views are dead weight (rearm only re-derives
        # the current view's chains); free them as the view moves on.
        for journal in (self._echo_seen, self._blame_seen, self._equiv_seen):
            for view in [v for v in journal if v < self.view]:
                del journal[view]
        self._start_view(self.view)
        buffered = self._future.pop(self.view, [])
        for sender, payload in buffered:
            if self.terminated or self.view != from_view + 1:
                # A buffered fault message advanced us again; re-buffer the
                # rest through the normal path.
                self.on_message(sender, payload)
            else:
                self._dispatch(sender, payload)

    # -- viewChange: suggestions and PE (Algorithm 8) --------------------------------------

    def _on_suggest(self, sender: int, payload: Suggest) -> None:
        view = payload.view
        box = self._suggestions.setdefault(view, {})
        if sender in box:
            return
        key = payload.key
        if not isinstance(key, KeyTuple) or key.view >= view:
            return
        if not certs.key_correct(
            self.directory, self.validate, key.view, key.value, key.proof
        ):
            return
        box[sender] = key
        if len(box) >= self.quorum and view not in self._pe_started:
            self._pe_started.add(view)
            chosen = max(box.values(), key=lambda kt: kt.view)
            if chosen.view == 0:
                chosen = KeyTuple(0, self.my_value, None)
            self._spawn_pe(view, chosen)

    def _make_pe(self, proposal: Optional[KeyTuple]) -> ProposalElection:
        directory, validate = self.directory, self.validate

        def key_tuple_valid(candidate: Any) -> bool:
            if not isinstance(candidate, KeyTuple):
                return False
            return certs.key_correct(
                directory, validate, candidate.view, candidate.value, candidate.proof
            )

        return ProposalElection(
            proposal=proposal,
            validate=key_tuple_valid,
            broadcast_kind=self.broadcast_kind,
        )

    def _spawn_pe(self, view: int, proposal: KeyTuple) -> None:
        pe = self._make_pe(proposal)
        self._pe[view] = pe
        self.spawn(("pe", view), pe)

    # -- durability ---------------------------------------------------------------------

    def build_child(self, name: Any) -> Protocol:
        stage, view = name
        if stage == "pe":
            # The elected proposal is part of the PE's own snapshot; the
            # placeholder is overwritten before the PE ever reads it.
            pe = self._make_pe(None)
            self._pe[view] = pe
            return pe
        raise ValueError(f"unknown NWH child {name!r}")

    def rearm(self) -> None:
        """Re-derive the PEVerify chains pending for the current view.

        Chains for older views are dead weight (their callbacks guard on
        ``view != self.view``) and are not re-created; chains whose work
        already completed re-fire idempotently (echo senders already in
        the view's echo box are skipped, fault advances guard on
        ``_advanced``/``terminated``).
        """
        if self.terminated:
            return
        view = self.view
        counted = self._echoes.get(view, {})
        for sender, payload in self._echo_seen.get(view, []):
            if sender not in counted:
                self._arm_echo_verify(sender, payload)
        for _sender, payload in self._blame_seen.get(view, []):
            self._arm_blame_verify(payload)
        for _sender, payload in self._equiv_seen.get(view, []):
            self._arm_equivocate_verify(payload)

    def on_sub_output(self, name: Any, value: Any) -> None:
        stage, view = name
        if stage != "pe" or self.terminated or view != self.view:
            return
        key_tuple, election_proof = value
        self._on_pe_output(view, key_tuple, election_proof)

    # -- Algorithm 10 lines 2-8: react to the virtual leader -------------------------------

    def _on_pe_output(self, view: int, key_tuple: KeyTuple, election_proof: Any) -> None:
        if view > key_tuple.view >= self.lock_view:
            vote = certs.make_vote(
                self.directory, self.secret, certs.KIND_ECHO, key_tuple.value, view
            )
            self.multicast(
                EchoMsg(
                    key=key_tuple,
                    election_proof=election_proof,
                    vote=vote,
                    view=view,
                )
            )
        else:
            self.multicast(
                BlameMsg(
                    key=key_tuple,
                    election_proof=election_proof,
                    lock_view=self.lock_view,
                    lock_value=self.lock_value,
                    lock_proof=self.lock_proof,
                    view=view,
                )
            )
            self._advance_view(view)

    # -- echo -> key -> lock -> commit pipeline ----------------------------------------------

    def _when_pe_verifies(self, view: int, key_tuple: Any, proof: Any, action) -> None:
        """Run ``action`` once PEVerify_{i,view}(key_tuple, proof) terminates."""

        def pe_exists() -> bool:
            return view in self._pe

        def chain() -> None:
            self._pe[view].verify(key_tuple, proof).on_done(lambda _v: action())

        self.upon(pe_exists, chain, label=f"nwh-pe-verify-{view}")

    def _on_echo(self, sender: int, payload: EchoMsg) -> None:
        view = payload.view
        key_tuple = payload.key
        if not isinstance(key_tuple, KeyTuple):
            return
        if not certs.vote_valid(
            self.directory, payload.vote, certs.KIND_ECHO, key_tuple.value, view
        ):
            return
        if payload.vote.signer != sender:
            return
        journal = self._echo_seen.setdefault(view, [])
        if any(seen_sender == sender for seen_sender, _msg in journal):
            return  # one pending-verification echo per sender per view
        journal.append((sender, payload))
        self._arm_echo_verify(sender, payload)

    def _arm_echo_verify(self, sender: int, payload: EchoMsg) -> None:
        def verified() -> None:
            self._on_verified_echo(sender, payload)

        self._when_pe_verifies(
            payload.view, payload.key, payload.election_proof, verified
        )

    def _on_verified_echo(self, sender: int, payload: EchoMsg) -> None:
        view = payload.view
        if self.terminated or view != self.view:
            return
        box = self._echoes.setdefault(view, {})
        if sender in box:
            return
        identity = (payload.key.view, payload.key.value)
        existing = self._echo_tuple.get(view)
        if existing is not None and existing[0] != identity:
            # Two different PE-verified tuples: Algorithm 10 lines 12-14.
            first_payload = existing[1]
            self.multicast(
                EquivocateMsg(
                    key_a=first_payload.key,
                    proof_a=first_payload.election_proof,
                    key_b=payload.key,
                    proof_b=payload.election_proof,
                    view=view,
                )
            )
            self._advance_view(view)
            return
        if existing is None:
            self._echo_tuple[view] = (identity, payload)
        box[sender] = payload
        if len(box) >= self.quorum and view not in self._key_sent:
            self._key_sent.add(view)
            votes = tuple(entry.vote for entry in box.values())
            value = payload.key.value
            self.key_view = view
            self.key_value = value
            self.key_proof = votes
            vote = certs.make_vote(
                self.directory, self.secret, certs.KIND_KEY, value, view
            )
            self.multicast(
                KeyVoteMsg(value=value, proof=votes, vote=vote, view=view)
            )

    def _on_key_vote(self, sender: int, payload: KeyVoteMsg) -> None:
        view = payload.view
        if not certs.vote_valid(
            self.directory, payload.vote, certs.KIND_KEY, payload.value, view
        ):
            return
        if payload.vote.signer != sender:
            return
        if not certs.key_correct(
            self.directory, self.validate, view, payload.value, payload.proof
        ):
            return
        box = self._key_votes.setdefault(view, {})
        if sender in box:
            return
        box[sender] = payload.vote
        if len(box) >= self.quorum and view not in self._lock_sent:
            self._lock_sent.add(view)
            votes = tuple(box.values())
            self.lock_view = view
            self.lock_value = payload.value
            self.lock_proof = votes
            vote = certs.make_vote(
                self.directory, self.secret, certs.KIND_LOCK, payload.value, view
            )
            self.multicast(
                LockVoteMsg(value=payload.value, proof=votes, vote=vote, view=view)
            )

    def _on_lock_vote(self, sender: int, payload: LockVoteMsg) -> None:
        view = payload.view
        if not certs.vote_valid(
            self.directory, payload.vote, certs.KIND_LOCK, payload.value, view
        ):
            return
        if payload.vote.signer != sender:
            return
        if not certs.lock_correct(self.directory, view, payload.value, payload.proof):
            return
        box = self._lock_votes.setdefault(view, {})
        if sender in box:
            return
        box[sender] = payload.vote
        if len(box) >= self.quorum and view not in self._commit_sent:
            self._commit_sent.add(view)
            votes = tuple(box.values())
            self.multicast(CommitMsg(value=payload.value, proof=votes, view=view))
            self._terminate(payload.value)

    # -- fault handling (Algorithm 9) -----------------------------------------------------

    def _on_blame(self, sender: int, payload: BlameMsg) -> None:
        view = payload.view
        key_tuple = payload.key
        if not isinstance(key_tuple, KeyTuple):
            return
        if not certs.lock_correct(
            self.directory, payload.lock_view, payload.lock_value, payload.lock_proof
        ):
            return
        if not (view <= key_tuple.view or key_tuple.view < payload.lock_view):
            return
        if self._journal_fault(self._blame_seen, view, sender, payload):
            self._arm_blame_verify(payload)

    def _arm_blame_verify(self, payload: BlameMsg) -> None:
        view = payload.view

        def verified() -> None:
            if self.terminated or self.view != view or view in self._advanced:
                return
            self._advanced.add(view)
            self.multicast(payload)
            self._advance_view(view)

        self._when_pe_verifies(view, payload.key, payload.election_proof, verified)

    def _on_equivocate(self, sender: int, payload: EquivocateMsg) -> None:
        view = payload.view
        if not isinstance(payload.key_a, KeyTuple) or not isinstance(
            payload.key_b, KeyTuple
        ):
            return
        if (payload.key_a.view, payload.key_a.value) == (
            payload.key_b.view,
            payload.key_b.value,
        ):
            return
        if self._journal_fault(self._equiv_seen, view, sender, payload):
            self._arm_equivocate_verify(payload)

    def _arm_equivocate_verify(self, payload: EquivocateMsg) -> None:
        view = payload.view
        state = {"hits": 0}

        def one_verified() -> None:
            state["hits"] += 1
            if state["hits"] < 2:
                return
            if self.terminated or self.view != view or view in self._advanced:
                return
            self._advanced.add(view)
            self.multicast(payload)
            self._advance_view(view)

        self._when_pe_verifies(view, payload.key_a, payload.proof_a, one_verified)
        self._when_pe_verifies(view, payload.key_b, payload.proof_b, one_verified)

    # -- checkTermination (Algorithm 7) -----------------------------------------------------

    def _on_commit(self, sender: int, payload: CommitMsg) -> None:
        if self.terminated:
            return
        if not certs.commit_correct(
            self.directory, payload.view, payload.value, payload.proof
        ):
            return
        if not self._commit_forwarded:
            self._commit_forwarded = True
            self.multicast(payload)
        self._terminate(payload.value)

    def _terminate(self, value: Any) -> None:
        if self.terminated:
            return
        self.terminated = True
        self.output(value)
