"""Asynchronous Distributed Key Generation (Section 6, Algorithm 14, Theorem 5).

The final construction is short because the machinery lives below it:
every party deals one PVSS contribution to every other party, aggregates
the first ``n-f`` verifying contributions it receives into a proposed DKG
transcript, and runs NWH with ``DKGVerify`` as the external-validity
predicate.  NWH's agreement + validity give one verifying transcript that
every party outputs; its termination is almost-sure.

The agreed transcript defines the group public key
(``transcript.public_key = g^{F(0)}``) and commits each party's threshold
share in the exponent — ready for threshold-VRF/BLS-style applications
without any reconstruction step, exactly as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.nwh import NWH
from repro.crypto import pvss, threshold_vrf as tvrf
from repro.net.payload import Payload, words_of
from repro.net.protocol import Protocol


@dataclass(frozen=True)
class ADKGShare(Payload):
    """One dealt PVSS contribution (the paper's ⟨share_{i,j}⟩)."""

    contribution: Any

    def word_size(self) -> int:
        return max(1, words_of(self.contribution))

    def verify_tasks(self, directory: Any) -> tuple:
        if isinstance(self.contribution, pvss.PVSSContribution):
            return (("pvss-contrib", (self.contribution,)),)
        return ()


class ADKG(Protocol):
    """One A-DKG instance; outputs the agreed, verifying DKG transcript."""

    #: Declared mutable state (the ``nwh`` instance reference is rebuilt
    #: by :meth:`build_child`, not serialized).
    STATE_FIELDS = ("received", "proposal")

    def __init__(self, broadcast_kind: str = "ct") -> None:
        super().__init__()
        self.broadcast_kind = broadcast_kind
        self.received: list = []
        self.proposal: Any = None
        self.nwh: Optional[NWH] = None

    def on_start(self) -> None:
        for j in range(self.n):
            contribution = tvrf.DKGSh(self.directory, self.secret, self.rng)
            self.send(j, ADKGShare(contribution=contribution))

    def on_message(self, sender: int, payload: Payload) -> None:
        if not isinstance(payload, ADKGShare):
            return
        if self.nwh is not None:
            return  # already aggregated and agreeing
        contribution = payload.contribution
        if not isinstance(contribution, pvss.PVSSContribution):
            return
        if contribution.dealer != sender:
            return
        if any(existing.dealer == sender for existing in self.received):
            return
        if not tvrf.DKGShVerify(self.directory, contribution):
            return
        self.received.append(contribution)
        if len(self.received) >= self.quorum:
            self.proposal = tvrf.DKGAggregate(self.directory, self.received)
            self.nwh = self._make_nwh()
            self.spawn("nwh", self.nwh)

    def _make_nwh(self) -> NWH:
        directory = self.directory
        return NWH(
            my_value=self.proposal,
            validate=lambda dkg: tvrf.DKGVerify(directory, dkg),
            broadcast_kind=self.broadcast_kind,
        )

    def build_child(self, name: Any) -> Protocol:
        if name == "nwh":
            self.nwh = self._make_nwh()
            return self.nwh
        raise ValueError(f"unknown ADKG child {name!r}")

    def on_sub_output(self, name: Any, value: Any) -> None:
        if name == "nwh":
            self.output(value)
