"""Append-only write-ahead log of delivered envelopes.

One log file per party per run: every network envelope the party
processes is appended (as a versioned :mod:`repro.storage.frames`
record) *after* it was delivered, so the log plus the last snapshot is
always a complete replayable history at delivery granularity.  Appends
are buffered through one file handle; ``fsync`` is optional — on by
default the log is only flushed to the OS, which is the right trade for
the simulator and for benchmarks measuring replay cost (a deployment
that must survive power loss turns ``fsync=True`` on and pays the
per-record sync).

Compaction: after a snapshot is saved the records it absorbs are dead —
:meth:`WriteAheadLog.reset` truncates the file.  Every record carries a
monotonically increasing *sequence number* (continuing across resets)
and the snapshot records the highest sequence it absorbed, so even a
crash landing exactly between snapshot rename and WAL truncation leaves
a readable pair: replay skips the absorbed prefix by sequence instead
of double-applying it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO, Optional

from repro.net.envelope import Envelope
from repro.storage.frames import encode_wal_record, iter_wal_records

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """One party's append-only envelope log."""

    def __init__(self, path: Path | str, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle: Optional[IO[bytes]] = None
        #: Records appended through this handle since open/reset (the
        #: on-disk log may additionally hold records from a previous
        #: life; :meth:`replay` reads them all).
        self.appended = 0
        #: Highest sequence number ever assigned; survives :meth:`reset`
        #: in memory and is re-derived from disk on first use, so
        #: sequences stay monotone across compactions and process lives.
        self._last_seq: Optional[int] = None

    def _file(self) -> IO[bytes]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    @property
    def last_seq(self) -> int:
        """The highest sequence on record (0 when the log never held one)."""
        if self._last_seq is None:
            self._last_seq = max(
                (seq for seq, _envelope in self.replay()), default=0
            )
        return self._last_seq

    def ensure_seq_at_least(self, seq: int) -> None:
        """Raise the sequence floor (e.g. to a snapshot's absorbed seq)."""
        if seq > self.last_seq:
            self._last_seq = seq

    def append(self, envelope: Envelope) -> int:
        """Append one delivered envelope; returns its sequence number."""
        seq = self.last_seq + 1
        handle = self._file()
        handle.write(encode_wal_record(envelope, seq))
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.appended += 1
        self._last_seq = seq
        return seq

    def replay(self) -> list[tuple[int, Envelope]]:
        """Every ``(seq, record)`` on disk, in append order (strict decode)."""
        if not self.path.exists():
            return []
        return list(iter_wal_records(self.path.read_bytes()))

    def size_bytes(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def reset(self) -> None:
        """Truncate the log (compaction after a snapshot absorbed it).

        The sequence counter is *not* reset: post-compaction records
        must sort after the snapshot's absorbed sequence.
        """
        self.last_seq  # materialize before the records disappear
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self.path.exists():
            self.path.write_bytes(b"")
        self.appended = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
