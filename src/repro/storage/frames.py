"""Versioned byte frames for durable protocol state.

The durability subsystem puts two new record kinds on disk, framed the
same way the batched message plane frames the wire (one magic byte, one
version byte, a length, a body), and reusing :mod:`repro.net.codec` for
every value inside:

====  =============================================================
0xDA  WAL record — a uvarint *sequence number* followed by one
      :class:`~repro.net.envelope.Envelope`, exactly as
      ``codec.encode_envelope`` produced it
0xD5  snapshot record — a uvarint *absorbed-WAL sequence* followed by
      one opaque codec blob (a :meth:`~repro.net.party.Party.freeze`
      value)
====  =============================================================

The sequence numbers are the crash-safety handshake between the two
record kinds: a snapshot absorbs every WAL record with ``seq <= its
absorbed sequence``, so a process death *between* writing the snapshot
and compacting the WAL (the one window file ordering cannot close)
leaves a pair that recovery still reads correctly — replay simply skips
the absorbed prefix instead of double-applying it.

Both magics sit outside the codec tag space and outside the batch-frame
magic (``0xB5``), so all four frame families — legacy single-envelope,
batch, WAL, snapshot — are distinguishable from their first byte;
:func:`decode_frame` is the dispatcher.  Decoding is as strict as the
codec's: bad magic, unsupported version, truncated length/body, bodies
that do not decode to the promised shape, and trailing bytes all raise
:class:`StorageError` (a :class:`~repro.net.codec.CodecError`).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.net import codec
from repro.net.codec import CodecError, _read_uvarint, _write_uvarint
from repro.net.envelope import Envelope

__all__ = [
    "StorageError",
    "WAL_MAGIC",
    "SNAPSHOT_MAGIC",
    "FRAME_VERSION",
    "encode_wal_record",
    "decode_wal_record",
    "iter_wal_records",
    "encode_snapshot_record",
    "decode_snapshot_record",
    "decode_frame",
]

#: First byte of a write-ahead-log record ("DurAbility").
WAL_MAGIC = 0xDA
#: First byte of a snapshot record.
SNAPSHOT_MAGIC = 0xD5
#: Format version of both record kinds (second byte).
FRAME_VERSION = 0x01


class StorageError(CodecError):
    """Raised when durable bytes cannot be decoded."""


def _frame(magic: int, body: bytes) -> bytes:
    out = bytearray((magic, FRAME_VERSION))
    _write_uvarint(out, len(body))
    out.extend(body)
    return bytes(out)


def _open_frame(magic: int, data: bytes, pos: int, kind: str) -> tuple[bytes, int]:
    """Strictly read one ``magic``-framed body starting at ``pos``."""
    if pos + 2 > len(data):
        raise StorageError(f"truncated {kind} record header")
    if data[pos] != magic:
        raise StorageError(
            f"bad {kind} record magic {data[pos]:#04x} (expected {magic:#04x})"
        )
    if data[pos + 1] != FRAME_VERSION:
        raise StorageError(
            f"unsupported {kind} record version {data[pos + 1]}"
        )
    try:
        length, pos = _read_uvarint(data, pos + 2)
    except CodecError as exc:
        raise StorageError(f"truncated {kind} record length") from exc
    if pos + length > len(data):
        raise StorageError(f"truncated {kind} record body")
    return data[pos : pos + length], pos + length


def encode_wal_record(envelope: Envelope, seq: int) -> bytes:
    """One WAL record: ``uvarint seq`` + envelope encoding, 0xDA-framed."""
    if seq < 0:
        raise StorageError("WAL sequence must be non-negative")
    body = bytearray()
    _write_uvarint(body, seq)
    body.extend(codec.encode_envelope(envelope))
    return _frame(WAL_MAGIC, bytes(body))


def decode_wal_record(data: bytes, pos: int = 0) -> tuple[int, Envelope, int]:
    """Decode one WAL record at ``pos``; returns ``(seq, envelope, next_pos)``.

    After the sequence varint the body must be exactly one valid
    envelope encoding (the full :func:`~repro.net.codec.decode_envelope`
    validation applies).
    """
    body, pos = _open_frame(WAL_MAGIC, bytes(data), pos, "WAL")
    try:
        seq, offset = _read_uvarint(body, 0)
    except CodecError as exc:
        raise StorageError("truncated WAL record sequence") from exc
    return seq, codec.decode_envelope(body[offset:]), pos


def iter_wal_records(data: bytes) -> Iterator[tuple[int, Envelope]]:
    """Yield every ``(seq, envelope)`` of a WAL byte stream, strictly.

    Any malformation — including a torn final record from an interrupted
    append — raises :class:`StorageError`; a durable log is either whole
    or loudly broken, never silently shortened.
    """
    data = bytes(data)
    pos = 0
    while pos < len(data):
        seq, envelope, pos = decode_wal_record(data, pos)
        yield seq, envelope


def encode_snapshot_record(blob: bytes, wal_seq: int = 0) -> bytes:
    """One snapshot record: ``uvarint wal_seq`` + opaque blob, 0xD5-framed.

    ``wal_seq`` is the highest WAL sequence the snapshot absorbs; replay
    skips records at or below it.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise StorageError(
            f"snapshot blob must be bytes, got {type(blob).__name__}"
        )
    if wal_seq < 0:
        raise StorageError("absorbed WAL sequence must be non-negative")
    body = bytearray()
    _write_uvarint(body, wal_seq)
    body.extend(blob)
    return _frame(SNAPSHOT_MAGIC, bytes(body))


def decode_snapshot_record(data: bytes, pos: int = 0) -> tuple[bytes, int, int]:
    """Decode one snapshot record at ``pos``.

    Returns ``(blob, wal_seq, next_pos)``.
    """
    body, pos = _open_frame(SNAPSHOT_MAGIC, bytes(data), pos, "snapshot")
    try:
        wal_seq, offset = _read_uvarint(body, 0)
    except CodecError as exc:
        raise StorageError("truncated snapshot absorbed-sequence") from exc
    return body[offset:], wal_seq, pos


def decode_frame(body: bytes) -> tuple[str, Any]:
    """Dispatch one complete frame body by its first byte.

    Returns ``("wal", (seq, envelope))``, ``("snapshot", (blob, wal_seq))``
    or ``("envelopes", [envelope, ...])`` — the last covering both batch
    frames and legacy single-envelope frames via
    :func:`~repro.net.codec.decode_batch`.  Trailing bytes after the
    record are rejected, mirroring the codec's whole-buffer strictness.
    """
    body = bytes(body)
    if not body:
        raise StorageError("empty frame")
    first = body[0]
    if first == WAL_MAGIC:
        seq, envelope, pos = decode_wal_record(body)
        if pos != len(body):
            raise StorageError(f"{len(body) - pos} trailing bytes after WAL record")
        return "wal", (seq, envelope)
    if first == SNAPSHOT_MAGIC:
        blob, wal_seq, pos = decode_snapshot_record(body)
        if pos != len(body):
            raise StorageError(
                f"{len(body) - pos} trailing bytes after snapshot record"
            )
        return "snapshot", (blob, wal_seq)
    return "envelopes", codec.decode_batch(body)
