"""In-session crash–recovery: durable recording, rehydration, drivers.

The pieces, bottom-up:

* :class:`DurabilityRecorder` — attaches to any transport as a delivery
  observer and keeps one party's durable state current: every network
  envelope delivered to the party is appended to its write-ahead log,
  and every ``cadence`` deliveries the party is frozen
  (:meth:`~repro.net.party.Party.freeze`), the snapshot saved atomically
  and the WAL compacted.
* :func:`recover_party` — rebuilds a crashed party from the store: a
  pristine party (same constructor args, via
  :meth:`~repro.net.transport.Transport.build_party`) is ``thaw``-ed
  from the snapshot and the WAL is replayed through the normal
  ``deliver()`` path with re-sends suppressed.  In-process the shared
  directory's verify cache is already warm, so replay re-verifies
  nothing it saw before — the warm-start the durability design counts
  on (DESIGN.md section 9).
* :func:`run_crash_recovery` — one crash–recovery scenario end to end on
  any transport: run, crash (detach + state loss) at an adversarially
  chosen per-party delivery count, recover after a delay, reattach, and
  run to agreement.  The simulator variant measures recovery latency in
  simulated rounds; the realtime variants (asyncio, TCP) in seconds.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Any, Callable, Optional, Sequence

from repro.crypto.keys import TrustedSetup
from repro.net.delays import DelayModel, FixedDelay
from repro.net.party import Party
from repro.net.protocol import Protocol
from repro.net.transport import Transport, make_transport
from repro.storage.frames import StorageError
from repro.storage.store import SnapshotStore

__all__ = ["DurabilityRecorder", "recover_party", "run_crash_recovery"]

RootFactory = Callable[[Party], Protocol]


class DurabilityRecorder:
    """Keep one party's snapshot + WAL current on a live transport.

    The recorder observes the shared delivery pipeline, so it works
    unchanged on the simulator, the asyncio runtime and TCP.  Recording
    happens *after* the delivery was fully processed (outbox drained,
    conditions at fixpoint) — exactly the boundary ``freeze()`` requires.
    Call :meth:`checkpoint` once the party's roots are installed (the
    run drivers do, right after ``transport.start``) so a crash before
    the first delivery still finds a snapshot; failing that, the first
    observed delivery forces a genesis checkpoint.
    """

    def __init__(
        self,
        transport: Transport,
        index: int,
        store: SnapshotStore,
        cadence: int = 64,
    ) -> None:
        if cadence < 1:
            raise ValueError("cadence must be >= 1")
        self.transport = transport
        self.index = index
        self.store = store
        self.cadence = cadence
        self.deliveries = 0
        self.checkpoints = 0
        # Resuming over existing durable state (a reopened store): keep
        # WAL sequences monotone past the stored snapshot's absorbed
        # sequence, so fresh records never sort into the skipped prefix.
        loaded = store.load_snapshot(index)
        if loaded is not None:
            store.wal(index).ensure_seq_at_least(loaded[1])
        transport.add_delivery_observer(self._observe)

    def _observe(self, envelope) -> None:
        if envelope.recipient != self.index:
            return
        self.store.wal(self.index).append(envelope)
        self.deliveries += 1
        # The first delivery forces the genesis checkpoint (tracked in
        # memory — no per-delivery disk probe).
        if self.deliveries % self.cadence == 0 or not self.checkpoints:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Freeze the party now; save atomically; compact the WAL."""
        blob = self.transport.parties[self.index].freeze()
        self.store.save_snapshot(
            self.index, blob, wal_seq=self.store.wal(self.index).last_seq
        )
        self.checkpoints += 1

    def detach(self) -> None:
        """Stop observing (the store stays usable for recovery)."""
        self.transport.remove_delivery_observer(self._observe)


def recover_party(
    transport: Transport,
    index: int,
    store: SnapshotStore,
    root_factory: RootFactory,
) -> tuple[Party, dict[str, Any]]:
    """Rehydrate a crashed party from its snapshot + WAL.

    Returns the thawed party (not yet reattached) and replay statistics:
    ``wal_records``, ``suppressed_sends`` (duplicate sends the replay
    swallowed), ``replay_seconds`` and ``replay_per_second``.
    """
    loaded = store.load_snapshot(index)
    if loaded is None:
        raise StorageError(f"no snapshot on disk for party {index}")
    blob, absorbed_seq = loaded
    party = transport.build_party(index)
    started = time.perf_counter()
    party.thaw(blob, root_factory=root_factory)
    # Skip the absorbed prefix: records at or below the snapshot's
    # sequence survive only when a crash landed between snapshot rename
    # and WAL truncation, and replaying them would double-apply.
    records = [
        envelope
        for seq, envelope in store.wal(index).replay()
        if seq > absorbed_seq
    ]
    replayed = party.replay(records)
    elapsed = time.perf_counter() - started
    return party, {
        "wal_records": len(records),
        "suppressed_sends": replayed["suppressed"],
        "replay_seconds": elapsed,
        "replay_per_second": (len(records) / elapsed) if elapsed > 0 else 0.0,
    }


def run_crash_recovery(
    *,
    transport: str = "sim",
    n: int = 4,
    seed: int = 1,
    crash_indices: Sequence[int] = (0,),
    crash_after: int = 40,
    recovery_delay: float = 5.0,
    cadence: int = 16,
    root_factory: Optional[RootFactory] = None,
    behaviors: Optional[dict] = None,
    scheduler: Any = None,
    delay_model: Optional[DelayModel] = None,
    setup: Optional[TrustedSetup] = None,
    storage_dir: Optional[Path | str] = None,
    batching: bool = True,
    fsync: bool = False,
    timeout: float = 120.0,
    max_steps: int = 5_000_000,
    chaos: Any = None,
) -> dict[str, Any]:
    """One full crash–recovery scenario on the chosen transport.

    Every party in ``crash_indices`` runs with a
    :class:`DurabilityRecorder` (snapshot every ``cadence`` deliveries).
    When the first of them has processed ``crash_after`` network
    deliveries, all of them crash *simultaneously*: the transport
    detaches them (in-flight traffic parks, as a reconnecting link's
    send queue would) and their in-memory state is abandoned.  After
    ``recovery_delay`` — simulated rounds on ``sim``, seconds on the
    realtime transports — each is rehydrated from disk via
    :func:`recover_party`, reattached, and the run is driven to
    all-honest agreement.

    Returns a report dict with agreement/validity, the group public key,
    per-party replay statistics and the recovery latency (time from
    reattach to all-honest completion, in the transport's time unit).
    """
    if root_factory is None:
        from repro.core.adkg import ADKG

        root_factory = lambda party: ADKG()  # noqa: E731
    crash_indices = list(dict.fromkeys(crash_indices))
    if not crash_indices:
        raise ValueError("crash_indices must name at least one party")
    out_of_range = [index for index in crash_indices if not 0 <= index < n]
    if out_of_range:
        raise ValueError(
            f"crash indices {out_of_range} out of range for n={n}"
        )
    setup = setup or TrustedSetup.generate(n, seed=seed)
    kwargs: dict[str, Any] = {"batching": batching}
    if chaos is not None:
        # Chaos overlays compose with crash-recovery on every runtime:
        # the fault plane sits at the shared delivery seam, the recorder
        # behind it, so WAL contents reflect what was actually delivered.
        kwargs["chaos"] = chaos
    if transport == "sim":
        kwargs["delay_model"] = delay_model or FixedDelay(1.0)
        kwargs["scheduler"] = scheduler
    elif scheduler is not None or delay_model is not None:
        raise ValueError("scheduler/delay_model apply to the sim transport only")
    runtime = make_transport(
        transport, setup, behaviors=behaviors, seed=seed, **kwargs
    )
    overlap = set(crash_indices) & set(runtime.corrupt)
    if overlap:
        raise ValueError(
            f"crash–recovering parties must be honest; {sorted(overlap)} carry "
            "Byzantine behaviors"
        )
    cleanup: Optional[TemporaryDirectory] = None
    if storage_dir is None:
        cleanup = TemporaryDirectory(prefix="repro-recovery-")
        storage_dir = cleanup.name
    store = SnapshotStore(storage_dir, fsync=fsync)
    for index in crash_indices:
        # This is a fresh run: stale artifacts in a reused storage
        # directory would rehydrate state from the wrong execution.
        store.clear(index)
    recorders = {
        index: DurabilityRecorder(runtime, index, store, cadence=cadence)
        for index in crash_indices
    }
    try:
        if transport == "sim":
            report = _drive_sim(
                runtime, recorders, store, root_factory, crash_after,
                recovery_delay, max_steps,
            )
        else:
            report = asyncio.run(
                _drive_realtime(
                    runtime, recorders, store, root_factory, crash_after,
                    recovery_delay, timeout,
                )
            )
    finally:
        store.close()
        if cleanup is not None:
            cleanup.cleanup()
    outputs = runtime.honest_results()
    values = list(outputs.values())
    agreement = bool(values) and all(value == values[0] for value in values)
    transcript = values[0] if values else None
    valid = None
    if transcript is not None and hasattr(transcript, "public_key"):
        from repro.crypto import reshare
        from repro.crypto import threshold_vrf as tvrf

        try:
            if isinstance(transcript, reshare.ReshareTranscript):
                valid = reshare.verify_reshared(setup.directory, transcript)
            else:
                valid = tvrf.DKGVerify(setup.directory, transcript)
        except Exception:
            valid = False
    report.update(
        {
            "transport": transport,
            "n": runtime.n,
            "f": runtime.f,
            "seed": seed,
            "crash_indices": crash_indices,
            "crash_after": crash_after,
            "recovery_delay": recovery_delay,
            "cadence": cadence,
            "honest_outputs": len(outputs),
            "agreement": agreement,
            "valid": valid,
            "transcript": transcript,
            "outputs": outputs,
            "public_key": getattr(transcript, "public_key", None),
            "words_total": runtime.metrics.words_total,
            "messages_total": runtime.metrics.messages_total,
        }
    )
    return report


def _crash_point_reached(recorders: dict, crash_after: int) -> bool:
    return any(r.deliveries >= crash_after for r in recorders.values())


def _recover_all(
    runtime: Transport,
    recorders: dict,
    store: SnapshotStore,
    root_factory: RootFactory,
) -> tuple[dict, dict]:
    replay_stats = {}
    parked = {}
    for index in recorders:
        party, stats = recover_party(runtime, index, store, root_factory)
        parked[index] = runtime.reattach_party(index, party)
        replay_stats[index] = stats
    return replay_stats, parked


def _drive_sim(
    runtime,
    recorders: dict,
    store: SnapshotStore,
    root_factory: RootFactory,
    crash_after: int,
    recovery_delay: float,
    max_steps: int,
) -> dict[str, Any]:
    runtime.start(root_factory)
    for recorder in recorders.values():
        # Genesis checkpoint the instant the roots stand: a crash before
        # the party's first delivery still finds a snapshot on disk.
        recorder.checkpoint()
    runtime.run(
        max_steps=max_steps,
        stop=lambda sim: _crash_point_reached(recorders, crash_after),
    )
    if runtime.all_honest_output():
        raise RuntimeError(
            "the run completed before the crash point; pick a smaller "
            "crash_after for a meaningful recovery scenario"
        )
    crash_at = runtime.time
    for index in recorders:
        runtime.detach_party(index)
    deadline = crash_at + recovery_delay
    runtime.run(max_steps=max_steps, stop=lambda sim: sim.time >= deadline)
    reattach_at = runtime.time
    replay_stats, parked = _recover_all(runtime, recorders, store, root_factory)
    runtime.run_until_all_honest_output(max_steps=max_steps)
    completed_at = runtime.honest_completion_time()
    return {
        "crash_at": crash_at,
        "reattach_at": reattach_at,
        "rounds": completed_at,
        "recovery_latency": completed_at - reattach_at,
        "replay": replay_stats,
        "parked_delivered": parked,
    }


async def _drive_realtime(
    runtime,
    recorders: dict,
    store: SnapshotStore,
    root_factory: RootFactory,
    crash_after: int,
    recovery_delay: float,
    timeout: float,
) -> dict[str, Any]:
    loop = asyncio.get_running_loop()
    started = loop.time()
    deadline = started + timeout
    try:
        await asyncio.wait_for(runtime.open(), timeout=timeout)
        runtime.start(root_factory)
        for recorder in recorders.values():
            recorder.checkpoint()
        while not _crash_point_reached(recorders, crash_after):
            if runtime.all_honest_output():
                raise RuntimeError(
                    "the run completed before the crash point; pick a "
                    "smaller crash_after for a meaningful recovery scenario"
                )
            if loop.time() > deadline:
                raise asyncio.TimeoutError(
                    f"crash point not reached within {timeout}s"
                )
            await asyncio.sleep(0.002)
        crash_at = loop.time() - started
        for index in recorders:
            runtime.detach_party(index)
        await asyncio.sleep(recovery_delay)
        reattach_at = loop.time() - started
        replay_stats, parked = _recover_all(
            runtime, recorders, store, root_factory
        )
        remaining = max(0.001, deadline - loop.time())
        await runtime.wait_session(0, timeout=remaining)
        completed_at = loop.time() - started
    finally:
        await runtime.close()
    return {
        "crash_at": crash_at,
        "reattach_at": reattach_at,
        "rounds": completed_at,
        "recovery_latency": completed_at - reattach_at,
        "replay": replay_stats,
        "parked_delivered": parked,
    }
