"""repro.storage — durable protocol state for in-session crash–recovery.

A party can crash mid-session, restart from disk, and converge to the
same output: :class:`~repro.storage.store.SnapshotStore` holds each
party's last :meth:`~repro.net.party.Party.freeze` blob,
:class:`~repro.storage.wal.WriteAheadLog` the envelopes delivered since,
and :mod:`repro.storage.recovery` the recorder + rehydration drivers
that tie them to a live transport.  All bytes are versioned
:mod:`repro.storage.frames` records over the :mod:`repro.net.codec`
registry — no pickle anywhere.  See DESIGN.md section 9.
"""

from repro.storage.frames import (
    SNAPSHOT_MAGIC,
    WAL_MAGIC,
    StorageError,
    decode_frame,
    decode_snapshot_record,
    decode_wal_record,
    encode_snapshot_record,
    encode_wal_record,
)
from repro.storage.recovery import (
    DurabilityRecorder,
    recover_party,
    run_crash_recovery,
)
from repro.storage.store import SnapshotStore
from repro.storage.wal import WriteAheadLog

__all__ = [
    "StorageError",
    "WAL_MAGIC",
    "SNAPSHOT_MAGIC",
    "encode_wal_record",
    "decode_wal_record",
    "encode_snapshot_record",
    "decode_snapshot_record",
    "decode_frame",
    "WriteAheadLog",
    "SnapshotStore",
    "DurabilityRecorder",
    "recover_party",
    "run_crash_recovery",
]
