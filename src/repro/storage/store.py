"""Durable per-party storage: snapshots plus their write-ahead logs.

Directory layout under one run root::

    <root>/party-<i>/snapshot.bin   last Party.freeze blob (0xD5-framed)
    <root>/party-<i>/wal.bin        envelopes delivered since that snapshot

Snapshot writes are atomic (temp file + ``os.replace``) and ordered
before WAL compaction.  A crash at any byte boundary leaves a readable
pair: either the old snapshot with the full WAL, or the new snapshot —
and if the crash lands between the rename and the WAL truncation, the
new snapshot's recorded *absorbed sequence* tells replay to skip the
stale records instead of double-applying them.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.storage.frames import (
    StorageError,
    decode_snapshot_record,
    encode_snapshot_record,
)
from repro.storage.wal import WriteAheadLog

__all__ = ["SnapshotStore"]


class SnapshotStore:
    """Snapshot + WAL storage for every party of one run."""

    def __init__(self, root: Path | str, fsync: bool = False) -> None:
        self.root = Path(root)
        self.fsync = fsync
        self._wals: dict[int, WriteAheadLog] = {}

    def party_dir(self, index: int) -> Path:
        return self.root / f"party-{index}"

    def _snapshot_path(self, index: int) -> Path:
        return self.party_dir(index) / "snapshot.bin"

    def wal(self, index: int) -> WriteAheadLog:
        log = self._wals.get(index)
        if log is None:
            log = WriteAheadLog(self.party_dir(index) / "wal.bin", fsync=self.fsync)
            self._wals[index] = log
        return log

    def save_snapshot(self, index: int, blob: bytes, wal_seq: int = 0) -> None:
        """Durably replace the party's snapshot, then compact its WAL.

        ``wal_seq`` is the highest WAL sequence the snapshot absorbs.
        The write order is the crash-safety invariant: only after the
        new snapshot is fully on disk (atomic rename) does the WAL
        shrink — and a crash between the two leaves records replay will
        skip by sequence.
        """
        path = self._snapshot_path(index)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        data = encode_snapshot_record(blob, wal_seq)
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.wal(index).reset()

    def has_snapshot(self, index: int) -> bool:
        return self._snapshot_path(index).exists()

    def load_snapshot(self, index: int) -> Optional[tuple[bytes, int]]:
        """The party's ``(blob, absorbed_wal_seq)``, or ``None`` if unsaved."""
        path = self._snapshot_path(index)
        if not path.exists():
            return None
        data = path.read_bytes()
        blob, wal_seq, pos = decode_snapshot_record(data)
        if pos != len(data):
            raise StorageError(
                f"{len(data) - pos} trailing bytes after snapshot record"
            )
        return blob, wal_seq

    def clear(self, index: int) -> None:
        """Remove a party's durable state (snapshot and WAL).

        Used by run drivers starting a *fresh* run over an explicit
        storage directory: stale artifacts from a previous run would
        otherwise rehydrate state belonging to the wrong execution.
        """
        log = self._wals.pop(index, None)
        if log is not None:
            log.close()
        directory = self.party_dir(index)
        if directory.exists():
            for path in directory.iterdir():
                path.unlink()

    def close(self) -> None:
        for log in self._wals.values():
            log.close()
