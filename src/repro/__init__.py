"""repro — reproduction of *Reaching Consensus for Asynchronous Distributed
Key Generation* (Abraham, Jovanovic, Maller, Meiklejohn, Stern, Tomescu;
PODC 2021, arXiv:2102.09041).

Quickstart::

    from repro import run_adkg

    result = run_adkg(n=7, seed=1)
    print(result.public_key)        # the group public key g^{F(0)}
    print(result.words_total)      # measured communication in words
    print(result.rounds)           # asynchronous rounds to agreement

Layers (bottom-up): :mod:`repro.crypto` (fields, groups, signatures,
PVSS, threshold VRF), :mod:`repro.net` (sans-io protocol substrate +
session-multiplexed transports), :mod:`repro.storage` (snapshot + WAL
durability, in-session crash–recovery), :mod:`repro.broadcast`
(reliable broadcast), :mod:`repro.core` (Gather, Proposal Election,
NWH, A-DKG), :mod:`repro.baselines` (the Ω(n⁴) comparator) and
:mod:`repro.service` (pipelined ADKG epochs + randomness beacon).  See
DESIGN.md for the full inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.adkg import ADKG
from repro.crypto.keys import TrustedSetup
from repro.net.delays import DelayModel, FixedDelay
from repro.net.runtime import Simulation
from repro.net.transport import Transport, make_transport

__version__ = "1.3.0"


@dataclass
class ADKGResult:
    """Outcome of one A-DKG execution (any transport)."""

    n: int
    f: int
    transcript: Any
    public_key: Any
    outputs: dict[int, Any]
    words_total: int
    messages_total: int
    rounds: float
    views: int
    bytes_total: int = 0
    transport: str = "sim"
    metrics_summary: dict = field(default_factory=dict)

    @property
    def agreed(self) -> bool:
        values = list(self.outputs.values())
        return bool(values) and all(v == values[0] for v in values)


def _collect_result(transport: Transport, kind: str) -> ADKGResult:
    outputs = transport.honest_results()
    transcript = next(iter(outputs.values()), None)
    views = 0
    for i in transport.honest:
        nwh = transport.parties[i].instance(("nwh",))
        if nwh is not None:
            views = max(views, nwh.views_entered)
    return ADKGResult(
        n=transport.n,
        f=transport.f,
        transcript=transcript,
        public_key=getattr(transcript, "public_key", None),
        outputs=outputs,
        words_total=transport.metrics.words_total,
        messages_total=transport.metrics.messages_total,
        rounds=transport.round_measure(),
        views=views,
        bytes_total=transport.metrics.bytes_total,
        transport=kind,
        metrics_summary=transport.metrics.summary(),
    )


def run_adkg(
    n: int = 7,
    f: Optional[int] = None,
    seed: int = 0,
    params: str = "TESTING",
    delay_model: Optional[DelayModel] = None,
    scheduler=None,
    behaviors=None,
    broadcast_kind: str = "ct",
    to_quiescence: bool = False,
    setup: Optional[TrustedSetup] = None,
    transport: str = "sim",
    measure_bytes: Optional[bool] = None,
    batching: Optional[bool] = None,
    timeout: float = 120.0,
    max_steps: Optional[int] = None,
    workers: Optional[int] = None,
    chaos: Any = None,
) -> ADKGResult:
    """Run one A-DKG over the selected transport and return result + metrics.

    ``transport`` selects the runtime: ``"sim"`` (deterministic
    discrete-event simulator, the default), ``"asyncio"`` (realtime tasks
    with random sleeps) or ``"tcp"`` (real loopback stream sockets with
    the byte codec; always byte-metered).  ``delay_model``, ``scheduler``
    and ``to_quiescence`` apply to the simulator only; combining them
    with a realtime transport raises ``ValueError``.  ``batching``
    toggles the coalesced message plane (``None`` = the transport's
    default, which is on); protocol word/byte totals are identical
    either way — batching changes frames and wall clock, not the
    protocol's accounting.

    With the default ``delay_model=FixedDelay(1.0)`` the simulator's
    reported ``rounds`` equals the length of the longest causal message
    chain — the standard asynchronous round measure.  Set
    ``to_quiescence=True`` to keep running after agreement so that
    ``words_total`` counts every message the protocol ever sends (what
    Theorems 6-10 bound).

    ``workers`` selects the parallel crypto plane (DESIGN §10): ``> 0``
    verifies over that many pool processes with speculative batch
    pre-verification; ``0`` is the inline reference plane.  ``None``
    reads the ``REPRO_WORKERS`` environment variable (default 0).
    Verdicts, word/byte/message totals and agreement results are
    byte-identical across worker counts — only wall clock changes.

    ``chaos`` attaches the link-fault plane (DESIGN §11): a
    :class:`~repro.net.chaos.ChaosSpec`, a prebuilt
    :class:`~repro.net.chaos.ChaosPlane`, or a spec string such as
    ``"partition:0|1,2,3@2-20;drop:0.05"``.  Spec forms are seeded from
    ``seed``, so a chaos run is exactly as reproducible as a clean one;
    injected fault counts appear under ``metrics_summary["counters"]
    ["chaos"]``.  Works on every transport (times are rounds on the
    simulator, seconds on realtime transports).
    """
    if transport != "sim" and (
        to_quiescence
        or delay_model is not None
        or scheduler is not None
        or max_steps is not None
    ):
        # Refuse rather than silently return numbers measured under
        # different semantics than the caller asked for.
        raise ValueError(
            "to_quiescence, delay_model, scheduler and max_steps apply to "
            f"the sim transport only, not {transport!r}"
        )
    setup = setup or TrustedSetup.generate(n, f, params=params, seed=seed)
    root_factory = lambda party: ADKG(broadcast_kind=broadcast_kind)  # noqa: E731
    transport_kwargs: dict[str, Any] = (
        {"delay_model": delay_model or FixedDelay(1.0), "scheduler": scheduler}
        if transport == "sim"
        else {}
    )
    if measure_bytes is not None:
        # None means "the transport's default": off for sim/asyncio, and
        # always-on for TCP (which refuses measure_bytes=False).
        transport_kwargs["measure_bytes"] = measure_bytes
    if batching is not None:
        transport_kwargs["batching"] = batching
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0") or "0")
    if workers:
        transport_kwargs["workers"] = workers
    if chaos is not None:
        transport_kwargs["chaos"] = chaos
    runtime = make_transport(
        transport,
        setup,
        behaviors=behaviors,
        seed=seed,
        **transport_kwargs,
    )
    try:
        step_kwargs = {"max_steps": max_steps} if max_steps is not None else {}
        if to_quiescence:
            # Simulator only (validated above): keep running after agreement
            # so words_total counts every message ever sent.
            runtime.start(root_factory)
            runtime.run(**step_kwargs)
        elif step_kwargs:
            # A raised delivery budget (n=100 sends ~9M messages — past the
            # default 5M-delivery guard) only makes sense on the simulator.
            runtime.start(root_factory)
            runtime.run_until_all_honest_output(**step_kwargs)
        else:
            runtime.run_sync(root_factory, timeout=timeout)
        return _collect_result(runtime, transport)
    finally:
        # Detach the verification pool from the (possibly caller-owned)
        # setup's cache; the worker processes themselves stay warm for
        # the next run.
        runtime.shutdown_workers()


__all__ = [
    "run_adkg",
    "ADKGResult",
    "TrustedSetup",
    "Simulation",
    "make_transport",
    "__version__",
]
