"""repro — reproduction of *Reaching Consensus for Asynchronous Distributed
Key Generation* (Abraham, Jovanovic, Maller, Meiklejohn, Stern, Tomescu;
PODC 2021, arXiv:2102.09041).

Quickstart::

    from repro import run_adkg

    result = run_adkg(n=7, seed=1)
    print(result.public_key)        # the group public key g^{F(0)}
    print(result.words_total)      # measured communication in words
    print(result.rounds)           # asynchronous rounds to agreement

Layers (bottom-up): :mod:`repro.crypto` (fields, groups, signatures,
PVSS, threshold VRF), :mod:`repro.net` (sans-io protocol substrate +
simulator), :mod:`repro.broadcast` (reliable broadcast),
:mod:`repro.core` (Gather, Proposal Election, NWH, A-DKG) and
:mod:`repro.baselines` (the Ω(n⁴) comparator).  See DESIGN.md for the
full inventory and EXPERIMENTS.md for paper-vs-measured results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.adkg import ADKG
from repro.crypto.keys import TrustedSetup
from repro.net.delays import DelayModel, FixedDelay
from repro.net.runtime import Simulation

__version__ = "1.0.0"


@dataclass
class ADKGResult:
    """Outcome of one simulated A-DKG execution."""

    n: int
    f: int
    transcript: Any
    public_key: Any
    outputs: dict[int, Any]
    words_total: int
    messages_total: int
    rounds: float
    views: int
    metrics_summary: dict = field(default_factory=dict)

    @property
    def agreed(self) -> bool:
        values = list(self.outputs.values())
        return bool(values) and all(v == values[0] for v in values)


def run_adkg(
    n: int = 7,
    f: Optional[int] = None,
    seed: int = 0,
    params: str = "TESTING",
    delay_model: Optional[DelayModel] = None,
    scheduler=None,
    behaviors=None,
    broadcast_kind: str = "ct",
    to_quiescence: bool = False,
    setup: Optional[TrustedSetup] = None,
) -> ADKGResult:
    """Run one A-DKG simulation and return its result + metrics.

    With the default ``delay_model=FixedDelay(1.0)`` the reported
    ``rounds`` equals the length of the longest causal message chain —
    the standard asynchronous round measure.  Set ``to_quiescence=True``
    to keep running after agreement so that ``words_total`` counts every
    message the protocol ever sends (what Theorems 6-10 bound).
    """
    setup = setup or TrustedSetup.generate(n, f, params=params, seed=seed)
    sim = Simulation(
        setup,
        delay_model=delay_model or FixedDelay(1.0),
        scheduler=scheduler,
        behaviors=behaviors,
        seed=seed,
    )
    sim.start(lambda party: ADKG(broadcast_kind=broadcast_kind))
    if to_quiescence:
        sim.run()
    else:
        sim.run_until_all_honest_output()
    outputs = sim.honest_results()
    transcript = next(iter(outputs.values()), None)
    views = 0
    for i in sim.honest:
        nwh = sim.parties[i].instance(("nwh",))
        if nwh is not None:
            views = max(views, nwh.views_entered)
    return ADKGResult(
        n=sim.n,
        f=sim.f,
        transcript=transcript,
        public_key=getattr(transcript, "public_key", None),
        outputs=outputs,
        words_total=sim.metrics.words_total,
        messages_total=sim.metrics.messages_total,
        rounds=sim.time,
        views=views,
        metrics_summary=sim.metrics.summary(),
    )


__all__ = ["run_adkg", "ADKGResult", "TrustedSetup", "Simulation", "__version__"]
