"""Prime-field arithmetic.

Field elements are plain Python ints in ``[0, q)``; the :class:`PrimeField`
object carries the modulus and provides the operations.  Keeping elements
as raw ints (rather than wrapper objects) makes polynomial evaluation and
Lagrange interpolation — the hot paths of the PVSS layer — several times
faster.
"""

from __future__ import annotations

import random
from typing import Iterable


class PrimeField:
    """The field ``Z_q`` for a prime ``q``."""

    __slots__ = ("q",)

    def __init__(self, q: int) -> None:
        if q < 2:
            raise ValueError("field modulus must be >= 2")
        self.q = q

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.q == self.q

    def __hash__(self) -> int:
        return hash(("PrimeField", self.q))

    def __repr__(self) -> str:
        return f"PrimeField(q={self.q:#x})"

    # -- element construction -------------------------------------------------

    def element(self, value: int) -> int:
        """Reduce an arbitrary int into the field."""
        return value % self.q

    def rand(self, rng: random.Random) -> int:
        """A uniformly random field element."""
        return rng.randrange(self.q)

    def rand_nonzero(self, rng: random.Random) -> int:
        """A uniformly random non-zero field element."""
        return rng.randrange(1, self.q)

    # -- arithmetic ------------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.q

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.q

    def neg(self, a: int) -> int:
        return -a % self.q

    def mul(self, a: int, b: int) -> int:
        return a * b % self.q

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.q)

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ``ZeroDivisionError`` for 0."""
        if a % self.q == 0:
            raise ZeroDivisionError("no inverse of 0")
        return pow(a, -1, self.q)

    def div(self, a: int, b: int) -> int:
        return a * self.inv(b) % self.q

    def sum(self, values: Iterable[int]) -> int:
        total = 0
        for value in values:
            total += value
        return total % self.q

    def prod(self, values: Iterable[int]) -> int:
        total = 1
        for value in values:
            total = total * value % self.q
        return total

    def contains(self, value: int) -> bool:
        return isinstance(value, int) and 0 <= value < self.q
