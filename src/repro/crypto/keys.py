"""PKI setup: per-party key material and the public directory.

The paper assumes only a PKI (Section 1): each party publishes a signing
public key and a PVSS encryption public key before the protocol starts.
:class:`TrustedSetup` generates that PKI deterministically from a seed —
it is *setup of keys only*, not a trusted dealer for any secret.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field

from repro.crypto.group import SchnorrGroup
from repro.crypto.pairing import BilinearGroup, GroupElement
from repro.crypto.params import GroupParams, get_params
from repro.crypto.schnorr import SigningKey, keygen
from repro.crypto.verify_cache import VerifyCache


@dataclass(frozen=True)
class PartySecret:
    """One party's private key material."""

    index: int
    sign: SigningKey
    enc_sk: int


@dataclass(frozen=True)
class PublicDirectory:
    """Everything public: group descriptions and all parties' public keys."""

    n: int
    f: int
    params: GroupParams = dc_field(metadata={"no_encode": True})
    sign_group: SchnorrGroup = dc_field(metadata={"no_encode": True})
    pair_group: BilinearGroup = dc_field(metadata={"no_encode": True})
    sign_pks: tuple[int, ...]
    enc_pks: tuple[GroupElement, ...]
    session: str
    #: Per-run verification memo (see :mod:`repro.crypto.verify_cache`);
    #: scoped to the directory so verdicts never cross runs or key sets.
    verify_cache: VerifyCache = dc_field(
        default_factory=VerifyCache,
        compare=False,
        repr=False,
        metadata={"no_encode": True},
    )

    def __post_init__(self) -> None:
        if self.n < 3 * self.f + 1:
            raise ValueError(f"need n >= 3f + 1, got n={self.n}, f={self.f}")
        if len(self.sign_pks) != self.n or len(self.enc_pks) != self.n:
            raise ValueError("one public key per party required")

    @property
    def quorum(self) -> int:
        """``n - f``: the size of every waiting threshold in the paper."""
        return self.n - self.f

    def share_index(self, party: int) -> int:
        """The Shamir evaluation point used for ``party`` (1-based; 0 is the secret)."""
        if not 0 <= party < self.n:
            raise IndexError(f"party {party} out of range")
        return party + 1


#: Leading tag + version of a :func:`directory_spec` tuple.  Checked
#: strictly on rebuild so a future format bump can never be misread.
DIRECTORY_SPEC_TAG = "repro-dirspec"
DIRECTORY_SPEC_VERSION = 1


def directory_spec(directory: PublicDirectory) -> tuple:
    """A codec-encodable description of a directory's *public* contents.

    This is the byte-level fingerprint the process-pool verification
    plane ships to workers (:mod:`repro.crypto.pool`): everything a
    verdict depends on — group parameters, public keys, the session
    label — and nothing else (no caches, no live group objects).  A
    worker rebuilds an equivalent directory via :func:`rebuild_directory`
    and the rebuilt object verifies byte-identically because every
    group construction here is deterministic in the spec fields.
    """
    params = directory.params
    return (
        DIRECTORY_SPEC_TAG,
        DIRECTORY_SPEC_VERSION,
        directory.n,
        directory.f,
        params.name,
        params.p,
        params.q,
        params.g,
        params.security_bits,
        directory.sign_pks,
        directory.enc_pks,
        directory.session,
    )


def rebuild_directory(spec: tuple) -> PublicDirectory:
    """Rebuild a :class:`PublicDirectory` from a :func:`directory_spec`.

    Uses exactly the group-construction recipe of
    :meth:`TrustedSetup.generate`, so a verification run against the
    rebuilt directory is equation-for-equation the one the originating
    process would run.  The rebuilt directory owns a *fresh*
    :class:`~repro.crypto.verify_cache.VerifyCache` — worker-side
    verdicts are never shared back by reference, only returned as bools.
    """
    if not isinstance(spec, tuple) or len(spec) != 12 or spec[0] != DIRECTORY_SPEC_TAG:
        raise ValueError("not a directory spec")
    if spec[1] != DIRECTORY_SPEC_VERSION:
        raise ValueError(f"unsupported directory spec version {spec[1]!r}")
    (_tag, _ver, n, f, name, p, q, g, bits, sign_pks, enc_pks, session) = spec
    params = GroupParams(name=name, p=p, q=q, g=g, security_bits=bits)
    sign_group = SchnorrGroup(params)
    pair_group = BilinearGroup(params.q, name=f"{params.name}-pair")
    return PublicDirectory(
        n=n,
        f=f,
        params=params,
        sign_group=sign_group,
        pair_group=pair_group,
        sign_pks=tuple(sign_pks),
        enc_pks=tuple(enc_pks),
        session=session,
    )


class TrustedSetup:
    """Deterministic PKI generation for an ``n``-party system."""

    def __init__(self, directory: PublicDirectory, secrets: tuple[PartySecret, ...]):
        self.directory = directory
        self._secrets = secrets

    @classmethod
    def generate(
        cls,
        n: int,
        f: int | None = None,
        params: GroupParams | str = "TESTING",
        seed: int = 0,
        session: str = "adkg-repro",
    ) -> "TrustedSetup":
        """Generate key material for ``n`` parties tolerating ``f`` faults.

        ``f`` defaults to the optimum ``floor((n - 1) / 3)``.
        """
        if isinstance(params, str):
            params = get_params(params)
        if f is None:
            f = (n - 1) // 3
        rng = random.Random(("trusted-setup", params.name, n, f, seed, session).__repr__())
        sign_group = SchnorrGroup(params)
        pair_group = BilinearGroup(params.q, name=f"{params.name}-pair")
        secrets = []
        sign_pks = []
        enc_pks = []
        for index in range(n):
            signing = keygen(sign_group, rng)
            enc_sk = pair_group.rand_scalar(rng) or 1
            secrets.append(PartySecret(index=index, sign=signing, enc_sk=enc_sk))
            sign_pks.append(signing.pk)
            enc_pks.append(pair_group.exp(pair_group.g, enc_sk))
        directory = PublicDirectory(
            n=n,
            f=f,
            params=params,
            sign_group=sign_group,
            pair_group=pair_group,
            sign_pks=tuple(sign_pks),
            enc_pks=tuple(enc_pks),
            session=session,
        )
        return cls(directory, tuple(secrets))

    def secret(self, party: int) -> PartySecret:
        return self._secrets[party]

    @property
    def all_secrets(self) -> tuple[PartySecret, ...]:
        return self._secrets
