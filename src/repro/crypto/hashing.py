"""Hash helpers: domain-separated SHA-256, hash-to-int and expansion.

All Fiat-Shamir challenges and VRF output extraction go through this
module, so the domain separation discipline lives in one place.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.crypto.encoding import encode

DIGEST_BYTES = 32


def hash_bytes(domain: str, *parts: Any) -> bytes:
    """SHA-256 of the domain tag plus the canonical encoding of ``parts``."""
    hasher = hashlib.sha256()
    hasher.update(domain.encode("utf-8"))
    hasher.update(b"\x00")
    for part in parts:
        hasher.update(encode(part))
    return hasher.digest()


def hash_to_int(domain: str, modulus: int, *parts: Any) -> int:
    """Hash ``parts`` into ``[0, modulus)``.

    The output is expanded to at least 128 bits beyond the modulus size so
    the modular reduction bias is negligible.
    """
    if modulus <= 1:
        raise ValueError("modulus must be > 1")
    target_bytes = (modulus.bit_length() + 7) // 8 + 16
    raw = expand(domain, target_bytes, *parts)
    return int.from_bytes(raw, "big") % modulus


def expand(domain: str, length: int, *parts: Any) -> bytes:
    """Expand ``parts`` into ``length`` pseudorandom bytes (counter mode)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    seed = hash_bytes(domain, *parts)
    blocks = []
    counter = 0
    while sum(len(block) for block in blocks) < length:
        hasher = hashlib.sha256()
        hasher.update(seed)
        hasher.update(counter.to_bytes(4, "big"))
        blocks.append(hasher.digest())
        counter += 1
    return b"".join(blocks)[:length]
