"""Content-addressed memoization of cryptographic verification.

The protocols above the crypto layer re-verify the same values over and
over: a PVSS transcript arrives once per RBC echo path, a signed vote is
checked inside every certificate that carries it, and (in-process) every
party repeats the identical pairing checks its peers already ran.  All of
these verifications are pure functions of the public directory and the
value bytes, so the repo amortizes them behind a :class:`VerifyCache`.

Safety under Byzantine inputs comes from the cache key, not from trust in
the sender: a result is stored under the SHA-256 of the value's canonical
:mod:`repro.net.codec` encoding (plus a domain tag and any context parts).
A transcript with even one mutated byte encodes to different bytes, hashes
to a different key, and misses the cache — there is no way to inherit a
``True`` verdict from the unmutated original.  Values the codec cannot
encode are never cached (the check simply runs), so the cache can only
deduplicate work, never change a verdict.

Scoping: each :class:`~repro.crypto.keys.PublicDirectory` owns one cache
(created in its ``__post_init__`` default), so results never leak between
runs or between differently-keyed systems, and per-run counters are
meaningful.  Within one simulated run all in-process parties share the
directory and therefore the cache; the ``*.misses`` counter is exactly
"distinct values verified", which is the structural quantity the perf
harness asserts on (see ``benchmarks/bench_hotpath.py``).

Identity memoization (:class:`IdentityMemo`) is a second, cheaper layer:
it maps a *specific object* to a derived value (its canonical digest, its
encoded bytes).  It assumes the object is immutable — true for the frozen
dataclasses that cross the wire — and is keyed by ``id`` with a weakref
guard, so a different (e.g. attacker-rebuilt) object never inherits the
original's entry.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import Counter
from typing import Any, Callable, Iterable, Optional, TypeVar

T = TypeVar("T")

_ATOMS = (int, str, bytes, bool, type(None))


class IdentityMemo:
    """An ``id``-keyed memo with weakref invalidation.

    ``get`` returns a previously stored value only if the stored weakref
    still points at the *same object* — a recycled ``id`` after garbage
    collection can never alias a stale entry.  Objects that do not
    support weak references are simply not memoized.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[int, tuple[weakref.ref, Any]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, obj: Any) -> Optional[Any]:
        entry = self._entries.get(id(obj))
        if entry is not None and entry[0]() is obj:
            return entry[1]
        return None

    def put(self, obj: Any, value: Any) -> None:
        oid = id(obj)
        try:
            ref = weakref.ref(obj, lambda _ref, _e=self._entries, _k=oid: _e.pop(_k, None))
        except TypeError:
            return  # ints, tuples, ... — not weakref-able, not worth memoizing
        self._entries[oid] = (ref, value)


#: Process-wide digest memo: object identity -> canonical content digest.
#: Safe to share across runs because a digest depends only on the value.
_digest_memo = IdentityMemo()


def content_digest(value: Any) -> Optional[bytes]:
    """SHA-256 of ``value``'s canonical codec bytes (identity-memoized).

    Returns ``None`` when the codec cannot encode the value; callers must
    then treat the value as uncacheable.
    """
    cached = _digest_memo.get(value)
    if cached is not None:
        return cached
    from repro.net import codec  # local import: codec registers lazily

    try:
        encoded = codec.encode(value)
    except codec.CodecError:
        return None
    digest = hashlib.sha256(encoded).digest()
    _digest_memo.put(value, digest)
    return digest


def _part_key(part: Any) -> Optional[Any]:
    """A hashable cache-key component for one context part."""
    if isinstance(part, _ATOMS):
        return (type(part).__name__, part)
    return content_digest(part)


#: Canonical-bytes memo for the pool plane only.  Unlike ``_digest_memo``
#: it keeps the full encodings alive (for the objects' lifetime), which
#: is what lets one encode serve both the cache key and the worker task.
_encoding_memo = IdentityMemo()


def content_encoding(value: Any) -> Optional[bytes]:
    """Canonical codec bytes of ``value`` (identity-memoized).

    ``None`` when the codec cannot encode the value.  Only the pool
    dispatch paths use this — the inline plane keeps digests only.
    """
    if isinstance(value, _ATOMS):
        from repro.net import codec

        try:
            return codec.encode(value)
        except codec.CodecError:
            return None
    cached = _encoding_memo.get(value)
    if cached is not None:
        return cached
    from repro.net import codec

    try:
        encoded = codec.encode(value)
    except codec.CodecError:
        return None
    _encoding_memo.put(value, encoded)
    return encoded


def _part_key_and_blob(part: Any) -> Optional[tuple[Any, bytes]]:
    """One encode serving both: the part's cache-key component and its
    worker-task bytes.  Warms ``_digest_memo`` so the consuming
    ``memoize`` keys the same object without re-encoding."""
    if isinstance(part, _ATOMS):
        blob = content_encoding(part)
        if blob is None:
            return None
        return (type(part).__name__, part), blob
    blob = content_encoding(part)
    if blob is None:
        return None
    digest = _digest_memo.get(part)
    if digest is None:
        digest = hashlib.sha256(blob).digest()
        _digest_memo.put(part, digest)
    return digest, blob


#: Placeholder reserved in ``_speculative`` between key reservation and
#: future submission (both on the delivering thread, so never observed
#: by ``memoize``; treated as "no speculation" if it ever is).
_PENDING = ("pending",)


class VerifyCache:
    """Per-directory store of verification verdicts, with counters.

    ``stats`` counts, per domain: ``<domain>.calls`` (every memoize
    request), ``<domain>.hits`` / ``<domain>.misses`` (cacheable requests
    served from / added to the store) and ``<domain>.uncacheable``
    (values the codec could not encode — always recomputed).

    With a :class:`~repro.crypto.pool.PoolVerifier` attached
    (:meth:`attach_pool`), two more paths exist.  *Speculation*
    (:meth:`speculate`): the transport pre-submits a frame's verifiable
    payloads; resolved verdicts wait in a side table and are consumed on
    the first real miss — ``<domain>.misses`` is counted *before* the
    speculative verdict is consulted, so the miss counters (the
    structural "distinct values verified" quantity the benchmarks assert
    on) stay byte-identical to the inline plane.  *Demand dispatch*: a
    miss in a domain registered with ``demand=True`` blocks on one pool
    round-trip instead of computing inline.  Extra counters:
    ``<domain>.speculative`` (tasks submitted), ``.speculative_done``
    (verdicts that resolved unconsumed), ``.speculative_hits`` (misses
    served by speculation) and ``.offloaded`` (demand dispatches).

    All stats and table mutations happen under one lock: speculation
    completion callbacks run on executor threads concurrent with the
    delivering thread.  The lock is never held across ``compute()`` or
    content hashing, so re-entrant verification (a certificate check
    verifying its votes) cannot deadlock.
    """

    __slots__ = (
        "_results",
        "stats",
        "_identity",
        "_lock",
        "_pool",
        "_pool_contexts",
        "_speculative",
    )

    def __init__(self) -> None:
        self._results: dict[tuple, Any] = {}
        self.stats: Counter = Counter()
        self._identity: dict[str, IdentityMemo] = {}
        self._lock = threading.Lock()
        self._pool: Any = None
        self._pool_contexts: dict[str, tuple] = {}
        self._speculative: dict[tuple, tuple] = {}

    def __len__(self) -> int:
        return len(self._results)

    # -- pool attachment ---------------------------------------------------------------

    def attach_pool(self, pool: Any, contexts: Optional[dict[str, tuple]] = None) -> None:
        """Route future misses/speculations through ``pool``.

        ``contexts`` maps a domain to extra parts appended to every task
        shipped for it — context a worker cannot derive from the
        directory (e.g. a KZG setup's ``g^τ``).  The extra parts are
        *not* in the cache key (they are fixed per cache), only in the
        worker task.
        """
        with self._lock:
            self._pool = pool
            self._pool_contexts = dict(contexts or {})

    def detach_pool(self) -> None:
        """Stop dispatching; in-flight speculations are forgotten.

        Their futures still complete in the pool (results discarded by
        the completion callback finding no owned entry), so nothing is
        abandoned mid-compute.
        """
        with self._lock:
            self._pool = None
            self._pool_contexts = {}
            self._speculative = {}

    @property
    def pool(self) -> Any:
        return self._pool

    # -- memoization -------------------------------------------------------------------

    def identity_memoize(
        self,
        domain: str,
        obj: Any,
        context: tuple,
        parts: tuple,
        compute: Callable[[], T],
    ) -> T:
        """:meth:`memoize` with an object-identity fast layer in front.

        When the *same immutable object* is checked repeatedly under the
        same ``context`` (an in-process multicast fans one frozen payload
        out to n-1 recipients), the verdict is returned from an
        ``id``-keyed memo without hashing anything.  Any context mismatch
        — e.g. a replayed object under a different claimed sender — falls
        through to the content-addressed layer, which re-keys on the
        canonical bytes of ``parts``; a different object with equal bytes
        still hits there.  Counted as a hit: the request was served from
        cache.
        """
        memo = self._identity.get(domain)
        if memo is None:
            memo = self._identity[domain] = IdentityMemo()
        entry = memo.get(obj)
        if entry is not None and entry[0] == context:
            with self._lock:
                self.stats[f"{domain}.calls"] += 1
                self.stats[f"{domain}.hits"] += 1
            return entry[1]
        result = self.memoize(domain, parts, compute)
        memo.put(obj, (context, result))
        return result

    def memoize(self, domain: str, parts: tuple, compute: Callable[[], T]) -> T:
        """Return ``compute()``, served from the cache when possible.

        ``parts`` is the full verification context: the value under test
        plus everything the verdict depends on (thresholds, messages,
        signer indices, ...).  Each part is keyed by its canonical content
        digest, so two contexts share a verdict iff they are byte-equal.
        """
        key_parts = []
        uncacheable = False
        for part in parts:
            part_key = _part_key(part)
            if part_key is None:
                uncacheable = True
                break
            key_parts.append(part_key)
        if uncacheable:
            with self._lock:
                self.stats[f"{domain}.calls"] += 1
                self.stats[f"{domain}.uncacheable"] += 1
            return compute()
        key = (domain, *key_parts)
        with self._lock:
            self.stats[f"{domain}.calls"] += 1
            if key in self._results:
                self.stats[f"{domain}.hits"] += 1
                return self._results[key]
            # A genuine miss is counted *before* any speculative verdict
            # is consumed: miss counters stay identical to the inline
            # plane no matter how speculation raced.
            self.stats[f"{domain}.misses"] += 1
            entry = self._speculative.pop(key, None)
            pool = self._pool
        result: Any = None
        decided = False
        if entry is not None and entry is not _PENDING:
            verdict = self._consume_speculation(domain, entry, pool)
            if verdict is not None:
                result, decided = verdict, True
        if not decided and pool is not None and pool.demands(domain):
            extra = self._pool_contexts.get(domain, ())
            verdict = pool.verify(domain, (*parts, *extra))
            if verdict is not None:
                with self._lock:
                    self.stats[f"{domain}.offloaded"] += 1
                result, decided = verdict, True
        if not decided:
            result = compute()
        with self._lock:
            self._results[key] = result
        return result

    def _consume_speculation(
        self, domain: str, entry: tuple, pool: Any
    ) -> Optional[bool]:
        """Resolve a popped speculative entry, awaiting its future if the
        protocol's request beat the worker (losers are never dropped)."""
        verdict: Optional[bool] = None
        if entry[0] == "done":
            verdict = entry[1]
        elif entry[0] == "future" and pool is not None:
            verdict = pool.result_at(entry[2], entry[3])
        if verdict is not None:
            with self._lock:
                self.stats[f"{domain}.speculative_hits"] += 1
        return verdict

    # -- speculation -------------------------------------------------------------------

    def speculate(self, items: Iterable[tuple[str, tuple]]) -> int:
        """Pre-submit ``(domain, parts)`` verification tasks to the pool.

        Called by the transports with every verifiable payload of a
        just-delivered coalesced frame, *before* the protocol state
        machine activates.  Already-cached and already-speculated keys
        are skipped; heavy (demand-registered) tasks are submitted one
        per future and light tasks chunked one batch per worker (see the
        dispatch comment below).  Returns the number of tasks actually
        submitted.

        Safety: speculation computes the same pure verdicts the inline
        plane would, keyed content-addressed — a Byzantine payload can
        waste worker time but its ``False`` lands under its own bytes'
        key and can never shadow a valid value's verdict.  The call
        consumes no protocol RNG and never reorders delivery.
        """
        pool = self._pool
        if pool is None or pool.broken:
            return 0
        staged = []
        for domain, parts in items:
            if not pool.can_verify(domain):
                continue
            key_parts = []
            blobs = []
            ok = True
            for part in parts:
                keyed = _part_key_and_blob(part)
                if keyed is None:
                    ok = False
                    break
                key_parts.append(keyed[0])
                blobs.append(keyed[1])
            if not ok:
                continue
            # Context parts ship with the task but are not in the key
            # (they are fixed per cache — see attach_pool).
            for part in self._pool_contexts.get(domain, ()):
                blob = content_encoding(part)
                if blob is None:
                    ok = False
                    break
                blobs.append(blob)
            if ok:
                staged.append(((domain, *key_parts), domain, tuple(blobs)))
        if not staged:
            return 0
        encoded = []
        with self._lock:
            for key, domain, blobs in staged:
                if key in self._results or key in self._speculative:
                    continue
                self._speculative[key] = _PENDING
                encoded.append((key, domain, blobs))
        if not encoded:
            return 0
        submitted = 0
        # Heavy (demand-registered) tasks travel one per future: the
        # first consuming ``memoize`` then awaits a single verification,
        # not a worker's whole chunk, while the remaining tasks spread
        # over the other workers.  Light tasks stay chunked so one worker
        # call settles them through the RLC multi-pairing aggregate.
        heavy = [item for item in encoded if pool.demands(item[1])]
        light = [item for item in encoded if not pool.demands(item[1])]
        batches: list[list] = [[item] for item in heavy]
        if light:
            chunk_size = max(1, -(-len(light) // max(1, pool.workers)))
            batches.extend(
                light[start : start + chunk_size]
                for start in range(0, len(light), chunk_size)
            )
        for chunk in batches:
            future = pool.submit([(domain, blob) for _key, domain, blob in chunk])
            with self._lock:
                if future is None:
                    for key, _domain, _blob in chunk:
                        if self._speculative.get(key) is _PENDING:
                            del self._speculative[key]
                    continue
                for index, (key, domain, _blob) in enumerate(chunk):
                    self._speculative[key] = ("future", domain, future, index)
                    self.stats[f"{domain}.speculative"] += 1
            submitted += len(chunk)
            future.add_done_callback(
                lambda f, chunk=chunk: self._on_speculation_done(f, chunk)
            )
        return submitted

    def _on_speculation_done(self, future: Any, chunk: list) -> None:
        """Completion callback (executor thread): park resolved verdicts.

        Only entries still owned by this future are touched — a key the
        protocol already consumed (by awaiting the future directly) or
        re-speculated is left alone.  Undecided slots are dropped so the
        eventual miss computes inline.
        """
        try:
            results = future.result()
        except Exception:
            results = None
        with self._lock:
            for index, (key, domain, _blob) in enumerate(chunk):
                entry = self._speculative.get(key)
                if entry is None or entry[0] != "future" or entry[2] is not future:
                    continue
                verdict = None
                if results is not None and index < len(results):
                    verdict = results[index]
                if verdict is None:
                    del self._speculative[key]
                else:
                    self._speculative[key] = ("done", bool(verdict))
                    self.stats[f"{domain}.speculative_done"] += 1

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters (for metrics/benchmarks).

        Taken under the cache lock: completion callbacks mutate the
        counters from executor threads.
        """
        with self._lock:
            return dict(self.stats)
