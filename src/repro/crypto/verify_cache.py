"""Content-addressed memoization of cryptographic verification.

The protocols above the crypto layer re-verify the same values over and
over: a PVSS transcript arrives once per RBC echo path, a signed vote is
checked inside every certificate that carries it, and (in-process) every
party repeats the identical pairing checks its peers already ran.  All of
these verifications are pure functions of the public directory and the
value bytes, so the repo amortizes them behind a :class:`VerifyCache`.

Safety under Byzantine inputs comes from the cache key, not from trust in
the sender: a result is stored under the SHA-256 of the value's canonical
:mod:`repro.net.codec` encoding (plus a domain tag and any context parts).
A transcript with even one mutated byte encodes to different bytes, hashes
to a different key, and misses the cache — there is no way to inherit a
``True`` verdict from the unmutated original.  Values the codec cannot
encode are never cached (the check simply runs), so the cache can only
deduplicate work, never change a verdict.

Scoping: each :class:`~repro.crypto.keys.PublicDirectory` owns one cache
(created in its ``__post_init__`` default), so results never leak between
runs or between differently-keyed systems, and per-run counters are
meaningful.  Within one simulated run all in-process parties share the
directory and therefore the cache; the ``*.misses`` counter is exactly
"distinct values verified", which is the structural quantity the perf
harness asserts on (see ``benchmarks/bench_hotpath.py``).

Identity memoization (:class:`IdentityMemo`) is a second, cheaper layer:
it maps a *specific object* to a derived value (its canonical digest, its
encoded bytes).  It assumes the object is immutable — true for the frozen
dataclasses that cross the wire — and is keyed by ``id`` with a weakref
guard, so a different (e.g. attacker-rebuilt) object never inherits the
original's entry.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import Counter
from typing import Any, Callable, Optional, TypeVar

T = TypeVar("T")

_ATOMS = (int, str, bytes, bool, type(None))


class IdentityMemo:
    """An ``id``-keyed memo with weakref invalidation.

    ``get`` returns a previously stored value only if the stored weakref
    still points at the *same object* — a recycled ``id`` after garbage
    collection can never alias a stale entry.  Objects that do not
    support weak references are simply not memoized.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[int, tuple[weakref.ref, Any]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, obj: Any) -> Optional[Any]:
        entry = self._entries.get(id(obj))
        if entry is not None and entry[0]() is obj:
            return entry[1]
        return None

    def put(self, obj: Any, value: Any) -> None:
        oid = id(obj)
        try:
            ref = weakref.ref(obj, lambda _ref, _e=self._entries, _k=oid: _e.pop(_k, None))
        except TypeError:
            return  # ints, tuples, ... — not weakref-able, not worth memoizing
        self._entries[oid] = (ref, value)


#: Process-wide digest memo: object identity -> canonical content digest.
#: Safe to share across runs because a digest depends only on the value.
_digest_memo = IdentityMemo()


def content_digest(value: Any) -> Optional[bytes]:
    """SHA-256 of ``value``'s canonical codec bytes (identity-memoized).

    Returns ``None`` when the codec cannot encode the value; callers must
    then treat the value as uncacheable.
    """
    cached = _digest_memo.get(value)
    if cached is not None:
        return cached
    from repro.net import codec  # local import: codec registers lazily

    try:
        encoded = codec.encode(value)
    except codec.CodecError:
        return None
    digest = hashlib.sha256(encoded).digest()
    _digest_memo.put(value, digest)
    return digest


def _part_key(part: Any) -> Optional[Any]:
    """A hashable cache-key component for one context part."""
    if isinstance(part, _ATOMS):
        return (type(part).__name__, part)
    return content_digest(part)


class VerifyCache:
    """Per-directory store of verification verdicts, with counters.

    ``stats`` counts, per domain: ``<domain>.calls`` (every memoize
    request), ``<domain>.hits`` / ``<domain>.misses`` (cacheable requests
    served from / added to the store) and ``<domain>.uncacheable``
    (values the codec could not encode — always recomputed).
    """

    __slots__ = ("_results", "stats", "_identity")

    def __init__(self) -> None:
        self._results: dict[tuple, Any] = {}
        self.stats: Counter = Counter()
        self._identity: dict[str, IdentityMemo] = {}

    def __len__(self) -> int:
        return len(self._results)

    def identity_memoize(
        self,
        domain: str,
        obj: Any,
        context: tuple,
        parts: tuple,
        compute: Callable[[], T],
    ) -> T:
        """:meth:`memoize` with an object-identity fast layer in front.

        When the *same immutable object* is checked repeatedly under the
        same ``context`` (an in-process multicast fans one frozen payload
        out to n-1 recipients), the verdict is returned from an
        ``id``-keyed memo without hashing anything.  Any context mismatch
        — e.g. a replayed object under a different claimed sender — falls
        through to the content-addressed layer, which re-keys on the
        canonical bytes of ``parts``; a different object with equal bytes
        still hits there.  Counted as a hit: the request was served from
        cache.
        """
        memo = self._identity.get(domain)
        if memo is None:
            memo = self._identity[domain] = IdentityMemo()
        entry = memo.get(obj)
        if entry is not None and entry[0] == context:
            stats = self.stats
            stats[f"{domain}.calls"] += 1
            stats[f"{domain}.hits"] += 1
            return entry[1]
        result = self.memoize(domain, parts, compute)
        memo.put(obj, (context, result))
        return result

    def memoize(self, domain: str, parts: tuple, compute: Callable[[], T]) -> T:
        """Return ``compute()``, served from the cache when possible.

        ``parts`` is the full verification context: the value under test
        plus everything the verdict depends on (thresholds, messages,
        signer indices, ...).  Each part is keyed by its canonical content
        digest, so two contexts share a verdict iff they are byte-equal.
        """
        self.stats[f"{domain}.calls"] += 1
        key_parts = []
        for part in parts:
            part_key = _part_key(part)
            if part_key is None:
                self.stats[f"{domain}.uncacheable"] += 1
                return compute()
            key_parts.append(part_key)
        key = (domain, *key_parts)
        if key in self._results:
            self.stats[f"{domain}.hits"] += 1
            return self._results[key]
        self.stats[f"{domain}.misses"] += 1
        result = compute()
        self._results[key] = result
        return result

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters (for metrics/benchmarks)."""
        return dict(self.stats)
