"""Merkle-tree vector commitments (Section 2.6.3 / Section 7.1).

``Commit`` hashes a vector of byte strings into a 32-byte root;
``OpenProve`` returns the ``ceil(log2 n)``-length authentication path; and
``OpenVerify`` checks an opening.  Leaves are domain-separated from inner
nodes so a leaf can never be confused with a subtree (second-preimage
hardening).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path for one leaf."""

    index: int
    siblings: tuple[bytes, ...]

    def word_size(self) -> int:
        """One word per digest on the path (Section 7.1: p = O(log n) words)."""
        return max(1, len(self.siblings))


class MerkleTree:
    """A Merkle tree over a fixed vector of byte-string leaves."""

    def __init__(self, leaves: Sequence[bytes]) -> None:
        if not leaves:
            raise ValueError("cannot build a Merkle tree over zero leaves")
        self._leaf_count = len(leaves)
        level = [_hash_leaf(leaf) for leaf in leaves]
        self._levels = [level]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [level[-1]]
            level = [
                _hash_node(level[i], level[i + 1]) for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return self._leaf_count

    def prove(self, index: int) -> MerkleProof:
        """Authentication path for leaf ``index``."""
        if not 0 <= index < self._leaf_count:
            raise IndexError(f"leaf index {index} out of range")
        siblings = []
        position = index
        for level in self._levels[:-1]:
            padded = level if len(level) % 2 == 0 or len(level) == 1 else level + [level[-1]]
            sibling_pos = position ^ 1
            if sibling_pos < len(padded):
                siblings.append(padded[sibling_pos])
            position //= 2
        return MerkleProof(index=index, siblings=tuple(siblings))


def verify_opening(
    root: bytes, leaf: bytes, proof: MerkleProof, leaf_count: int
) -> bool:
    """Check that ``leaf`` is at ``proof.index`` in the committed vector."""
    if not isinstance(proof, MerkleProof):
        return False
    if not 0 <= proof.index < leaf_count:
        return False
    node = _hash_leaf(leaf)
    position = proof.index
    width = leaf_count
    expected_siblings = 0
    probe = leaf_count
    while probe > 1:
        probe = (probe + 1) // 2
        expected_siblings += 1
    if len(proof.siblings) != expected_siblings:
        return False
    for sibling in proof.siblings:
        if position % 2 == 0:
            # We may be the duplicated last node of an odd level; the sibling
            # hash still reproduces the parent computed at build time.
            node = _hash_node(node, sibling)
        else:
            node = _hash_node(sibling, node)
        position //= 2
        width = (width + 1) // 2
    return node == root
