"""Schoenmakers-style scalar PVSS over the *real* Schnorr group.

A pairing-free publicly verifiable secret sharing: the classic scheme
the pre-aggregation literature (the paper's first barrier) builds from.
Unlike :mod:`repro.crypto.pvss` it (a) needs no pairing at all — every
check is a real DLEQ proof over the safe-prime group — and (b) does
**not** aggregate: combining k dealings keeps k transcripts around,
which is precisely why protocols built on it pay the extra factor of n.

It serves two roles in this repository: the honest-crypto reference the
simulated-pairing PVSS is tested against behaviourally, and the sharing
primitive a scalar-secret application would deploy today.

Scheme (Schoenmakers '99, adapted):

* dealer picks a degree-``f`` polynomial ``p``, publishes Feldman
  commitments ``C_k = g^{a_k}`` to its coefficients and, per party ``j``,
  the encrypted share ``Y_j = pk_j^{p(j)}`` with a DLEQ proof that the
  exponent of ``Y_j`` under ``pk_j`` equals the exponent of
  ``X_j = Π C_k^{j^k}`` under ``g``;
* anyone verifies all proofs against the commitments alone;
* party ``j`` decrypts ``S_j = Y_j^{1/sk_j} = g^{p(j)}`` with a DLEQ
  proof of correct decryption; ``f+1`` decrypted shares Lagrange-combine
  to ``g^{p(0)} = g^s`` (the secret lives in the exponent, as usual for
  PVSS-based randomness).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.crypto import nizk
from repro.crypto.group import SchnorrGroup
from repro.crypto.polynomial import lagrange_coefficients, random_polynomial
from repro.crypto.verify_cache import VerifyCache


@dataclass(frozen=True)
class ScalarDealing:
    """One dealer's published sharing."""

    dealer: int
    commitments: tuple[int, ...]  # Feldman commitments to coefficients
    encrypted_shares: tuple[int, ...]  # Y_j = pk_j^{p(j)}
    proofs: tuple[nizk.DleqProof, ...]

    def word_size(self) -> int:
        return (
            len(self.commitments) + len(self.encrypted_shares) + len(self.proofs)
        )


@dataclass(frozen=True)
class DecryptedShare:
    party: int
    value: int  # g^{p(j)}
    proof: nizk.DleqProof

    def word_size(self) -> int:
        return 2


def _share_commitment(group: SchnorrGroup, commitments: Sequence[int], x: int) -> int:
    """``X_x = Π C_k^{x^k} = g^{p(x)}`` from the coefficient commitments."""
    acc = group.identity
    power = 1
    for commitment in commitments:
        acc = group.mul(acc, group.exp(commitment, power))
        power = power * x % group.q
    return acc


def deal(
    group: SchnorrGroup,
    dealer: int,
    enc_pks: Sequence[int],
    threshold: int,
    rng: random.Random,
    secret: int | None = None,
) -> ScalarDealing:
    """Share a (fresh or given) secret to ``len(enc_pks)`` parties."""
    n = len(enc_pks)
    if n <= threshold:
        raise ValueError("need more parties than the threshold")
    poly = random_polynomial(group.scalar_field, threshold, rng, secret=secret)
    commitments = tuple(group.exp(group.g, a) for a in poly.coeffs)
    encrypted = []
    proofs = []
    for j in range(n):
        x = j + 1
        share = poly.evaluate(x)
        y_j = group.exp(enc_pks[j], share)
        x_j = group.exp(group.g, share)
        proof = nizk.prove_dleq(
            group, group.g, x_j, enc_pks[j], y_j, share, rng, "spvss", dealer, j
        )
        encrypted.append(y_j)
        proofs.append(proof)
    return ScalarDealing(
        dealer=dealer,
        commitments=commitments,
        encrypted_shares=tuple(encrypted),
        proofs=tuple(proofs),
    )


def verify_dealing(
    group: SchnorrGroup,
    dealing: ScalarDealing,
    enc_pks: Sequence[int],
    threshold: int,
    cache: Optional[VerifyCache] = None,
) -> bool:
    """Public verification against the commitments alone.

    Pass a :class:`VerifyCache` to memoize per distinct dealing (keyed on
    the dealing's content plus the key set and threshold); callers with a
    :class:`~repro.crypto.keys.PublicDirectory` should pass its
    ``verify_cache``.
    """
    if not isinstance(dealing, ScalarDealing):
        return False
    if cache is not None:
        return cache.memoize(
            "spvss-dealing",
            (dealing, tuple(enc_pks), threshold),
            lambda: _verify_dealing(group, dealing, enc_pks, threshold),
        )
    return _verify_dealing(group, dealing, enc_pks, threshold)


def _verify_dealing(
    group: SchnorrGroup,
    dealing: ScalarDealing,
    enc_pks: Sequence[int],
    threshold: int,
) -> bool:
    n = len(enc_pks)
    if len(dealing.commitments) != threshold + 1:
        return False
    if len(dealing.encrypted_shares) != n or len(dealing.proofs) != n:
        return False
    if not all(group.is_element(c) for c in dealing.commitments):
        return False
    for j in range(n):
        x_j = _share_commitment(group, dealing.commitments, j + 1)
        ok = nizk.verify_dleq(
            group,
            group.g,
            x_j,
            enc_pks[j],
            dealing.encrypted_shares[j],
            dealing.proofs[j],
            "spvss",
            dealing.dealer,
            j,
        )
        if not ok:
            return False
    return True


def decrypt_share(
    group: SchnorrGroup,
    dealing: ScalarDealing,
    party: int,
    enc_sk: int,
    rng: random.Random,
) -> DecryptedShare:
    """Party decrypts ``g^{p(party+1)}`` and proves it did so honestly."""
    y_j = dealing.encrypted_shares[party]
    inverse = pow(enc_sk, -1, group.q)
    s_j = group.exp(y_j, inverse)
    # DLEQ: log_{S_j}(Y_j) == log_g(pk) == enc_sk.
    proof = nizk.prove_dleq(
        group,
        group.g,
        group.exp(group.g, enc_sk),
        s_j,
        y_j,
        enc_sk,
        rng,
        "spvss-dec",
        dealing.dealer,
        party,
    )
    return DecryptedShare(party=party, value=s_j, proof=proof)


def verify_decrypted_share(
    group: SchnorrGroup,
    dealing: ScalarDealing,
    share: DecryptedShare,
    enc_pk: int,
    cache: Optional[VerifyCache] = None,
) -> bool:
    if not isinstance(share, DecryptedShare):
        return False
    if not isinstance(share.party, int) or not (
        0 <= share.party < len(dealing.encrypted_shares)
    ):
        # Out-of-range (or negative: Python-aliasing) party indices must
        # fail closed, not crash the verifier or alias another share.
        return False
    if not group.is_element(share.value):
        return False

    def check() -> bool:
        y_j = dealing.encrypted_shares[share.party]
        return nizk.verify_dleq(
            group,
            group.g,
            enc_pk,
            share.value,
            y_j,
            share.proof,
            "spvss-dec",
            dealing.dealer,
            share.party,
        )

    if cache is not None:
        return cache.memoize("spvss-share", (share, dealing, enc_pk), check)
    return check()


def combine_shares(
    group: SchnorrGroup, shares: Sequence[DecryptedShare], threshold: int
) -> int:
    """Recover ``g^{p(0)}`` (the secret in the exponent) from f+1 shares."""
    distinct = {share.party: share for share in shares}
    if len(distinct) < threshold + 1:
        raise ValueError(
            f"need at least {threshold + 1} decrypted shares, got {len(distinct)}"
        )
    chosen = sorted(distinct.values(), key=lambda share: share.party)[: threshold + 1]
    xs = [share.party + 1 for share in chosen]
    lambdas = lagrange_coefficients(group.scalar_field, xs, at=0)
    acc = group.identity
    for share, lam in zip(chosen, lambdas):
        acc = group.mul(acc, group.exp(share.value, lam))
    return acc
