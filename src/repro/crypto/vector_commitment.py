"""Pluggable vector commitments for the erasure-coded broadcast.

Section 7.1 instantiates the broadcast's vector commitment with Merkle
trees (``c = O(λ)``, proofs ``p = O(λ log n)``) and notes the SNARK-style
alternative with ``O(1)`` proofs and a trusted setup.  Both backends are
provided behind one interface so the broadcast (and hence the whole
stack) can be ablated between them (benchmark E10):

* :class:`MerkleScheme` — real SHA-256 Merkle trees, no setup;
* :class:`KZGScheme` — KZG commitments over the simulated pairing with
  one-word openings and a (simulation-grade, seed-derived) trusted setup.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.crypto.hashing import hash_to_int
from repro.crypto.kzg import KZGOpening, KZGSetup
from repro.crypto.merkle import MerkleProof, MerkleTree, verify_opening
from repro.crypto.pairing import BilinearGroup, GroupElement


class MerkleScheme:
    """Merkle-tree vector commitment (the paper's default)."""

    name = "merkle"

    def commit(self, leaves: Sequence[bytes]) -> tuple[bytes, list[MerkleProof]]:
        tree = MerkleTree(leaves)
        return tree.root, [tree.prove(i) for i in range(len(leaves))]

    def commitment_only(self, leaves: Sequence[bytes]) -> bytes:
        return MerkleTree(leaves).root

    def verify(
        self,
        commitment: Any,
        leaf: bytes,
        index: int,
        proof: Any,
        leaf_count: int,
    ) -> bool:
        if not isinstance(commitment, bytes):
            return False
        if not isinstance(proof, MerkleProof) or proof.index != index:
            return False
        return verify_opening(commitment, leaf, proof, leaf_count)

    def is_commitment(self, value: Any) -> bool:
        return isinstance(value, bytes) and len(value) == 32


class KZGScheme:
    """KZG vector commitment: one-word commitments *and* one-word proofs.

    Leaves are hashed into the scalar field; the committed polynomial
    interpolates those hashes at points ``0..n-1``.
    """

    name = "kzg"

    def __init__(self, group: BilinearGroup, capacity: int, *seed_parts) -> None:
        self.group = group
        self.setup = KZGSetup.from_seed(group, capacity, "vc", *seed_parts)

    def _leaf_values(self, leaves: Sequence[bytes]) -> list[int]:
        return [
            hash_to_int("kzg-vc-leaf", self.group.order, leaf) for leaf in leaves
        ]

    def commit(self, leaves: Sequence[bytes]) -> tuple[GroupElement, list[KZGOpening]]:
        values = self._leaf_values(leaves)
        commitment = self.setup.commit(values)
        proofs = [self.setup.open_at(values, i) for i in range(len(values))]
        return commitment, proofs

    def commitment_only(self, leaves: Sequence[bytes]) -> GroupElement:
        return self.setup.commit(self._leaf_values(leaves))

    def verify(
        self,
        commitment: Any,
        leaf: bytes,
        index: int,
        proof: Any,
        leaf_count: int,
    ) -> bool:
        if not self.is_commitment(commitment):
            return False
        if not 0 <= index < leaf_count:
            return False
        value = hash_to_int("kzg-vc-leaf", self.group.order, leaf)
        return self.setup.verify(commitment, index, value, proof)

    def is_commitment(self, value: Any) -> bool:
        return self.group.is_element(value)


def make_scheme(kind: str, directory: Any) -> Any:
    """Build a vector-commitment scheme by name for a given system."""
    if kind == "merkle":
        return MerkleScheme()
    if kind == "kzg":
        return KZGScheme(
            directory.pair_group, directory.n + 1, directory.session, "ct-rbc"
        )
    raise ValueError(f"unknown vector commitment scheme {kind!r}")
