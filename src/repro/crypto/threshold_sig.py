"""Threshold signatures on top of an agreed DKG transcript.

The paper's third motivating application (Section 1): threshold
signatures "reduce the complexity of consensus algorithms" and implement
random beacons.  This is the BLS-shaped scheme over the simulated
pairing, using the same no-reconstruction trick as the threshold VRF:

* signature share of party ``i`` on ``m``: ``σ_i = e(H(m), Ŝ_i)^{1/esk_i}
  = e(H(m), g)^{F(i)}`` — from the *encrypted* PVSS share;
* share verification: pairing check against the public ``A_i``;
* combination: Lagrange in the exponent gives ``σ = e(H(m), g)^{F(0)}``;
* signature verification: ``σ == e(H(m), A₀)`` — against the group
  public key only.

Signatures are unique (deterministic in transcript + message), which is
exactly what consensus protocols want from a threshold signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto.keys import PartySecret, PublicDirectory
from repro.crypto.pairing import GroupElement
from repro.crypto.polynomial import lagrange_coefficients
from repro.crypto.pvss import PVSSTranscript


@dataclass(frozen=True)
class SignatureShare:
    party: int
    value: GroupElement  # GT element

    def word_size(self) -> int:
        return 1


@dataclass(frozen=True)
class ThresholdSignature:
    value: GroupElement  # GT element

    def word_size(self) -> int:
        return 1


def _message_point(directory: PublicDirectory, message: Any) -> GroupElement:
    return directory.pair_group.hash_to_group(
        "tsig-msg", directory.session, message
    )


def sign_share(
    directory: PublicDirectory,
    secret: PartySecret,
    transcript: PVSSTranscript,
    message: Any,
) -> SignatureShare:
    """Party's signature share on ``message``."""
    group = directory.pair_group
    point = _message_point(directory, message)
    cipher = transcript.cipher_shares[secret.index]
    paired = group.pair(point, cipher)
    inverse = group.scalar_field.inv(secret.enc_sk)
    return SignatureShare(party=secret.index, value=group.exp(paired, inverse))


def share_valid(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    message: Any,
    share: Any,
) -> bool:
    """Public check ``share == e(H(m), A_party)``."""
    if not isinstance(share, SignatureShare):
        return False
    if not 0 <= share.party < directory.n:
        return False
    group = directory.pair_group
    if not group.is_element(share.value, kind="GT"):
        return False
    point = _message_point(directory, message)
    return share.value == group.pair(point, transcript.share_commitment(share.party))


def combine(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    message: Any,
    shares: Sequence[SignatureShare],
) -> ThresholdSignature:
    """Combine ≥ f+1 distinct shares into the unique threshold signature."""
    distinct = {share.party: share for share in shares}
    if len(distinct) < directory.f + 1:
        raise ValueError(
            f"need at least f+1={directory.f + 1} signature shares, got {len(distinct)}"
        )
    group = directory.pair_group
    field = group.scalar_field
    chosen = sorted(distinct.values(), key=lambda share: share.party)[: directory.f + 1]
    xs = [directory.share_index(share.party) for share in chosen]
    lambdas = lagrange_coefficients(field, xs, at=0)
    value = group.prod(
        group.exp(share.value, lam) for share, lam in zip(chosen, lambdas)
    )
    return ThresholdSignature(value=value)


def verify(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    message: Any,
    signature: Any,
) -> bool:
    """Verify against the group public key: ``σ == e(H(m), A₀)``."""
    if not isinstance(signature, ThresholdSignature):
        return False
    group = directory.pair_group
    if not group.is_element(signature.value, kind="GT"):
        return False
    point = _message_point(directory, message)
    return signature.value == group.pair(point, transcript.public_key)
