"""Threshold signatures on top of an agreed DKG transcript.

The paper's third motivating application (Section 1): threshold
signatures "reduce the complexity of consensus algorithms" and implement
random beacons.  This is the BLS-shaped scheme over the simulated
pairing, using the same no-reconstruction trick as the threshold VRF:

* signature share of party ``i`` on ``m``: ``σ_i = e(H(m), Ŝ_i)^{1/esk_i}
  = e(H(m), g)^{F(i)}`` — from the *encrypted* PVSS share;
* share verification: pairing check against the public ``A_i``;
* combination: Lagrange in the exponent gives ``σ = e(H(m), g)^{F(0)}``;
* signature verification: ``σ == e(H(m), A₀)`` — against the group
  public key only.

Signatures are unique (deterministic in transcript + message), which is
exactly what consensus protocols want from a threshold signature.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto import pool
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import PartySecret, PublicDirectory
from repro.crypto.pairing import GroupElement
from repro.crypto.polynomial import lagrange_coefficients
from repro.crypto.pvss import PVSSTranscript


@dataclass(frozen=True)
class SignatureShare:
    party: int
    value: GroupElement  # GT element

    def word_size(self) -> int:
        return 1


@dataclass(frozen=True)
class ThresholdSignature:
    value: GroupElement  # GT element

    def word_size(self) -> int:
        return 1


def _message_point(directory: PublicDirectory, message: Any) -> GroupElement:
    return directory.pair_group.hash_to_group(
        "tsig-msg", directory.session, message
    )


def sign_share(
    directory: PublicDirectory,
    secret: PartySecret,
    transcript: PVSSTranscript,
    message: Any,
) -> SignatureShare:
    """Party's signature share on ``message``."""
    group = directory.pair_group
    point = _message_point(directory, message)
    cipher = transcript.cipher_shares[secret.index]
    paired = group.pair(point, cipher)
    inverse = group.scalar_field.inv(secret.enc_sk)
    return SignatureShare(party=secret.index, value=group.exp(paired, inverse))


def share_valid(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    message: Any,
    share: Any,
) -> bool:
    """Public check ``share == e(H(m), A_party)`` (memoized per share)."""
    if not isinstance(share, SignatureShare):
        return False
    if not 0 <= share.party < directory.n:
        return False
    group = directory.pair_group
    if not group.is_element(share.value, kind="GT"):
        return False

    def check() -> bool:
        point = _message_point(directory, message)
        return share.value == group.pair(
            point, transcript.share_commitment(share.party)
        )

    return directory.verify_cache.memoize(
        "tsig-share", (share, message, transcript), check
    )


def batch_share_valid(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    message: Any,
    shares: Sequence[Any],
) -> bool:
    """Check ``share_i == e(H(m), A_i)`` for all shares as one pairing.

    Random-linear-combination batching: with independent 128-bit weights
    ``r_i``, ``Π share_i^{r_i} == e(H(m), Π A_i^{r_i})`` accepts a batch
    containing an invalid share with probability ≤ 2^-128 (the standard
    generic-group / BLS batch argument).  Aggregators use it to validate
    a whole quorum of shares before ``combine`` at the cost of a single
    pairing instead of one per share; on ``False`` fall back to
    :func:`share_valid` per share to identify the culprit.
    """
    shares = list(shares)
    if not shares:
        return True
    group = directory.pair_group
    for share in shares:
        if not isinstance(share, SignatureShare):
            return False
        if not 0 <= share.party < directory.n:
            return False
        if not group.is_element(share.value, kind="GT"):
            return False

    def check() -> bool:
        point = _message_point(directory, message)
        seed = hash_bytes(
            "tsig-batch",
            directory.session,
            tuple((s.party, group.encode_element(s.value)) for s in shares),
        )
        rlc = random.Random(seed)
        weights = [rlc.randrange(1, 1 << 128) for _ in shares]
        combined = group.prod(
            group.exp(share.value, weight)
            for share, weight in zip(shares, weights)
        )
        expected = group.pair(
            point,
            group.prod(
                group.exp(transcript.share_commitment(share.party), weight)
                for share, weight in zip(shares, weights)
            ),
        )
        return combined == expected

    return directory.verify_cache.memoize(
        "tsig-batch", (tuple(shares), message, transcript), check
    )


def combine(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    message: Any,
    shares: Sequence[SignatureShare],
) -> ThresholdSignature:
    """Combine ≥ f+1 distinct shares into the unique threshold signature."""
    distinct = {share.party: share for share in shares}
    if len(distinct) < directory.f + 1:
        raise ValueError(
            f"need at least f+1={directory.f + 1} signature shares, got {len(distinct)}"
        )
    group = directory.pair_group
    field = group.scalar_field
    chosen = sorted(distinct.values(), key=lambda share: share.party)[: directory.f + 1]
    xs = [directory.share_index(share.party) for share in chosen]
    lambdas = lagrange_coefficients(field, xs, at=0)
    value = group.prod(
        group.exp(share.value, lam) for share, lam in zip(chosen, lambdas)
    )
    return ThresholdSignature(value=value)


def verify(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    message: Any,
    signature: Any,
) -> bool:
    """Verify against the group public key: ``σ == e(H(m), A₀)`` (memoized)."""
    if not isinstance(signature, ThresholdSignature):
        return False
    group = directory.pair_group
    if not group.is_element(signature.value, kind="GT"):
        return False

    def check() -> bool:
        point = _message_point(directory, message)
        return signature.value == group.pair(point, transcript.public_key)

    return directory.verify_cache.memoize(
        "tsig-verify", (signature, message, transcript), check
    )


# -- process-pool worker verifiers (see repro.crypto.pool) ---------------------------
#
# Byte-level equivalents of the memoized checks above, plus aggregate
# builders: a share/signature check is one GT equation ``lhs == e(a, b)``,
# so a worker can settle a whole batch with one RLC multi-pairing.


def _share_claim(directory, parts: tuple):
    share, message, transcript = parts
    group = directory.pair_group
    if not isinstance(share, SignatureShare):
        return None
    if not 0 <= share.party < directory.n:
        return None
    if not group.is_element(share.value, kind="GT"):
        return None
    if not isinstance(transcript, PVSSTranscript):
        return None
    point = _message_point(directory, message)
    return share.value, ((point, transcript.share_commitment(share.party)),)


def _pool_share_valid(directory, parts: tuple) -> bool:
    claim = _share_claim(directory, parts)
    if claim is None:
        return False
    lhs, ((point, commitment),) = claim
    return lhs == directory.pair_group.pair(point, commitment)


def _pool_batch_share_valid(directory, parts: tuple) -> bool:
    shares, message, transcript = parts
    if not isinstance(shares, tuple) or not isinstance(transcript, PVSSTranscript):
        return False
    group = directory.pair_group
    items = list(shares)
    if not items:
        return True
    for share in items:
        if not isinstance(share, SignatureShare):
            return False
        if not 0 <= share.party < directory.n:
            return False
        if not group.is_element(share.value, kind="GT"):
            return False
    point = _message_point(directory, message)
    seed = hash_bytes(
        "tsig-batch",
        directory.session,
        tuple((s.party, group.encode_element(s.value)) for s in items),
    )
    rlc = random.Random(seed)
    weights = [rlc.randrange(1, 1 << 128) for _ in items]
    combined = group.prod(
        group.exp(share.value, weight) for share, weight in zip(items, weights)
    )
    expected = group.pair(
        point,
        group.prod(
            group.exp(transcript.share_commitment(share.party), weight)
            for share, weight in zip(items, weights)
        ),
    )
    return combined == expected


def _signature_claim(directory, parts: tuple):
    signature, message, transcript = parts
    group = directory.pair_group
    if not isinstance(signature, ThresholdSignature):
        return None
    if not group.is_element(signature.value, kind="GT"):
        return None
    if not isinstance(transcript, PVSSTranscript):
        return None
    point = _message_point(directory, message)
    return signature.value, ((point, transcript.public_key),)


def _pool_verify(directory, parts: tuple) -> bool:
    claim = _signature_claim(directory, parts)
    if claim is None:
        return False
    lhs, ((point, public_key),) = claim
    return lhs == directory.pair_group.pair(point, public_key)


pool.register_worker("tsig-share", _pool_share_valid, aggregate=_share_claim)
pool.register_worker("tsig-batch", _pool_batch_share_valid)
pool.register_worker("tsig-verify", _pool_verify, aggregate=_signature_claim)
