"""Non-interactive zero-knowledge proofs (Fiat-Shamir).

Two proofs are provided, both generic over any object implementing the
group API (``generator``, ``order``, ``exp``, ``mul``, ``inv``):

* :func:`prove_dlog` / :func:`verify_dlog` — Schnorr proof of knowledge of
  a discrete log (used as the PVSS contribution's proof of knowledge of
  the dealt secret).
* :func:`prove_dleq` / :func:`verify_dleq` — Chaum-Pedersen proof that two
  pairs share the same discrete log (used by the scalar PVSS baseline and
  the common-coin baseline).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import hash_to_int


@dataclass(frozen=True)
class DlogProof:
    """Proof of knowledge of ``x`` with ``h = base^x``."""

    challenge: int
    response: int

    def word_size(self) -> int:
        return 1


@dataclass(frozen=True)
class DleqProof:
    """Proof that ``log_base1(h1) == log_base2(h2)``."""

    challenge: int
    response: int

    def word_size(self) -> int:
        return 1


def prove_dlog(group: Any, base: Any, h: Any, x: int, rng: random.Random, *context: Any) -> DlogProof:
    q = group.order
    w = rng.randrange(1, q)
    commitment = group.exp(base, w)
    challenge = hash_to_int("nizk-dlog", q, _enc(group, base), _enc(group, h), _enc(group, commitment), *context)
    response = (w + challenge * x) % q
    return DlogProof(challenge=challenge, response=response)


def verify_dlog(group: Any, base: Any, h: Any, proof: DlogProof, *context: Any) -> bool:
    if not isinstance(proof, DlogProof):
        return False
    q = group.order
    if not (0 <= proof.challenge < q and 0 <= proof.response < q):
        return False
    commitment = group.mul(
        group.exp(base, proof.response),
        group.inv(group.exp(h, proof.challenge)),
    )
    expected = hash_to_int("nizk-dlog", q, _enc(group, base), _enc(group, h), _enc(group, commitment), *context)
    return expected == proof.challenge


def prove_dleq(
    group: Any,
    base1: Any,
    h1: Any,
    base2: Any,
    h2: Any,
    x: int,
    rng: random.Random,
    *context: Any,
) -> DleqProof:
    q = group.order
    w = rng.randrange(1, q)
    commit1 = group.exp(base1, w)
    commit2 = group.exp(base2, w)
    challenge = hash_to_int(
        "nizk-dleq",
        q,
        _enc(group, base1),
        _enc(group, h1),
        _enc(group, base2),
        _enc(group, h2),
        _enc(group, commit1),
        _enc(group, commit2),
        *context,
    )
    response = (w + challenge * x) % q
    return DleqProof(challenge=challenge, response=response)


def verify_dleq(
    group: Any,
    base1: Any,
    h1: Any,
    base2: Any,
    h2: Any,
    proof: DleqProof,
    *context: Any,
) -> bool:
    if not isinstance(proof, DleqProof):
        return False
    q = group.order
    if not (0 <= proof.challenge < q and 0 <= proof.response < q):
        return False
    commit1 = group.mul(
        group.exp(base1, proof.response),
        group.inv(group.exp(h1, proof.challenge)),
    )
    commit2 = group.mul(
        group.exp(base2, proof.response),
        group.inv(group.exp(h2, proof.challenge)),
    )
    expected = hash_to_int(
        "nizk-dleq",
        q,
        _enc(group, base1),
        _enc(group, h1),
        _enc(group, base2),
        _enc(group, h2),
        _enc(group, commit1),
        _enc(group, commit2),
        *context,
    )
    return expected == proof.challenge


def _enc(group: Any, element: Any) -> bytes:
    return group.encode_element(element)
