"""Threshold verifiable random function (Section 2.6.2, Definitions 1-2).

Implements the paper's eight algorithms on top of the aggregatable PVSS:

=================  ==========================================================
``DKGSh``          deal one PVSS contribution (a "DKG share")
``DKGShVerify``    publicly verify a contribution
``DKGAggregate``   fold ≥ 2f+1 contributions into a DKG transcript
``DKGVerify``      verify a transcript carries ≥ 2f+1 valid contributions
``EvalSh``         party ``i``'s VRF evaluation share on a message
``EvalShVerify``   verify an evaluation share against the transcript
``Eval``           combine ``f+1`` shares into the unique evaluation
``EvalVerify``     verify a combined evaluation against the transcript
=================  ==========================================================

Following Gurkan et al.'s VUF, evaluation shares live in the pairing's
target group: party ``i`` computes ``y_i = e(H(m), Ŝ_i)^{1/esk_i} =
e(H(m), g)^{F(i)}`` from its *encrypted* share — no scalar share is ever
decrypted, matching the paper's remark that the DKG needs no
reconstruction algorithm.  Verification of a share is the pairing check
``y_i == e(H(m), A_i)``, so shares need no attached NIZK; the "proof"
component of the paper's interface is the empty tuple.  ``Eval`` combines
shares by Lagrange interpolation in the exponent; ``EvalVerify`` checks
``y == e(H(m), A_0)``.  Uniqueness (Definition 2) holds by construction:
the evaluation is a deterministic function of the transcript and message.

``vrf_output`` hashes the evaluation into a ``2^128``-bounded integer —
the binary string ``{0,1}^λ`` the Proposal Election ranks proposals by
(λ = 128 ≫ 3·log n, satisfying the collision bound of Theorem 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto import pool, pvss
from repro.crypto.hashing import hash_to_int
from repro.crypto.keys import PartySecret, PublicDirectory
from repro.crypto.pairing import GroupElement
from repro.crypto.polynomial import lagrange_coefficients

VRF_OUTPUT_BITS = 128

EMPTY_PROOF: tuple = ()


@dataclass(frozen=True)
class EvalShare:
    """Party ``party``'s share of ``φ(vrf_dkg, message)`` (plus empty proof)."""

    party: int
    value: GroupElement

    def word_size(self) -> int:
        return 1


def DKGSh(
    directory: PublicDirectory, dealer: PartySecret, rng: random.Random
) -> pvss.PVSSContribution:
    """Deal a fresh DKG share (Definition 1's ``DKGSh(sk_i)``)."""
    return pvss.deal(directory, dealer, rng)


def DKGShVerify(
    directory: PublicDirectory, contribution: pvss.PVSSContribution
) -> bool:
    """Verify a DKG share; the dealer's keys are read from the directory."""
    return pvss.verify_contribution(directory, contribution)


def DKGAggregate(
    directory: PublicDirectory, contributions: Sequence[pvss.PVSSContribution]
) -> pvss.PVSSTranscript:
    """Aggregate DKG shares from distinct dealers into a transcript."""
    return pvss.aggregate(directory, contributions)


def DKGVerify(directory: PublicDirectory, transcript: Any) -> bool:
    """Check the transcript carries valid shares from ≥ 2f+1 distinct dealers."""
    return pvss.verify_transcript(directory, transcript, 2 * directory.f + 1)


def _message_point(directory: PublicDirectory, message: Any) -> GroupElement:
    return directory.pair_group.hash_to_group("tvrf-msg", directory.session, message)


def EvalSh(
    directory: PublicDirectory,
    secret: PartySecret,
    transcript: Any,
    message: Any,
) -> EvalShare:
    """Party's evaluation share ``e(H(m), g)^{F(i)}`` from its encrypted share.

    Dispatches on the transcript kind: a fresh-ADKG
    :class:`~repro.crypto.pvss.PVSSTranscript` carries full encrypted
    shares ``Ŝ_i``; a reshared transcript
    (:class:`~repro.crypto.reshare.ReshareTranscript`) carries encrypted
    *deltas* ``Δ_i = epk_i^{F'(i+1) - F'(0)}`` plus the public key, so
    the share is ``e(H(m), Δ_i)^{1/esk_i} · e(H(m), A'_0)``.  Either way
    the result is ``e(H(m), g)^{F(i+1)}`` and verifies via the same
    :func:`EvalShVerify` pairing check against ``share_commitment``.
    """
    group = directory.pair_group
    point = _message_point(directory, message)
    inverse = group.scalar_field.inv(secret.enc_sk)
    deltas = getattr(transcript, "cipher_deltas", None)
    if deltas is not None:
        paired = group.pair(point, deltas[secret.index])
        value = group.mul(
            group.exp(paired, inverse),
            group.pair(point, transcript.public_key),
        )
        return EvalShare(party=secret.index, value=value)
    cipher = transcript.cipher_shares[secret.index]
    paired = group.pair(point, cipher)
    return EvalShare(party=secret.index, value=group.exp(paired, inverse))


def EvalShVerify(
    directory: PublicDirectory,
    transcript: pvss.PVSSTranscript,
    party: int,
    message: Any,
    share: Any,
) -> bool:
    """Pairing check ``share == e(H(m), A_party)`` (memoized per share)."""
    if not isinstance(share, EvalShare) or share.party != party:
        return False
    if not 0 <= party < directory.n:
        return False
    group = directory.pair_group
    if not group.is_element(share.value, kind="GT"):
        return False

    def check() -> bool:
        point = _message_point(directory, message)
        expected = group.pair(point, transcript.share_commitment(party))
        return share.value == expected

    return directory.verify_cache.memoize(
        "tvrf-evalsh", (share, message, transcript), check
    )


def Eval(
    directory: PublicDirectory,
    transcript: pvss.PVSSTranscript,
    message: Any,
    shares: Sequence[EvalShare],
) -> tuple[GroupElement, tuple]:
    """Combine ≥ f+1 verified shares into the unique evaluation.

    Returns ``(evaluation, proof)`` where the proof is empty — the
    evaluation is pairing-verifiable against the transcript directly.
    """
    distinct = {share.party: share for share in shares}
    if len(distinct) < directory.f + 1:
        raise ValueError(
            f"need at least f+1={directory.f + 1} shares, got {len(distinct)}"
        )
    group = directory.pair_group
    field = group.scalar_field
    chosen = sorted(distinct.values(), key=lambda share: share.party)[: directory.f + 1]
    xs = [directory.share_index(share.party) for share in chosen]
    lambdas = lagrange_coefficients(field, xs, at=0)
    evaluation = group.prod(
        group.exp(share.value, lam) for share, lam in zip(chosen, lambdas)
    )
    return evaluation, EMPTY_PROOF


def EvalVerify(
    directory: PublicDirectory,
    transcript: pvss.PVSSTranscript,
    message: Any,
    evaluation: Any,
    proof: tuple = EMPTY_PROOF,
) -> bool:
    """Pairing check ``evaluation == e(H(m), A_0)``."""
    del proof  # pairing-verifiable; kept for interface fidelity
    group = directory.pair_group
    if not group.is_element(evaluation, kind="GT"):
        return False
    point = _message_point(directory, message)
    return evaluation == group.pair(point, transcript.public_key)


def vrf_output(directory: PublicDirectory, evaluation: GroupElement) -> int:
    """Extract the λ-bit VRF output ``φ`` from an evaluation."""
    encoded = directory.pair_group.encode_element(evaluation)
    return hash_to_int("tvrf-out", 1 << VRF_OUTPUT_BITS, encoded)


# -- process-pool worker verifier (see repro.crypto.pool) ----------------------------
#
# Byte-level equivalent of EvalShVerify's memoized check.  The ``party``
# argument is recovered from ``share.party``: every EvalShVerify call
# that reaches the cache has already enforced ``share.party == party``,
# so the two formulations verify the same equation.


def _evalsh_claim(directory: PublicDirectory, parts: tuple):
    share, message, transcript = parts
    group = directory.pair_group
    if not isinstance(share, EvalShare):
        return None
    if not 0 <= share.party < directory.n:
        return None
    if not group.is_element(share.value, kind="GT"):
        return None
    if not isinstance(transcript, pvss.PVSSTranscript):
        return None
    point = _message_point(directory, message)
    return share.value, ((point, transcript.share_commitment(share.party)),)


def _pool_evalsh_verify(directory: PublicDirectory, parts: tuple) -> bool:
    claim = _evalsh_claim(directory, parts)
    if claim is None:
        return False
    lhs, ((point, commitment),) = claim
    return lhs == directory.pair_group.pair(point, commitment)


pool.register_worker("tvrf-evalsh", _pool_evalsh_verify, aggregate=_evalsh_claim)
