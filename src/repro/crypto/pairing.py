"""Generic-group simulation of a symmetric bilinear pairing.

The aggregatable PVSS of Gurkan et al. [23] — the crypto workhorse of the
paper's Proposal Election — requires a pairing ``e: G × G → GT``.  Real
pairing curves (BLS12-381) are unavailable offline, so this module
implements the standard *generic group* prototyping trick: an element of
``G`` (or ``GT``) is represented by its discrete logarithm with respect to
a fixed generator, which makes the pairing computable::

    e(g^a, g^b) = gT^(a*b)

The public API exposes only group-law operations (``exp``, ``mul``,
``inv``, ``pair``, ``hash_to_group``); honest protocol code never touches
the internal ``log`` field.  Every algebraic identity of the real scheme
holds exactly, element sizes are one word each (as in the paper's
Section 7 accounting), and malformed values are rejected the same way —
only computational hardness is modeled rather than enforced.  DESIGN.md
section 2 records this substitution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.field import PrimeField
from repro.crypto.hashing import hash_bytes, hash_to_int

KIND_G = "G"
KIND_GT = "GT"


@dataclass(frozen=True)
class GroupElement:
    """An element of the simulated source group ``G`` or target group ``GT``.

    ``log`` is an artifact of the generic-group simulation (the discrete
    log w.r.t. the fixed generator); protocol code must treat elements as
    opaque and use :class:`BilinearGroup` operations only.
    """

    kind: str
    log: int

    def word_size(self) -> int:
        return 1


class BilinearGroup:
    """A symmetric bilinear group of prime order ``q`` (simulated)."""

    __slots__ = ("q", "scalar_field", "g", "gt", "name", "pair_calls")

    def __init__(self, order: int, name: str = "bls-sim") -> None:
        if order < 3:
            raise ValueError("group order must be an odd prime > 2")
        self.q = order
        self.scalar_field = PrimeField(order)
        self.g = GroupElement(KIND_G, 1)
        self.gt = GroupElement(KIND_GT, 1)
        self.name = name
        #: Pairing-operation counter: each :meth:`pair` costs 1, each
        #: :meth:`multi_pair` costs 1 regardless of width (the model of a
        #: shared-Miller-loop product of pairings on a real curve).
        self.pair_calls = 0

    def __repr__(self) -> str:
        return f"BilinearGroup(order={self.q:#x})"

    @property
    def generator(self) -> GroupElement:
        return self.g

    @property
    def order(self) -> int:
        return self.q

    def identity(self, kind: str = KIND_G) -> GroupElement:
        return GroupElement(kind, 0)

    # -- group law ---------------------------------------------------------------

    def exp(self, base: GroupElement, exponent: int) -> GroupElement:
        self._check(base)
        return GroupElement(base.kind, base.log * exponent % self.q)

    def mul(self, a: GroupElement, b: GroupElement) -> GroupElement:
        self._check(a)
        self._check(b)
        if a.kind != b.kind:
            raise ValueError("cannot multiply elements of different groups")
        return GroupElement(a.kind, (a.log + b.log) % self.q)

    def inv(self, a: GroupElement) -> GroupElement:
        self._check(a)
        return GroupElement(a.kind, -a.log % self.q)

    def pair(self, a: GroupElement, b: GroupElement) -> GroupElement:
        """The bilinear map ``e(g^x, g^y) = gT^(x*y)``."""
        self._check(a)
        self._check(b)
        if a.kind != KIND_G or b.kind != KIND_G:
            raise ValueError("pairing arguments must be source-group elements")
        self.pair_calls += 1
        return GroupElement(KIND_GT, a.log * b.log % self.q)

    def multi_pair(self, pairs: Any) -> GroupElement:
        """``Π e(a_i, b_i)`` as one pairing operation.

        On a real curve this is the standard multi-pairing: one shared
        Miller loop plus one final exponentiation, so batched verifiers
        (PVSS dealing checks, threshold-signature aggregation) pay a
        single pairing's latency for the whole product.  The empty
        product is the ``GT`` identity.
        """
        acc = 0
        for a, b in pairs:
            self._check(a)
            self._check(b)
            if a.kind != KIND_G or b.kind != KIND_G:
                raise ValueError("pairing arguments must be source-group elements")
            acc = (acc + a.log * b.log) % self.q
        self.pair_calls += 1
        return GroupElement(KIND_GT, acc)

    def multi(self, pairs: Any) -> GroupElement:
        """Alias for :meth:`multi_pair` — the batched-verifier entry point
        the process-pool aggregation path (:mod:`repro.crypto.pool`) uses."""
        return self.multi_pair(pairs)

    def prod(self, elements: Any) -> GroupElement:
        """Product of a non-empty iterable of same-kind elements."""
        result = None
        for element in elements:
            result = element if result is None else self.mul(result, element)
        if result is None:
            raise ValueError("empty product")
        return result

    # -- sampling and hashing ------------------------------------------------------

    def rand_scalar(self, rng: random.Random) -> int:
        return rng.randrange(self.q)

    def hash_to_group(self, domain: str, *parts: Any) -> GroupElement:
        """Hash to a non-identity element of ``G``.

        In the generic-group model the element is *defined* by its hash
        exponent; the real scheme would use a constant-time hash-to-curve.
        """
        counter = 0
        while True:
            log = hash_to_int(domain, self.q, counter, *parts)
            if log != 0:
                return GroupElement(KIND_G, log)
            counter += 1

    def is_element(self, value: Any, kind: str = KIND_G) -> bool:
        return (
            isinstance(value, GroupElement)
            and value.kind == kind
            and isinstance(value.log, int)
            and 0 <= value.log < self.q
        )

    def encode_element(self, value: GroupElement) -> bytes:
        self._check(value)
        return hash_bytes("pair-elem", self.name, value.kind, value.log)

    # -- internal -------------------------------------------------------------------

    def _check(self, value: GroupElement) -> None:
        if not isinstance(value, GroupElement):
            raise TypeError(f"expected GroupElement, got {type(value)!r}")
        if not 0 <= value.log < self.q:
            raise ValueError("element outside the group")
