"""Threshold (hybrid) encryption on top of an agreed DKG transcript.

One of the paper's two motivating applications (Section 1): "Threshold
encryption can be used to restrict employees' access to databases or to
decrypt election results."  This module shows the agreed A-DKG transcript
is directly usable for it, with the same no-reconstruction trick as the
threshold VRF:

* **Encrypt** (anyone): ElGamal-in-the-target-group.  Pick ``r``, send
  ``C₁ = g^r`` and XOR the plaintext with a keystream derived from
  ``e(g, A₀)^r = e(g, g)^{r·F(0)}``.
* **Decryption share** (party ``i``): ``e(C₁, Ŝ_i)^{1/esk_i} =
  e(C₁, g)^{F(i)}`` — computed from the party's *encrypted* PVSS share,
  verified publicly against ``A_i`` by a pairing check.
* **Combine** (any ``f+1`` shares): Lagrange in the exponent recovers the
  mask ``e(C₁, g)^{F(0)}`` and hence the keystream.

``f`` shares reveal nothing about the mask (the exponent polynomial has
degree ``f``); tests exercise that operationally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.hashing import expand
from repro.crypto.keys import PartySecret, PublicDirectory
from repro.crypto.pairing import GroupElement
from repro.crypto.polynomial import lagrange_coefficients
from repro.crypto.pvss import PVSSTranscript

import random


@dataclass(frozen=True)
class Ciphertext:
    """Hybrid ciphertext under the committee's threshold key."""

    c1: GroupElement
    body: bytes

    def word_size(self) -> int:
        return 1 + max(1, (len(self.body) + 31) // 32)


@dataclass(frozen=True)
class DecryptionShare:
    party: int
    value: GroupElement  # e(C1, g)^{F(party+1)} in GT

    def word_size(self) -> int:
        return 1


def _keystream(directory: PublicDirectory, mask: GroupElement, length: int) -> bytes:
    return expand(
        "thresh-enc-keystream",
        length,
        directory.pair_group.encode_element(mask),
    )


def encrypt(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    plaintext: bytes,
    rng: random.Random,
) -> Ciphertext:
    """Encrypt to the committee whose key is ``transcript.public_key``."""
    group = directory.pair_group
    r = group.rand_scalar(rng) or 1
    c1 = group.exp(group.g, r)
    mask = group.exp(group.pair(group.g, transcript.public_key), r)
    stream = _keystream(directory, mask, len(plaintext))
    body = bytes(p ^ s for p, s in zip(plaintext, stream))
    return Ciphertext(c1=c1, body=body)


def decryption_share(
    directory: PublicDirectory,
    secret: PartySecret,
    transcript: PVSSTranscript,
    ciphertext: Ciphertext,
) -> DecryptionShare:
    """Party's share of the mask, from its *encrypted* PVSS share."""
    group = directory.pair_group
    cipher_share = transcript.cipher_shares[secret.index]
    paired = group.pair(ciphertext.c1, cipher_share)
    inverse = group.scalar_field.inv(secret.enc_sk)
    return DecryptionShare(party=secret.index, value=group.exp(paired, inverse))


def share_valid(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    ciphertext: Ciphertext,
    share: DecryptionShare,
) -> bool:
    """Public pairing check: ``share == e(C₁, A_party)``."""
    if not isinstance(share, DecryptionShare):
        return False
    if not 0 <= share.party < directory.n:
        return False
    group = directory.pair_group
    if not group.is_element(share.value, kind="GT"):
        return False
    expected = group.pair(ciphertext.c1, transcript.share_commitment(share.party))
    return share.value == expected


def combine(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    ciphertext: Ciphertext,
    shares: Sequence[DecryptionShare],
) -> bytes:
    """Recover the plaintext from ≥ f+1 distinct verified shares."""
    distinct = {share.party: share for share in shares}
    if len(distinct) < directory.f + 1:
        raise ValueError(
            f"need at least f+1={directory.f + 1} decryption shares, got {len(distinct)}"
        )
    group = directory.pair_group
    field = group.scalar_field
    chosen = sorted(distinct.values(), key=lambda share: share.party)[: directory.f + 1]
    xs = [directory.share_index(share.party) for share in chosen]
    lambdas = lagrange_coefficients(field, xs, at=0)
    mask = group.prod(
        group.exp(share.value, lam) for share, lam in zip(chosen, lambdas)
    )
    stream = _keystream(directory, mask, len(ciphertext.body))
    return bytes(c ^ s for c, s in zip(ciphertext.body, stream))
