"""A real Schnorr group: the order-``q`` subgroup of ``Z_p^*`` for ``p = 2q+1``.

This group backs the *real* cryptography in the reproduction — Schnorr
signatures and DLEQ proofs.  Elements are plain ints (quadratic residues
mod ``p``); all operations go through the :class:`SchnorrGroup` object.

The pairing-based PVSS lives in :mod:`repro.crypto.pairing` instead.
"""

from __future__ import annotations

import random
from typing import Any

from repro.crypto.field import PrimeField
from repro.crypto.hashing import hash_bytes, hash_to_int
from repro.crypto.params import GroupParams


class SchnorrGroup:
    """Multiplicative group of order ``q`` inside ``Z_p^*``."""

    __slots__ = ("params", "p", "q", "g", "scalar_field")

    def __init__(self, params: GroupParams) -> None:
        self.params = params
        self.p = params.p
        self.q = params.q
        self.g = params.g
        self.scalar_field = PrimeField(params.q)

    def __repr__(self) -> str:
        return f"SchnorrGroup({self.params.name})"

    @property
    def generator(self) -> int:
        return self.g

    @property
    def identity(self) -> int:
        return 1

    @property
    def order(self) -> int:
        return self.q

    # -- operations ------------------------------------------------------------

    def exp(self, base: int, exponent: int) -> int:
        return pow(base, exponent % self.q, self.p)

    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def inv(self, a: int) -> int:
        return pow(a, self.p - 2, self.p)

    def is_element(self, value: Any) -> bool:
        """Membership test: a quadratic residue mod p (and not 0)."""
        if not isinstance(value, int) or not 1 <= value < self.p:
            return False
        return pow(value, self.q, self.p) == 1

    # -- sampling and hashing ----------------------------------------------------

    def rand_scalar(self, rng: random.Random) -> int:
        return rng.randrange(self.q)

    def hash_to_group(self, domain: str, *parts: Any) -> int:
        """Hash into the group by squaring a hash-derived element of Z_p^*.

        Squares of non-zero elements are exactly the order-``q`` subgroup
        when ``p`` is a safe prime, so this is a real (if dlog-relation
        free only heuristically) hash-to-group.
        """
        counter = 0
        while True:
            candidate = hash_to_int(domain, self.p, counter, *parts)
            if candidate > 1:
                return candidate * candidate % self.p
            counter += 1

    def encode_element(self, value: int) -> bytes:
        return hash_bytes("group-elem", self.params.name, value)
