"""Shamir secret sharing over a prime field.

The PVSS layer shares *in the exponent*; this scalar version backs unit
tests, the examples and the baseline protocols.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.field import PrimeField
from repro.crypto.polynomial import interpolate_at, random_polynomial


@dataclass(frozen=True)
class ShamirShare:
    """One share: the evaluation of the dealer polynomial at ``x``."""

    x: int
    y: int


def share_secret(
    field: PrimeField,
    secret: int,
    threshold: int,
    n: int,
    rng: random.Random,
) -> tuple[ShamirShare, ...]:
    """Split ``secret`` into ``n`` shares, any ``threshold + 1`` of which recover it.

    ``threshold`` is the polynomial degree (the maximum number of shares
    that reveal nothing), matching the paper's ``f``.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if n <= threshold:
        raise ValueError("need more shares than the threshold")
    if n >= field.q:
        raise ValueError("field too small for this many shares")
    poly = random_polynomial(field, threshold, rng, secret=secret)
    return tuple(ShamirShare(x=i, y=poly.evaluate(i)) for i in range(1, n + 1))


def reconstruct_secret(field: PrimeField, shares: Sequence[ShamirShare]) -> int:
    """Recover ``f(0)`` from shares (must be at least ``threshold + 1`` of them)."""
    if not shares:
        raise ValueError("no shares given")
    return interpolate_at(field, [(share.x, share.y) for share in shares], at=0)
