"""Aggregatable publicly verifiable secret sharing (Gurkan et al. [23] structure).

A *contribution* (the paper's ``dkgshare``) shares a fresh random secret
``s = f(0)`` among the ``n`` parties with threshold ``f_threshold``:

* Feldman-in-the-exponent commitments ``A_x = g^{f(x)}`` for ``x = 0..n``;
* encrypted shares ``Ŝ_j = epk_j^{f(j)}`` for each party ``j`` (``epk_j``
  is ``j``'s PVSS encryption key);
* a Schnorr proof of knowledge of ``f(0)`` and the dealer's signature,
  which together form the O(1)-word *contributor tag* that survives
  aggregation.

A *transcript* (the paper's ``dkg``) is the component-wise product of any
set of contributions from distinct dealers; it stays ``O(n)`` words no
matter how many contributions were folded in, which is exactly the
property the paper's first barrier (Section 1.2) needs.

Verification (both of single contributions and of aggregates):

1. SCRAPE low-degree test — the committed evaluations lie on a polynomial
   of degree ≤ ``f_threshold`` (Fiat-Shamir-derandomized dual-code check);
2. pairing consistency — ``e(g, Ŝ_j) = e(epk_j, A_j)`` for every ``j``;
3. contributor tags — each dealer's PoK verifies against its secret
   commitment, the dealer signed it, dealers are distinct, and the product
   of the per-dealer secret commitments equals the aggregate ``A_0``.

The pairing itself is the generic-group simulation of
:mod:`repro.crypto.pairing`; see DESIGN.md section 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto import nizk, pool, schnorr
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import PartySecret, PublicDirectory
from repro.crypto.pairing import GroupElement
from repro.crypto.polynomial import random_polynomial, scrape_coefficients


@dataclass(frozen=True)
class ContributorTag:
    """O(1)-word record of one dealer's contribution inside an aggregate."""

    dealer: int
    secret_commitment: GroupElement
    pok: nizk.DlogProof
    signature: schnorr.Signature

    def word_size(self) -> int:
        return 3


@dataclass(frozen=True)
class PVSSContribution:
    """A single dealer's sharing — the paper's ``dkgshare``."""

    dealer: int
    commitments: tuple[GroupElement, ...]
    cipher_shares: tuple[GroupElement, ...]
    tag: ContributorTag

    def word_size(self) -> int:
        return len(self.commitments) + len(self.cipher_shares) + self.tag.word_size()


@dataclass(frozen=True)
class PVSSTranscript:
    """An aggregated sharing — the paper's ``dkg``."""

    commitments: tuple[GroupElement, ...]
    cipher_shares: tuple[GroupElement, ...]
    tags: tuple[ContributorTag, ...]

    def word_size(self) -> int:
        return (
            len(self.commitments)
            + len(self.cipher_shares)
            + sum(tag.word_size() for tag in self.tags)
        )

    @property
    def contributors(self) -> frozenset[int]:
        return frozenset(tag.dealer for tag in self.tags)

    @property
    def public_key(self) -> GroupElement:
        """The threshold public key ``g^{F(0)}``."""
        return self.commitments[0]

    def share_commitment(self, party: int) -> GroupElement:
        """``g^{F(party+1)}`` — the public commitment to ``party``'s share."""
        return self.commitments[party + 1]


def deal(
    directory: PublicDirectory, dealer: PartySecret, rng: random.Random
) -> PVSSContribution:
    """Deal a fresh random secret to all ``n`` parties (threshold ``f``)."""
    group = directory.pair_group
    field = group.scalar_field
    poly = random_polynomial(field, directory.f, rng)
    xs = range(directory.n + 1)
    evaluations = poly.evaluate_many(list(xs))
    commitments = tuple(group.exp(group.g, y) for y in evaluations)
    cipher_shares = tuple(
        group.exp(directory.enc_pks[j], evaluations[j + 1]) for j in range(directory.n)
    )
    pok = nizk.prove_dlog(
        group,
        group.g,
        commitments[0],
        poly.coeffs[0],
        rng,
        directory.session,
        dealer.index,
    )
    signature = schnorr.sign(
        directory.sign_group,
        dealer.sign,
        "pvss-contrib",
        directory.session,
        dealer.index,
        group.encode_element(commitments[0]),
    )
    tag = ContributorTag(
        dealer=dealer.index,
        secret_commitment=commitments[0],
        pok=pok,
        signature=signature,
    )
    return PVSSContribution(
        dealer=dealer.index,
        commitments=commitments,
        cipher_shares=cipher_shares,
        tag=tag,
    )


def verify_contribution(
    directory: PublicDirectory, contribution: PVSSContribution
) -> bool:
    """Publicly verify a single dealer's contribution.

    Memoized per distinct contribution (content-addressed): the same
    dealing arriving via several broadcast echo paths is verified once.
    """
    if not isinstance(contribution, PVSSContribution):
        return False
    # Identity-first: the same frozen contribution object fans out to n-1
    # recipients in-process, so repeats skip even the content hashing.
    return directory.verify_cache.identity_memoize(
        "pvss-contrib",
        contribution,
        (),
        (contribution,),
        lambda: _verify_contribution(directory, contribution),
    )


def _verify_contribution(
    directory: PublicDirectory, contribution: PVSSContribution
) -> bool:
    if not 0 <= contribution.dealer < directory.n:
        return False
    tag = contribution.tag
    if tag.dealer != contribution.dealer:
        return False
    if tag.secret_commitment != contribution.commitments[0]:
        return False
    return _verify_sharing(
        directory,
        contribution.commitments,
        contribution.cipher_shares,
        (tag,),
    )


def aggregate(
    directory: PublicDirectory, contributions: Sequence[PVSSContribution]
) -> PVSSTranscript:
    """Fold contributions from distinct dealers into one transcript."""
    if not contributions:
        raise ValueError("cannot aggregate zero contributions")
    dealers = [contribution.dealer for contribution in contributions]
    if len(set(dealers)) != len(dealers):
        raise ValueError("duplicate dealer in aggregation")
    group = directory.pair_group
    width = directory.n + 1
    for contribution in contributions:
        if len(contribution.commitments) != width:
            raise ValueError("malformed contribution (commitment width)")
        if len(contribution.cipher_shares) != directory.n:
            raise ValueError("malformed contribution (cipher width)")
    commitments = tuple(
        group.prod(c.commitments[x] for c in contributions) for x in range(width)
    )
    cipher_shares = tuple(
        group.prod(c.cipher_shares[j] for c in contributions)
        for j in range(directory.n)
    )
    tags = tuple(
        sorted((c.tag for c in contributions), key=lambda tag: tag.dealer)
    )
    return PVSSTranscript(
        commitments=commitments, cipher_shares=cipher_shares, tags=tags
    )


def verify_transcript(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    min_contributors: int,
) -> bool:
    """Publicly verify an aggregated transcript.

    ``min_contributors`` is ``2f + 1`` for the paper's ``DKGVerify``
    (Definition 1) so at least ``f + 1`` honest dealers contributed.

    Memoized per distinct ``(transcript, min_contributors)``: NWH and
    Gather call ``DKGVerify`` on the same aggregate once per echo path /
    suggestion, and only the first call does the algebra.
    """
    if not isinstance(transcript, PVSSTranscript):
        return False
    return directory.verify_cache.identity_memoize(
        "pvss-transcript",
        transcript,
        (min_contributors,),
        (transcript, min_contributors),
        lambda: _verify_transcript(directory, transcript, min_contributors),
    )


def _verify_transcript(
    directory: PublicDirectory,
    transcript: PVSSTranscript,
    min_contributors: int,
) -> bool:
    dealers = [tag.dealer for tag in transcript.tags]
    if len(set(dealers)) != len(dealers):
        return False
    if len(dealers) < min_contributors:
        return False
    if any(not 0 <= dealer < directory.n for dealer in dealers):
        return False
    group = directory.pair_group
    combined_secret = group.prod(tag.secret_commitment for tag in transcript.tags)
    if combined_secret != transcript.commitments[0]:
        return False
    return _verify_sharing(
        directory,
        transcript.commitments,
        transcript.cipher_shares,
        transcript.tags,
    )


def _verify_sharing(
    directory: PublicDirectory,
    commitments: Sequence[GroupElement],
    cipher_shares: Sequence[GroupElement],
    tags: Iterable[ContributorTag],
) -> bool:
    group = directory.pair_group
    field = group.scalar_field
    n = directory.n
    if len(commitments) != n + 1 or len(cipher_shares) != n:
        return False
    if not all(group.is_element(a) for a in commitments):
        return False
    if not all(group.is_element(s) for s in cipher_shares):
        return False
    # Contributor tags: PoK + dealer signature over the secret commitment.
    for tag in tags:
        if not group.is_element(tag.secret_commitment):
            return False
        pok_ok = nizk.verify_dlog(
            group,
            group.g,
            tag.secret_commitment,
            tag.pok,
            directory.session,
            tag.dealer,
        )
        if not pok_ok:
            return False
        sig_ok = schnorr.verify(
            directory.sign_group,
            directory.sign_pks[tag.dealer],
            tag.signature,
            "pvss-contrib",
            directory.session,
            tag.dealer,
            group.encode_element(tag.secret_commitment),
        )
        if not sig_ok:
            return False
    # SCRAPE low-degree test in the exponent (Fiat-Shamir derandomized).
    seed = hash_bytes(
        "pvss-scrape",
        directory.session,
        tuple(group.encode_element(a) for a in commitments),
    )
    duals = scrape_coefficients(
        field, list(range(n + 1)), directory.f, random.Random(seed)
    )
    check = group.prod(
        group.exp(commitment, dual) for commitment, dual in zip(commitments, duals)
    )
    if check != group.identity(commitments[0].kind):
        return False
    # Pairing consistency of every encrypted share with its commitment:
    # e(g, Ŝ_j) == e(epk_j, A_j) for all j, checked as one random-linear-
    # combination batch — Σ r_j errors vanishing for independent 128-bit
    # r_j has probability ≤ 2^-128, exactly the standard BLS12-381 batch
    # argument (and exact in the generic-group simulation).  The r_j are
    # Fiat-Shamir-derived so verification stays deterministic per value.
    rlc_seed = hash_bytes(
        "pvss-rlc",
        directory.session,
        tuple(group.encode_element(s) for s in cipher_shares),
        tuple(group.encode_element(a) for a in commitments),
    )
    rlc = random.Random(rlc_seed)
    weights = [rlc.randrange(1, 1 << 128) for _ in range(n)]
    lhs = group.pair(
        group.g,
        group.prod(
            group.exp(cipher_shares[j], weights[j]) for j in range(n)
        ),
    )
    rhs = group.multi_pair(
        (group.exp(directory.enc_pks[j], weights[j]), commitments[j + 1])
        for j in range(n)
    )
    return lhs == rhs


# -- process-pool worker verifiers (see repro.crypto.pool) ---------------------------
#
# The byte-level equivalents of verify_contribution / verify_transcript:
# same pre-checks, same cache-free verification functions, applied to the
# codec-decoded parts a worker receives.  ``demand=True``: these are the
# heavyweight checks (SCRAPE + n-wide RLC pairing) worth a blocking
# process round-trip on a cache miss.


def _pool_verify_contribution(directory, parts: tuple) -> bool:
    (contribution,) = parts
    if not isinstance(contribution, PVSSContribution):
        return False
    return _verify_contribution(directory, contribution)


def _pool_verify_transcript(directory, parts: tuple) -> bool:
    transcript, min_contributors = parts
    if not isinstance(transcript, PVSSTranscript):
        return False
    if not isinstance(min_contributors, int):
        return False
    return _verify_transcript(directory, transcript, min_contributors)


pool.register_worker("pvss-contrib", _pool_verify_contribution, demand=True)
pool.register_worker("pvss-transcript", _pool_verify_transcript, demand=True)
