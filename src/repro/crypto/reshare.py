"""Proactive resharing: hand an existing group key to a new committee.

The ADKG's sharing lives entirely in the exponent: party ``i`` of an
(f, n) committee holds nothing but the *encrypted* share
``Ŝ_i = epk_i^{F(x_i)}`` (and could at most decrypt to ``g^{F(x_i)}``) —
no scalar share exists anywhere, matching the paper's remark that the
DKG needs no reconstruction algorithm.  Resharing therefore cannot
"PVSS the share value" directly; what an old share-holder *can* publish
is a randomization of its share that a new (f', n') committee can
verify and interpolate without any party ever seeing a scalar:

* **Dealing** (old party ``i``, share point ``x_i = i + 1``): pick a
  random degree-``f'`` polynomial ``δ_i`` with ``δ_i(0) = 0`` and
  publish

  - commitments ``B_{i,x} = A_{x_i} · g^{δ_i(x)} = g^{q_i(x)}`` for
    ``x = 0..n'`` where ``q_i(x) = F(x_i) + δ_i(x)`` — anchored by
    ``B_{i,0} == A_{x_i}``, the *public* commitment to ``i``'s old
    share, so ``q_i(0) = F(x_i)`` is forced;
  - encrypted share *deltas* ``D_{i,j} = epk'_j{}^{δ_i(j+1)}`` for each
    new party ``j`` (the dealer knows the ``δ_i`` scalars — they are its
    own randomness; the unknowable part ``F(x_i)`` stays in the anchor);
  - a Schnorr signature under ``i``'s *old* signing key binding the
    dealing to the handoff context.

* **Verification** is public: anchor check, SCRAPE low-degree test on
  the ``B`` vector, one RLC-batched pairing check
  ``e(g, D_{i,j}) == e(epk'_j, B_{i,j+1} · B_{i,0}^{-1})``, signature.

* **Agreement**: the new committee runs NWH (whose key/lock/commit
  certificates come from :mod:`repro.core.certificates`) on a *bundle*
  of ``t = f_old + 1`` full signed dealings from distinct old dealers.
  Agreeing on the bundle — not on anyone's locally interpolated result —
  keeps external validity checkable by every party and finalization a
  deterministic pure function of the agreed value.

* **Finalization**: with Lagrange weights ``λ_i`` at 0 over the old
  share points of the bundle's dealers, ``A'_x = Π B_{i,x}^{λ_i}`` and
  ``Δ_j = Π D_{i,j}^{λ_i}``.  The new sharing polynomial is
  ``F'(x) = Σ λ_i q_i(x)`` with ``F'(0) = Σ λ_i F(x_i) = F(0)``:
  **the group public key is unchanged** (``A'_0 == A_0``,
  byte-identical), the secret was never reconstructed, and the new
  shares ``F'(j+1)`` are statistically independent of the old ones away
  from 0 — old shares are useless against the new epoch.

A new party evaluates the threshold VRF from a reshared transcript via
``e(H(m), Δ_j)^{1/esk'_j} · e(H(m), A'_0) = e(H(m), g)^{F'(j+1)}`` —
see :func:`repro.crypto.threshold_vrf.EvalSh`, which dispatches on the
transcript kind.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.crypto import schnorr
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import PartySecret, PublicDirectory
from repro.crypto.pairing import GroupElement
from repro.crypto.polynomial import (
    lagrange_coefficients,
    random_polynomial,
    scrape_coefficients,
)

__all__ = [
    "HandoffSpec",
    "ReshareBundle",
    "ReshareDealing",
    "ReshareTranscript",
    "deal_reshare",
    "finalize",
    "verify_bundle",
    "verify_dealing",
    "verify_reshared",
]


@dataclass(frozen=True)
class HandoffSpec:
    """The public context of one handoff: who the old committee was.

    Everything a new-committee party needs to verify a dealing against
    the *previous* epoch: the old session label (domain separation), the
    old committee's signing keys, and the old transcript's commitment
    vector (``old_commitments[0]`` is the invariant group key,
    ``old_commitments[i+1]`` anchors old party ``i``'s share).
    """

    epoch: int
    old_session: str
    old_n: int
    old_f: int
    old_sign_pks: tuple[int, ...]
    old_commitments: tuple[GroupElement, ...]

    def word_size(self) -> int:
        return len(self.old_commitments) + 1

    @property
    def threshold(self) -> int:
        """``f_old + 1`` dealings reconstruct the sharing in the exponent."""
        return self.old_f + 1

    @property
    def group_key(self) -> GroupElement:
        return self.old_commitments[0]

    def well_formed(self) -> bool:
        return (
            self.old_n >= 1
            and 0 <= self.old_f
            and self.old_n >= 3 * self.old_f + 1
            and len(self.old_sign_pks) == self.old_n
            and len(self.old_commitments) == self.old_n + 1
        )


@dataclass(frozen=True)
class ReshareDealing:
    """One old share-holder's re-dealing of its share to the new committee."""

    dealer: int
    commitments: tuple[GroupElement, ...]
    cipher_deltas: tuple[GroupElement, ...]
    signature: schnorr.Signature

    def word_size(self) -> int:
        return len(self.commitments) + len(self.cipher_deltas) + 1


@dataclass(frozen=True)
class ReshareBundle:
    """The NWH agreement value: ≥ f_old + 1 signed dealings, one context."""

    spec: HandoffSpec
    dealings: tuple[ReshareDealing, ...]

    def word_size(self) -> int:
        return self.spec.word_size() + sum(d.word_size() for d in self.dealings)

    @property
    def dealers(self) -> frozenset[int]:
        return frozenset(dealing.dealer for dealing in self.dealings)


@dataclass(frozen=True)
class ReshareTranscript:
    """A finalized handoff: the old key re-shared to the new committee.

    Interface-compatible with :class:`~repro.crypto.pvss.PVSSTranscript`
    where the service stack cares (``public_key``, ``share_commitment``)
    so epochs chain: a reshared epoch can itself be the "old" sharing of
    the next handoff.
    """

    spec: HandoffSpec
    commitments: tuple[GroupElement, ...]
    cipher_deltas: tuple[GroupElement, ...]
    dealers: tuple[int, ...]

    def word_size(self) -> int:
        return (
            self.spec.word_size()
            + len(self.commitments)
            + len(self.cipher_deltas)
            + 1
        )

    @property
    def public_key(self) -> GroupElement:
        """``g^{F'(0)} = g^{F(0)}`` — byte-identical to the old key."""
        return self.commitments[0]

    def share_commitment(self, party: int) -> GroupElement:
        """``g^{F'(party+1)}`` — the new committee's share commitments."""
        return self.commitments[party + 1]


def _dealing_context(
    directory: PublicDirectory, spec: HandoffSpec, dealing_body: tuple
) -> tuple:
    """The signed context: old and new sessions plus the dealing content."""
    return (
        "reshare-dealing",
        spec.old_session,
        directory.session,
        spec.epoch,
    ) + dealing_body


def _dealing_body(directory: PublicDirectory, dealing: ReshareDealing) -> tuple:
    group = directory.pair_group
    return (
        dealing.dealer,
        tuple(group.encode_element(b) for b in dealing.commitments),
        tuple(group.encode_element(d) for d in dealing.cipher_deltas),
    )


def deal_reshare(
    directory: PublicDirectory,
    spec: HandoffSpec,
    dealer: PartySecret,
    rng: random.Random,
) -> ReshareDealing:
    """Old party ``dealer.index``'s dealing to the committee of ``directory``.

    ``dealer`` is the *old* committee's key material (its index is the
    old local index; its signing key matches ``spec.old_sign_pks``).
    ``directory`` is the *new* epoch's directory — its size, encryption
    keys and session label shape the dealing.
    """
    group = directory.pair_group
    field = group.scalar_field
    anchor = spec.old_commitments[dealer.index + 1]
    # δ(0) = 0: the dealing shifts the share polynomial without moving
    # the dealer's anchored value q(0) = F(x_i).
    delta = random_polynomial(field, directory.f, rng, secret=0)
    xs = list(range(directory.n + 1))
    evaluations = delta.evaluate_many(xs)
    commitments = tuple(
        group.mul(anchor, group.exp(group.g, evaluations[x])) for x in xs
    )
    cipher_deltas = tuple(
        group.exp(directory.enc_pks[j], evaluations[j + 1])
        for j in range(directory.n)
    )
    body = (
        dealer.index,
        tuple(group.encode_element(b) for b in commitments),
        tuple(group.encode_element(d) for d in cipher_deltas),
    )
    signature = schnorr.sign(
        directory.sign_group,
        dealer.sign,
        *_dealing_context(directory, spec, body),
    )
    return ReshareDealing(
        dealer=dealer.index,
        commitments=commitments,
        cipher_deltas=cipher_deltas,
        signature=signature,
    )


def verify_dealing(
    directory: PublicDirectory, spec: HandoffSpec, dealing: ReshareDealing
) -> bool:
    """Publicly verify one reshare dealing (memoized, content-addressed)."""
    if not isinstance(dealing, ReshareDealing) or not isinstance(spec, HandoffSpec):
        return False
    return directory.verify_cache.identity_memoize(
        "reshare-dealing",
        dealing,
        (spec,),
        (dealing, spec),
        lambda: _verify_dealing(directory, spec, dealing),
    )


def _verify_dealing(
    directory: PublicDirectory, spec: HandoffSpec, dealing: ReshareDealing
) -> bool:
    group = directory.pair_group
    n = directory.n
    if not spec.well_formed():
        return False
    if not 0 <= dealing.dealer < spec.old_n:
        return False
    if len(dealing.commitments) != n + 1 or len(dealing.cipher_deltas) != n:
        return False
    if not all(group.is_element(b) for b in dealing.commitments):
        return False
    if not all(group.is_element(d) for d in dealing.cipher_deltas):
        return False
    # The anchor: q(0) must be the dealer's *old committed share* — this
    # is what makes a dealing a resharing of F rather than of anything
    # the dealer invented.
    if dealing.commitments[0] != spec.old_commitments[dealing.dealer + 1]:
        return False
    sig_ok = schnorr.verify(
        directory.sign_group,
        spec.old_sign_pks[dealing.dealer],
        dealing.signature,
        *_dealing_context(directory, spec, _dealing_body(directory, dealing)),
    )
    if not sig_ok:
        return False
    return _verify_resharing(
        directory, dealing.commitments, dealing.cipher_deltas
    )


def _verify_resharing(
    directory: PublicDirectory,
    commitments: Sequence[GroupElement],
    cipher_deltas: Sequence[GroupElement],
) -> bool:
    """SCRAPE + RLC pairing checks shared by dealings and transcripts.

    ``cipher_deltas[j]`` must encrypt ``q(j+1) - q(0)`` under ``epk'_j``
    where ``q`` is the degree ≤ f' polynomial committed by
    ``commitments``: ``e(g, D_j) == e(epk'_j, B_{j+1} · B_0^{-1})``,
    batched with Fiat-Shamir 128-bit weights exactly as in
    :func:`repro.crypto.pvss._verify_sharing`.
    """
    group = directory.pair_group
    field = group.scalar_field
    n = directory.n
    seed = hash_bytes(
        "reshare-scrape",
        directory.session,
        tuple(group.encode_element(b) for b in commitments),
    )
    duals = scrape_coefficients(
        field, list(range(n + 1)), directory.f, random.Random(seed)
    )
    check = group.prod(
        group.exp(commitment, dual)
        for commitment, dual in zip(commitments, duals)
    )
    if check != group.identity(commitments[0].kind):
        return False
    rlc_seed = hash_bytes(
        "reshare-rlc",
        directory.session,
        tuple(group.encode_element(d) for d in cipher_deltas),
        tuple(group.encode_element(b) for b in commitments),
    )
    rlc = random.Random(rlc_seed)
    weights = [rlc.randrange(1, 1 << 128) for _ in range(n)]
    anchor_inv = group.inv(commitments[0])
    lhs = group.pair(
        group.g,
        group.prod(
            group.exp(cipher_deltas[j], weights[j]) for j in range(n)
        ),
    )
    rhs = group.multi_pair(
        (
            group.exp(directory.enc_pks[j], weights[j]),
            group.mul(commitments[j + 1], anchor_inv),
        )
        for j in range(n)
    )
    return lhs == rhs


def verify_bundle(
    directory: PublicDirectory,
    bundle: Any,
    expected: Optional[HandoffSpec] = None,
) -> bool:
    """NWH's external-validity predicate for a handoff.

    A valid bundle carries ``≥ f_old + 1`` verifying dealings from
    distinct old dealers under one handoff spec; when ``expected`` is
    given the bundle's spec must be exactly the locally known one (a
    proposer cannot substitute a fabricated "old committee").
    """
    if not isinstance(bundle, ReshareBundle):
        return False
    if expected is not None and bundle.spec != expected:
        return False
    return directory.verify_cache.identity_memoize(
        "reshare-bundle",
        bundle,
        (),
        (bundle,),
        lambda: _verify_bundle(directory, bundle),
    )


def _verify_bundle(directory: PublicDirectory, bundle: ReshareBundle) -> bool:
    spec = bundle.spec
    if not spec.well_formed():
        return False
    dealers = [dealing.dealer for dealing in bundle.dealings]
    if len(set(dealers)) != len(dealers):
        return False
    if len(dealers) < spec.threshold:
        return False
    return all(
        verify_dealing(directory, spec, dealing) for dealing in bundle.dealings
    )


def finalize(directory: PublicDirectory, bundle: ReshareBundle) -> ReshareTranscript:
    """Interpolate an agreed bundle into the new epoch's transcript.

    Deterministic in the bundle alone, so every new-committee party
    derives byte-identical transcripts from the NWH output — agreement
    on the bundle *is* agreement on the new sharing.
    """
    spec = bundle.spec
    group = directory.pair_group
    field = group.scalar_field
    dealings = sorted(bundle.dealings, key=lambda dealing: dealing.dealer)
    xs = [dealing.dealer + 1 for dealing in dealings]
    lambdas = lagrange_coefficients(field, xs, at=0)
    width = directory.n + 1
    commitments = tuple(
        group.prod(
            group.exp(dealing.commitments[x], lam)
            for dealing, lam in zip(dealings, lambdas)
        )
        for x in range(width)
    )
    cipher_deltas = tuple(
        group.prod(
            group.exp(dealing.cipher_deltas[j], lam)
            for dealing, lam in zip(dealings, lambdas)
        )
        for j in range(directory.n)
    )
    return ReshareTranscript(
        spec=spec,
        commitments=commitments,
        cipher_deltas=cipher_deltas,
        dealers=tuple(dealing.dealer for dealing in dealings),
    )


def verify_reshared(
    directory: PublicDirectory,
    transcript: Any,
    expected: Optional[HandoffSpec] = None,
) -> bool:
    """Publicly verify a finalized reshared transcript.

    Checks the invariant key (``commitments[0]`` equals the spec's old
    group key), the low-degree bound of the new sharing, and the
    pairing-consistency of every encrypted delta.  ``expected`` pins the
    handoff spec where the caller knows it (beacon verification does).
    """
    if not isinstance(transcript, ReshareTranscript):
        return False
    if expected is not None and transcript.spec != expected:
        return False
    return directory.verify_cache.identity_memoize(
        "reshare-transcript",
        transcript,
        (),
        (transcript,),
        lambda: _verify_reshared(directory, transcript),
    )


def _verify_reshared(
    directory: PublicDirectory, transcript: ReshareTranscript
) -> bool:
    group = directory.pair_group
    spec = transcript.spec
    n = directory.n
    if not spec.well_formed():
        return False
    dealers = list(transcript.dealers)
    if len(set(dealers)) != len(dealers) or len(dealers) < spec.threshold:
        return False
    if any(not 0 <= dealer < spec.old_n for dealer in dealers):
        return False
    if len(transcript.commitments) != n + 1:
        return False
    if len(transcript.cipher_deltas) != n:
        return False
    if not all(group.is_element(b) for b in transcript.commitments):
        return False
    if not all(group.is_element(d) for d in transcript.cipher_deltas):
        return False
    # Key invariance: the whole point of the handoff.
    if transcript.commitments[0] != spec.group_key:
        return False
    return _verify_resharing(
        directory, transcript.commitments, transcript.cipher_deltas
    )
