"""Process-pool verification plane behind :class:`VerifyCache`.

Every verification the repo memoizes is a *pure function of bytes*: the
verdict depends only on the canonical :mod:`repro.net.codec` encoding of
the checked value (plus context parts) and on the public directory.
That purity is what makes it safe to compute verdicts in a different
process: a worker receives ``(domain, codec-encoded parts, directory
fingerprint)``, rebuilds an equivalent :class:`PublicDirectory` from the
shipped spec (:func:`repro.crypto.keys.rebuild_directory`), decodes the
parts, and runs the *registered byte-level equivalent* of the inline
check.  No live objects cross the process boundary — only bytes out and
a bool (or ``None`` = "could not decide, compute inline") back — so a
Byzantine input can at worst cost the worker a wasted decode; it can
never smuggle state into the main process.

Three layers use this module:

1. **Demand dispatch** — :meth:`VerifyCache.memoize` consults an
   attached :class:`PoolVerifier` on a miss for domains registered with
   ``demand=True`` (the heavyweight PVSS checks).  The verdict is
   memoized exactly as an inline verdict would be.
2. **Speculative pre-verification** — the transports submit every
   verifiable payload of a just-arrived coalesced frame *before* the
   protocol state machine activates (:meth:`VerifyCache.speculate`), so
   the protocol's own check is usually a cache hit.
3. **RLC multi-pairing aggregation** — domains whose check is a single
   GT-equation ``lhs == Π e(a_i, b_i)`` register an *aggregate builder*;
   a worker folds every such task in a batch into one random-linear-
   combination product settled by a single ``pairing.multi()`` call,
   falling back per-task only when the combined check fails.

Verdict equivalence with the inline plane is structural, not assumed:
each registered worker function replicates the inline pre-checks and
equations against byte-equal decoded inputs, and the differential tests
(``tests/crypto/test_pool.py``) pin pool ≡ inline on valid and
Byzantine-mutated inputs for every registered domain.  A worker failure
of any kind degrades to inline computation — the pool can only ever be
an accelerator, never an oracle of last resort.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import random
import threading
from collections import Counter
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.crypto.hashing import hash_bytes
from repro.crypto.pairing import KIND_GT

__all__ = [
    "PoolVerifier",
    "register_worker",
    "registered_domains",
    "demand_domains",
]

#: A worker-side verifier: byte-decoded ``parts`` in, verdict out.  Must
#: replicate the inline check exactly (pre-checks included); exceptions
#: are caught by the worker loop and reported as "undecided".
WorkerFn = Callable[[Any, tuple], bool]

#: An aggregate builder: returns ``(lhs, pairs)`` asserting the claim
#: ``lhs == Π e(a_i, b_i)`` in GT, or ``None`` when the task is not in
#: aggregatable shape (failed pre-checks, malformed value).
AggregateFn = Callable[[Any, tuple], Optional[tuple]]


@dataclass(frozen=True)
class _WorkerSpec:
    fn: WorkerFn
    aggregate: Optional[AggregateFn]
    demand: bool


_WORKER_VERIFIERS: dict[str, _WorkerSpec] = {}


def register_worker(
    domain: str,
    fn: WorkerFn,
    *,
    aggregate: Optional[AggregateFn] = None,
    demand: bool = False,
) -> None:
    """Register ``domain``'s byte-level verifier for pool dispatch.

    ``demand=True`` additionally opts the domain into blocking dispatch
    on a cache miss — worth it only when the inline check costs well
    above one process round-trip (the PVSS checks); light single-pairing
    domains stay inline on demand and ride the speculative path instead.
    """
    _WORKER_VERIFIERS[domain] = _WorkerSpec(fn=fn, aggregate=aggregate, demand=demand)


def registered_domains() -> tuple[str, ...]:
    _ensure_registrations()
    return tuple(sorted(_WORKER_VERIFIERS))


def demand_domains() -> tuple[str, ...]:
    _ensure_registrations()
    return tuple(sorted(d for d, s in _WORKER_VERIFIERS.items() if s.demand))


def _ensure_registrations() -> None:
    """Import every module that registers a worker verifier.

    Workers created by a ``fork`` context inherit the parent's registry;
    a ``spawn`` context (or a bare test process) starts from an empty
    module and needs the imports to run.
    """
    import repro.core.certificates  # noqa: F401
    import repro.crypto.kzg  # noqa: F401
    import repro.crypto.pvss  # noqa: F401
    import repro.crypto.threshold_sig  # noqa: F401
    import repro.crypto.threshold_vrf  # noqa: F401


# -- worker side ---------------------------------------------------------------------

#: Directory rebuilt per spec blob, cached per worker process (bounded:
#: a long-lived worker serving many runs keeps only the recent specs).
_WORKER_DIRECTORIES: dict[bytes, Any] = {}


def _worker_directory(spec_blob: bytes) -> Any:
    directory = _WORKER_DIRECTORIES.get(spec_blob)
    if directory is None:
        from repro.crypto import keys
        from repro.net import codec

        directory = keys.rebuild_directory(codec.decode(spec_blob))
        if len(_WORKER_DIRECTORIES) >= 8:
            _WORKER_DIRECTORIES.clear()
        _WORKER_DIRECTORIES[spec_blob] = directory
    return directory


def _warm() -> bool:
    """No-op task submitted at executor creation to force worker forks
    before the caller opens sockets or starts an event loop."""
    return True


def _pool_worker(
    spec_blob: bytes, tasks: list[tuple[str, tuple[bytes, ...]]]
) -> list[Optional[bool]]:
    """Verify a batch of ``(domain, per-part codec blobs)`` tasks.

    Returns one slot per task: ``True``/``False`` is a decided verdict
    (byte-equivalent to the inline check), ``None`` means "could not
    decide here" and the caller must compute inline.  Aggregatable tasks
    are first folded into one RLC multi-pairing product; only a failing
    product (at least one bad item, probability ≤ 2^-128 otherwise)
    pays for per-task rechecks.
    """
    results: list[Optional[bool]] = [None] * len(tasks)
    _ensure_registrations()
    try:
        directory = _worker_directory(spec_blob)
    except Exception:
        return results
    from repro.net import codec

    decoded = []
    for index, (domain, blobs) in enumerate(tasks):
        spec = _WORKER_VERIFIERS.get(domain)
        if spec is None:
            continue
        try:
            parts = tuple(codec.decode(blob) for blob in blobs)
        except Exception:
            continue
        decoded.append((index, blobs, parts, spec))

    aggregatable = []
    for item in decoded:
        _index, _blobs, parts, spec = item
        if spec.aggregate is None:
            continue
        try:
            claim = spec.aggregate(directory, parts)
        except Exception:
            claim = None
        if claim is not None:
            aggregatable.append((item, claim))
    if len(aggregatable) >= 2:
        try:
            if _check_aggregate(directory, aggregatable):
                for item, _claim in aggregatable:
                    results[item[0]] = True
        except Exception:
            pass  # fall through to per-task checks

    for item in decoded:
        index, _blobs, parts, spec = item
        if results[index] is not None:
            continue
        try:
            results[index] = bool(spec.fn(directory, parts))
        except Exception:
            results[index] = None
    return results


def _check_aggregate(directory: Any, aggregatable: list) -> bool:
    """One RLC product over every claim ``lhs_i == Π e(a_ij, b_ij)``.

    With independent 128-bit weights ``r_i``, ``Π lhs_i^{r_i} ==
    multi(Π e(a_ij^{r_i}, b_ij))`` accepts a batch containing a false
    claim with probability ≤ 2^-128 — the standard batch-verification
    argument, exact in the generic-group simulation.  Weights are
    Fiat-Shamir-derived from the task bytes so the check stays
    deterministic per batch content.
    """
    group = directory.pair_group
    seed = hash_bytes(
        "pool-rlc",
        directory.session,
        tuple(item[1] for item, _claim in aggregatable),
    )
    rng = random.Random(seed)
    lhs_acc = group.identity(KIND_GT)
    weighted_pairs = []
    for _item, (lhs, pairs) in aggregatable:
        weight = rng.randrange(1, 1 << 128)
        lhs_acc = group.mul(lhs_acc, group.exp(lhs, weight))
        for a, b in pairs:
            weighted_pairs.append((group.exp(a, weight), b))
    return group.multi(weighted_pairs) == lhs_acc


# -- shared executor -----------------------------------------------------------------

_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_SIZE = 0
_EXECUTOR_LOCK = threading.Lock()


def _get_executor(workers: int) -> ProcessPoolExecutor:
    """The process-wide executor, grown (never shrunk) to ``workers``.

    Shared across :class:`PoolVerifier` instances so repeated in-process
    runs (test suites, benchmarks) pay the fork cost once.  Created with
    the ``fork`` start method where available and warmed with no-op
    tasks so forks happen before the caller opens sockets.
    """
    global _EXECUTOR, _EXECUTOR_SIZE
    with _EXECUTOR_LOCK:
        if _EXECUTOR is None or _EXECUTOR_SIZE < workers:
            if _EXECUTOR is not None:
                _EXECUTOR.shutdown(wait=False, cancel_futures=True)
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = multiprocessing.get_context()
            _EXECUTOR = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            _EXECUTOR_SIZE = workers
            for _ in range(workers):
                _EXECUTOR.submit(_warm)
        return _EXECUTOR


def _discard_executor() -> None:
    """Drop the shared executor (broken pool); the next use recreates it."""
    global _EXECUTOR, _EXECUTOR_SIZE
    with _EXECUTOR_LOCK:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=False, cancel_futures=True)
        _EXECUTOR = None
        _EXECUTOR_SIZE = 0


def shutdown_executor() -> None:
    """Tear down the shared executor (test isolation / interpreter exit)."""
    _discard_executor()


# -- caller side ---------------------------------------------------------------------


class PoolVerifier:
    """Dispatches byte-level verification tasks to the worker pool.

    One instance per transport/run, bound to one directory: the
    directory spec is encoded once at construction and shipped with
    every batch (workers cache the rebuild per spec).  All failure modes
    — unencodable parts, worker exceptions, a crashed worker process —
    surface as ``None`` verdicts; after a pool-level breakage the
    instance marks itself ``broken`` and every subsequent call no-ops so
    the run continues inline without further dispatch attempts.
    """

    __slots__ = (
        "workers",
        "directory",
        "fingerprint",
        "stats",
        "broken",
        "_spec_blob",
        "_lock",
    )

    def __init__(self, workers: int, directory: Any) -> None:
        if workers < 1:
            raise ValueError("PoolVerifier needs at least one worker")
        from repro.crypto import keys
        from repro.net import codec

        self.workers = workers
        self.directory = directory
        self._spec_blob = codec.encode(keys.directory_spec(directory))
        self.fingerprint = hashlib.sha256(self._spec_blob).hexdigest()[:16]
        self.stats: Counter = Counter()
        self.broken = False
        self._lock = threading.Lock()
        _ensure_registrations()
        _get_executor(workers)  # pre-fork before sockets / event loops exist

    def can_verify(self, domain: str) -> bool:
        return not self.broken and domain in _WORKER_VERIFIERS

    def demands(self, domain: str) -> bool:
        """Should a cache miss in ``domain`` block on pool dispatch?"""
        if self.broken:
            return False
        spec = _WORKER_VERIFIERS.get(domain)
        return spec is not None and spec.demand

    def encode_parts(self, domain: str, parts: tuple) -> Optional[tuple[bytes, ...]]:
        """``parts`` as per-part codec blobs, or ``None`` if not dispatchable.

        Per-part (rather than one tuple blob) so the canonical bytes the
        cache already produced for content hashing are reused verbatim
        (:func:`repro.crypto.verify_cache.content_encoding`) — values are
        encoded once per object, not once per dispatch.
        """
        if not self.can_verify(domain):
            return None
        from repro.crypto.verify_cache import content_encoding

        blobs = []
        for part in parts:
            blob = content_encoding(part)
            if blob is None:
                return None
            blobs.append(blob)
        return tuple(blobs)

    def submit(self, tasks: list[tuple[str, tuple[bytes, ...]]]) -> Optional[Future]:
        """Submit one worker batch; ``None`` when dispatch is impossible."""
        if self.broken or not tasks:
            return None
        try:
            executor = _get_executor(self.workers)
            future = executor.submit(_pool_worker, self._spec_blob, list(tasks))
        except Exception:
            self._mark_broken()
            return None
        with self._lock:
            self.stats["batches"] += 1
            self.stats["tasks"] += len(tasks)
        return future

    def verify(self, domain: str, parts: tuple) -> Optional[bool]:
        """Blocking single-task dispatch (the demand path)."""
        blobs = self.encode_parts(domain, parts)
        if blobs is None:
            return None
        future = self.submit([(domain, blobs)])
        if future is None:
            return None
        return self.result_at(future, 0)

    def result_at(self, future: Future, index: int) -> Optional[bool]:
        """Await one task's verdict; ``None`` degrades to inline compute."""
        try:
            results = future.result()
        except Exception:
            self._mark_broken()
            return None
        if results is None or not 0 <= index < len(results):
            return None
        verdict = results[index]
        if verdict is None:
            with self._lock:
                self.stats["worker_failures"] += 1
            return None
        return bool(verdict)

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self.stats)

    def close(self) -> None:
        """Detach from the shared executor (which stays warm for reuse)."""
        self.broken = True

    def _mark_broken(self) -> None:
        with self._lock:
            if self.broken:
                return
            self.broken = True
            self.stats["broken"] += 1
        _discard_executor()
