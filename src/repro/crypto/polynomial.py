"""Polynomials over a prime field: evaluation, interpolation, SCRAPE test.

Used by Shamir sharing, the PVSS low-degree check and the threshold VRF's
Lagrange-in-the-exponent combination step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from functools import lru_cache
from typing import Sequence

from repro.crypto.field import PrimeField


@dataclass(frozen=True)
class Polynomial:
    """A polynomial ``coeffs[0] + coeffs[1] x + ...`` over ``field``."""

    field: PrimeField = dc_field(metadata={"no_encode": True})
    coeffs: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.coeffs:
            raise ValueError("polynomial needs at least one coefficient")
        for coeff in self.coeffs:
            if not self.field.contains(coeff):
                raise ValueError("coefficient outside the field")

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def evaluate(self, x: int) -> int:
        """Horner evaluation at ``x``."""
        q = self.field.q
        acc = 0
        for coeff in reversed(self.coeffs):
            acc = (acc * x + coeff) % q
        return acc

    def evaluate_many(self, xs: Sequence[int]) -> tuple[int, ...]:
        return tuple(self.evaluate(x) for x in xs)

    def add(self, other: "Polynomial") -> "Polynomial":
        if other.field != self.field:
            raise ValueError("field mismatch")
        width = max(len(self.coeffs), len(other.coeffs))
        mine = self.coeffs + (0,) * (width - len(self.coeffs))
        theirs = other.coeffs + (0,) * (width - len(other.coeffs))
        coeffs = tuple(self.field.add(a, b) for a, b in zip(mine, theirs))
        return Polynomial(self.field, coeffs)


def random_polynomial(
    field: PrimeField,
    degree: int,
    rng: random.Random,
    secret: int | None = None,
) -> Polynomial:
    """A uniformly random degree-``degree`` polynomial.

    If ``secret`` is given it becomes the constant term (``f(0)``).
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    constant = field.rand(rng) if secret is None else field.element(secret)
    coeffs = (constant,) + tuple(field.rand(rng) for _ in range(degree))
    return Polynomial(field, coeffs)


@lru_cache(maxsize=4096)
def _pairwise_denominators(q: int, points: tuple[int, ...]) -> tuple[int, ...]:
    """``d_i = Π_{j≠i} (x_i - x_j) mod q`` for a fixed evaluation domain.

    The O(k²) inner product every Lagrange-style computation needs
    (coefficients, SCRAPE dual codewords, coefficient interpolation) over
    the handful of domains ADKG actually uses — ``1..f+1`` subsets for
    share combination, ``0..n`` for the SCRAPE test — so it is cached
    process-wide, keyed by the domain itself.
    """
    denominators = []
    for i, x_i in enumerate(points):
        d = 1
        for j, x_j in enumerate(points):
            if i != j:
                d = d * (x_i - x_j) % q
        denominators.append(d)
    return tuple(denominators)


@lru_cache(maxsize=4096)
def _lagrange_cached(q: int, points: tuple[int, ...], at: int) -> tuple[int, ...]:
    denominators = _pairwise_denominators(q, points)
    # Π (at - x_j) over the whole domain; λ_i divides the i-th factor out.
    coefficients = []
    for x_i, d_i in zip(points, denominators):
        numerator = 1
        for x_j in points:
            if x_j != x_i:
                numerator = numerator * (at - x_j) % q
        coefficients.append(numerator * pow(d_i, -1, q) % q)
    return tuple(coefficients)


def lagrange_coefficients(
    field: PrimeField, xs: Sequence[int], at: int = 0
) -> tuple[int, ...]:
    """Lagrange coefficients ``λ_i`` such that ``f(at) = Σ λ_i f(xs[i])``.

    The ``xs`` must be distinct field elements.  Results are memoized per
    ``(field, domain, at)``: every view of every ADKG run combines shares
    over the same handful of ``f+1``-subsets of ``1..n``.
    """
    points = tuple(field.element(x) for x in xs)
    if len(set(points)) != len(points):
        raise ValueError("interpolation points must be distinct")
    return _lagrange_cached(field.q, points, field.element(at))


def interpolate_at(
    field: PrimeField,
    points: Sequence[tuple[int, int]],
    at: int = 0,
) -> int:
    """Evaluate the unique interpolating polynomial of ``points`` at ``at``."""
    xs = [x for x, _ in points]
    lambdas = lagrange_coefficients(field, xs, at)
    return field.sum(field.mul(lam, y) for lam, (_, y) in zip(lambdas, points))


@lru_cache(maxsize=1024)
def _master_polynomial(q: int, points: tuple[int, ...]) -> tuple[int, ...]:
    """Coefficients of ``Π_j (x - x_j) mod q`` for a fixed domain."""
    coeffs = [1]
    for x in points:
        shifted = [0] + coeffs  # coeffs * x^1
        for i, c in enumerate(coeffs):
            shifted[i] = (shifted[i] - c * x) % q
        coeffs = shifted
    return tuple(coeffs)


def _divide_by_root(q: int, coeffs: Sequence[int], root: int) -> list[int]:
    """Divide a polynomial with ``p(root) = 0`` by ``(x - root)``."""
    degree = len(coeffs) - 1
    quotient = [0] * degree
    carry = 0
    for k in range(degree, 0, -1):
        carry = (coeffs[k] + carry * root) % q
        quotient[k - 1] = carry
    return quotient


def interpolate_polynomial(
    field: PrimeField, points: Sequence[tuple[int, int]]
) -> Polynomial:
    """Full coefficient-form interpolation (used by KZG and the RS decoder tests).

    Degree 0/1 inputs short-circuit; the general case expands the
    Lagrange basis from the domain's cached master polynomial and
    pairwise denominators (:func:`_pairwise_denominators`), so repeated
    interpolation over a fixed domain — KZG commits/opens always use
    ``0..d`` — only pays O(k²) once per domain.
    """
    xs = [field.element(x) for x, _ in points]
    ys = [field.element(y) for _, y in points]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must be distinct")
    q = field.q
    if len(points) == 1:
        return Polynomial(field, (ys[0],))
    if len(points) == 2:
        slope = (ys[1] - ys[0]) * pow(xs[1] - xs[0], -1, q) % q
        constant = (ys[0] - slope * xs[0]) % q
        coeffs = [constant, slope]
    else:
        domain = tuple(xs)
        master = _master_polynomial(q, domain)
        denominators = _pairwise_denominators(q, domain)
        count = len(points)
        coeffs = [0] * count
        for x_i, y_i, d_i in zip(xs, ys, denominators):
            if y_i == 0:
                continue
            basis = _divide_by_root(q, master, x_i)
            scale = y_i * pow(d_i, -1, q) % q
            for t in range(count):
                if basis[t]:
                    coeffs[t] = (coeffs[t] + scale * basis[t]) % q
    while len(coeffs) > 1 and coeffs[-1] == 0:
        coeffs.pop()
    return Polynomial(field, tuple(coeffs))


def scrape_coefficients(
    field: PrimeField,
    xs: Sequence[int],
    degree: int,
    rng: random.Random,
) -> tuple[int, ...]:
    """Random dual-code word for the SCRAPE low-degree test.

    For evaluation points ``xs`` and claimed degree bound ``degree``, returns
    coefficients ``c_i`` such that ``Σ c_i f(x_i) = 0`` for *every* polynomial
    ``f`` of degree ≤ ``degree``, while a vector of evaluations that does not
    lie on such a polynomial fails the check with probability ``1 - 1/q``.

    ``c_i = m(x_i) / Π_{j≠i} (x_i - x_j)`` for a random polynomial ``m`` of
    degree ≤ ``len(xs) - degree - 2``.
    """
    count = len(xs)
    if degree < 0 or degree > count - 2:
        raise ValueError("need at least degree + 2 points for a non-trivial test")
    points = tuple(field.element(x) for x in xs)
    if len(set(points)) != len(points):
        raise ValueError("evaluation points must be distinct")
    mask = random_polynomial(field, count - degree - 2, rng)
    q = field.q
    denominators = _pairwise_denominators(q, points)
    return tuple(
        mask.evaluate(x_i) * pow(d_i, -1, q) % q
        for x_i, d_i in zip(points, denominators)
    )
