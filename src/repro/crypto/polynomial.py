"""Polynomials over a prime field: evaluation, interpolation, SCRAPE test.

Used by Shamir sharing, the PVSS low-degree check and the threshold VRF's
Lagrange-in-the-exponent combination step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Sequence

from repro.crypto.field import PrimeField


@dataclass(frozen=True)
class Polynomial:
    """A polynomial ``coeffs[0] + coeffs[1] x + ...`` over ``field``."""

    field: PrimeField = dc_field(metadata={"no_encode": True})
    coeffs: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.coeffs:
            raise ValueError("polynomial needs at least one coefficient")
        for coeff in self.coeffs:
            if not self.field.contains(coeff):
                raise ValueError("coefficient outside the field")

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def evaluate(self, x: int) -> int:
        """Horner evaluation at ``x``."""
        q = self.field.q
        acc = 0
        for coeff in reversed(self.coeffs):
            acc = (acc * x + coeff) % q
        return acc

    def evaluate_many(self, xs: Sequence[int]) -> tuple[int, ...]:
        return tuple(self.evaluate(x) for x in xs)

    def add(self, other: "Polynomial") -> "Polynomial":
        if other.field != self.field:
            raise ValueError("field mismatch")
        width = max(len(self.coeffs), len(other.coeffs))
        mine = self.coeffs + (0,) * (width - len(self.coeffs))
        theirs = other.coeffs + (0,) * (width - len(other.coeffs))
        coeffs = tuple(self.field.add(a, b) for a, b in zip(mine, theirs))
        return Polynomial(self.field, coeffs)


def random_polynomial(
    field: PrimeField,
    degree: int,
    rng: random.Random,
    secret: int | None = None,
) -> Polynomial:
    """A uniformly random degree-``degree`` polynomial.

    If ``secret`` is given it becomes the constant term (``f(0)``).
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    constant = field.rand(rng) if secret is None else field.element(secret)
    coeffs = (constant,) + tuple(field.rand(rng) for _ in range(degree))
    return Polynomial(field, coeffs)


def lagrange_coefficients(
    field: PrimeField, xs: Sequence[int], at: int = 0
) -> tuple[int, ...]:
    """Lagrange coefficients ``λ_i`` such that ``f(at) = Σ λ_i f(xs[i])``.

    The ``xs`` must be distinct field elements.
    """
    points = [field.element(x) for x in xs]
    if len(set(points)) != len(points):
        raise ValueError("interpolation points must be distinct")
    coefficients = []
    for i, x_i in enumerate(points):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(points):
            if i == j:
                continue
            numerator = numerator * field.sub(at, x_j) % field.q
            denominator = denominator * field.sub(x_i, x_j) % field.q
        coefficients.append(field.div(numerator, denominator))
    return tuple(coefficients)


def interpolate_at(
    field: PrimeField,
    points: Sequence[tuple[int, int]],
    at: int = 0,
) -> int:
    """Evaluate the unique interpolating polynomial of ``points`` at ``at``."""
    xs = [x for x, _ in points]
    lambdas = lagrange_coefficients(field, xs, at)
    return field.sum(field.mul(lam, y) for lam, (_, y) in zip(lambdas, points))


def interpolate_polynomial(
    field: PrimeField, points: Sequence[tuple[int, int]]
) -> Polynomial:
    """Full coefficient-form interpolation (O(k^2)); used by the RS decoder tests."""
    xs = [field.element(x) for x, _ in points]
    ys = [field.element(y) for _, y in points]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must be distinct")
    # Newton's divided differences.
    n = len(points)
    table = list(ys)
    for level in range(1, n):
        for i in range(n - 1, level - 1, -1):
            num = field.sub(table[i], table[i - 1])
            den = field.sub(xs[i], xs[i - level])
            table[i] = field.div(num, den)
    # Expand Newton form to coefficients.
    coeffs = [0] * n
    coeffs[0] = table[0]
    basis = [1] + [0] * (n - 1)  # running product (x - x_0)...(x - x_{k-1})
    for k in range(1, n):
        # basis *= (x - xs[k-1])
        new_basis = [0] * n
        for i in range(n):
            if basis[i] == 0:
                continue
            if i + 1 < n:
                new_basis[i + 1] = field.add(new_basis[i + 1], basis[i])
            new_basis[i] = field.sub(new_basis[i], field.mul(basis[i], xs[k - 1]))
        basis = new_basis
        for i in range(n):
            coeffs[i] = field.add(coeffs[i], field.mul(table[k], basis[i]))
    while len(coeffs) > 1 and coeffs[-1] == 0:
        coeffs.pop()
    return Polynomial(field, tuple(coeffs))


def scrape_coefficients(
    field: PrimeField,
    xs: Sequence[int],
    degree: int,
    rng: random.Random,
) -> tuple[int, ...]:
    """Random dual-code word for the SCRAPE low-degree test.

    For evaluation points ``xs`` and claimed degree bound ``degree``, returns
    coefficients ``c_i`` such that ``Σ c_i f(x_i) = 0`` for *every* polynomial
    ``f`` of degree ≤ ``degree``, while a vector of evaluations that does not
    lie on such a polynomial fails the check with probability ``1 - 1/q``.

    ``c_i = m(x_i) / Π_{j≠i} (x_i - x_j)`` for a random polynomial ``m`` of
    degree ≤ ``len(xs) - degree - 2``.
    """
    count = len(xs)
    if degree < 0 or degree > count - 2:
        raise ValueError("need at least degree + 2 points for a non-trivial test")
    points = [field.element(x) for x in xs]
    if len(set(points)) != len(points):
        raise ValueError("evaluation points must be distinct")
    mask = random_polynomial(field, count - degree - 2, rng)
    coefficients = []
    for i, x_i in enumerate(points):
        denominator = 1
        for j, x_j in enumerate(points):
            if i == j:
                continue
            denominator = denominator * field.sub(x_i, x_j) % field.q
        coefficients.append(field.mul(mask.evaluate(x_i), field.inv(denominator)))
    return tuple(coefficients)
