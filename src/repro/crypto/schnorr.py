"""Schnorr signatures over a real Schnorr group.

Deterministic nonces (hash of secret key and message, RFC-6979 style) keep
the simulator reproducible without weakening unforgeability.  Signatures
are the ``(c, s)`` form: 2 scalars, counted as one word in the paper's
accounting (a word holds a constant number of values).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.group import SchnorrGroup
from repro.crypto.hashing import hash_to_int


@dataclass(frozen=True)
class SigningKey:
    sk: int
    pk: int


@dataclass(frozen=True)
class Signature:
    c: int
    s: int

    def word_size(self) -> int:
        return 1


def keygen(group: SchnorrGroup, rng: random.Random) -> SigningKey:
    sk = group.rand_scalar(rng)
    return SigningKey(sk=sk, pk=group.exp(group.g, sk))


def sign(group: SchnorrGroup, key: SigningKey, *message: Any) -> Signature:
    """Sign the canonical encoding of ``message``."""
    nonce = hash_to_int("schnorr-nonce", group.q, key.sk, *message)
    if nonce == 0:
        nonce = 1
    commitment = group.exp(group.g, nonce)
    challenge = hash_to_int("schnorr-chal", group.q, commitment, key.pk, *message)
    response = (nonce + challenge * key.sk) % group.q
    return Signature(c=challenge, s=response)


def verify(group: SchnorrGroup, pk: int, signature: Signature, *message: Any) -> bool:
    """Check a signature on the canonical encoding of ``message``."""
    if not isinstance(signature, Signature):
        return False
    if not group.is_element(pk):
        return False
    if not (0 <= signature.c < group.q and 0 <= signature.s < group.q):
        return False
    commitment = group.mul(
        group.exp(group.g, signature.s),
        group.inv(group.exp(pk, signature.c)),
    )
    expected = hash_to_int("schnorr-chal", group.q, commitment, pk, *message)
    return expected == signature.c
