"""Cryptographic substrate for the ADKG reproduction.

Everything in this package is implemented from scratch on top of the
Python standard library:

* real (non-simulated) primitives: prime fields, Schnorr groups over safe
  primes, Schnorr signatures, Chaum-Pedersen DLEQ proofs, Merkle-tree
  vector commitments, Shamir secret sharing, SCRAPE low-degree tests;
* one explicitly simulated primitive: :mod:`repro.crypto.pairing`, a
  generic-group bilinear map used by the aggregatable PVSS and threshold
  VRF (see DESIGN.md section 2 for why the substitution is behaviour
  preserving).
"""

from repro.crypto.params import GroupParams, PRESETS, get_params
from repro.crypto.field import PrimeField
from repro.crypto.group import SchnorrGroup
from repro.crypto.pairing import BilinearGroup, GroupElement
from repro.crypto.keys import PartySecret, PublicDirectory, TrustedSetup

__all__ = [
    "GroupParams",
    "PRESETS",
    "get_params",
    "PrimeField",
    "SchnorrGroup",
    "BilinearGroup",
    "GroupElement",
    "PartySecret",
    "PublicDirectory",
    "TrustedSetup",
]
