"""Canonical byte encoding of nested Python values.

Signatures, Fiat-Shamir challenges and Merkle leaves all need a stable,
injective byte representation of protocol values.  ``encode`` maps a
restricted set of Python values (ints, bytes, strings, bools, ``None``,
tuples/lists, frozensets, dataclasses and objects exposing a
``canonical()`` method) to bytes such that distinct values never collide.

The format is a simple tag-length-value scheme.  It is not meant to be a
wire format (the simulator passes objects by reference); it only feeds
hash functions.
"""

from __future__ import annotations

import dataclasses
from typing import Any

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_SEQ = b"L"
_TAG_SET = b"E"
_TAG_DATACLASS = b"D"
_TAG_CUSTOM = b"C"


def _encode_length(value: int) -> bytes:
    """Encode a non-negative length as 4 big-endian bytes."""
    if value < 0 or value >= 1 << 32:
        raise ValueError(f"length out of range: {value}")
    return value.to_bytes(4, "big")


def _encode_int(value: int) -> bytes:
    sign = b"-" if value < 0 else b"+"
    magnitude = abs(value)
    raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
    return _TAG_INT + sign + _encode_length(len(raw)) + raw


def encode(value: Any) -> bytes:
    """Canonically encode ``value`` to bytes.

    Raises ``TypeError`` for unsupported types so silent ambiguity is
    impossible.
    """
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        return _encode_int(value)
    if isinstance(value, bytes):
        return _TAG_BYTES + _encode_length(len(value)) + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return _TAG_STR + _encode_length(len(raw)) + raw
    if isinstance(value, (tuple, list)):
        parts = [encode(item) for item in value]
        body = b"".join(parts)
        return _TAG_SEQ + _encode_length(len(parts)) + body
    if isinstance(value, (set, frozenset)):
        parts = sorted(encode(item) for item in value)
        body = b"".join(parts)
        return _TAG_SET + _encode_length(len(parts)) + body
    canonical = getattr(value, "canonical", None)
    if callable(canonical):
        name = type(value).__name__.encode("utf-8")
        body = canonical()
        if not isinstance(body, bytes):
            raise TypeError(f"canonical() of {type(value)!r} must return bytes")
        return _TAG_CUSTOM + _encode_length(len(name)) + name + body
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__.encode("utf-8")
        fields = [
            getattr(value, field.name)
            for field in dataclasses.fields(value)
            if field.metadata.get("no_encode") is not True
        ]
        body = encode(tuple(fields))
        return _TAG_DATACLASS + _encode_length(len(name)) + name + body
    raise TypeError(f"cannot canonically encode value of type {type(value)!r}")
