"""KZG-style polynomial commitments over the (simulated) bilinear group.

Section 7.1 notes that the Merkle openings inside the broadcast could be
replaced by constant-size openings "at the cost of a trusted setup and
concretely high proving time".  This module implements that option: a
Kate-Zaverucha-Goldberg polynomial commitment,

* trusted setup: powers ``g^{τ^k}`` for a secret τ (here derived
  deterministically from a seed — *simulation-grade*; a deployment would
  run a ceremony and discard τ);
* commit to values ``v_0..v_{d}``: interpolate ``p`` with ``p(k) = v_k``
  and publish ``C = g^{p(τ)}`` (one word);
* open at ``i``: witness ``w = g^{q(τ)}`` for ``q = (p - p(i))/(x - i)``
  (one word);
* verify: ``e(C · g^{-v_i}, g) = e(w, g^τ · g^{-i})``.

Binding holds because a successful opening at a wrong value would factor
``x - i`` out of a polynomial that is non-zero at ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto import pool
from repro.crypto.hashing import hash_to_int
from repro.crypto.pairing import BilinearGroup, GroupElement
from repro.crypto.polynomial import (
    Polynomial,
    _divide_by_root,
    interpolate_polynomial,
)
from repro.crypto.verify_cache import VerifyCache


@dataclass(frozen=True)
class KZGOpening:
    """A constant-size opening proof: one group element."""

    witness: GroupElement

    def word_size(self) -> int:
        return 1


class KZGSetup:
    """Trusted powers-of-τ for polynomials of degree ≤ ``capacity - 1``."""

    def __init__(self, group: BilinearGroup, capacity: int, tau: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        tau %= group.order
        if tau == 0:
            tau = 1
        self.group = group
        self.capacity = capacity
        self._powers = []
        acc = 1
        for _ in range(capacity + 1):
            self._powers.append(group.exp(group.g, acc))
            acc = acc * tau % group.order
        self.tau_point = self._powers[1]  # g^τ
        #: Per-setup verification memo (openings are re-checked once per
        #: echo path, like every other proof in the broadcast layer).
        self.verify_cache = VerifyCache()
        # commit() and open_at() interpolate the same value vector; keep
        # the most recent interpolations around (bounded, see _interpolate).
        self._poly_memo: dict[tuple[int, ...], Polynomial] = {}

    @classmethod
    def from_seed(cls, group: BilinearGroup, capacity: int, *seed_parts) -> "KZGSetup":
        """Simulation-grade setup: τ from a hash (a real system runs a ceremony)."""
        tau = hash_to_int("kzg-tau", group.order, capacity, *seed_parts)
        return cls(group, capacity, tau)

    # -- commitment ----------------------------------------------------------------

    def _commit_poly(self, poly: Polynomial) -> GroupElement:
        if poly.degree > self.capacity:
            raise ValueError("polynomial exceeds setup capacity")
        return self.group.prod(
            self.group.exp(self._powers[k], coeff)
            for k, coeff in enumerate(poly.coeffs)
        )

    def commit(self, values: Sequence[int]) -> GroupElement:
        """Commit to ``values`` as evaluations at points ``0..len-1``."""
        if not values:
            raise ValueError("cannot commit to an empty vector")
        if len(values) > self.capacity:
            raise ValueError("vector exceeds setup capacity")
        poly = self._interpolate(values)
        return self._commit_poly(poly)

    def open_at(self, values: Sequence[int], index: int) -> KZGOpening:
        """Opening proof that the committed vector has ``values[index]`` at ``index``."""
        if not 0 <= index < len(values):
            raise IndexError("index out of range")
        field = self.group.scalar_field
        poly = self._interpolate(values)
        # q(x) = (p(x) - p(i)) / (x - i), by synthetic division at root i.
        shifted = list(poly.coeffs)
        shifted[0] = field.sub(shifted[0], field.element(values[index]))
        if len(shifted) == 1:
            quotient = [0]
        else:
            quotient = _divide_by_root(field.q, shifted, index)
        return KZGOpening(witness=self._commit_poly(Polynomial(field, tuple(quotient))))

    def verify(
        self,
        commitment: GroupElement,
        index: int,
        value: int,
        opening: KZGOpening,
    ) -> bool:
        """Pairing check ``e(C·g^{-v}, g) == e(w, g^{τ-i})`` (memoized)."""
        group = self.group
        if not isinstance(opening, KZGOpening):
            return False
        if not group.is_element(commitment) or not group.is_element(opening.witness):
            return False

        def check() -> bool:
            lhs = group.pair(
                group.mul(commitment, group.inv(group.exp(group.g, value))), group.g
            )
            shift = group.mul(self.tau_point, group.inv(group.exp(group.g, index)))
            rhs = group.pair(opening.witness, shift)
            return lhs == rhs

        return self.verify_cache.memoize(
            "kzg-open", (commitment, index, value, opening), check
        )

    def attach_pool(self, pool_verifier) -> None:
        """Route this setup's openings through a process pool.

        A worker cannot derive ``g^τ`` from the public directory, so it
        rides along as a fixed extra task part (see
        :meth:`~repro.crypto.verify_cache.VerifyCache.attach_pool`).
        Only valid when this setup's group is the directory's pairing
        group — the registered worker verifies in that group.
        """
        self.verify_cache.attach_pool(
            pool_verifier, contexts={"kzg-open": (self.tau_point,)}
        )

    # -- internals -------------------------------------------------------------------

    def _interpolate(self, values: Sequence[int]) -> Polynomial:
        field = self.group.scalar_field
        key = tuple(field.element(v) for v in values)
        memo = self._poly_memo
        poly = memo.get(key)
        if poly is not None:
            return poly
        if len(key) == 1:
            poly = Polynomial(field, (key[0],))
        else:
            poly = interpolate_polynomial(field, list(enumerate(key)))
        if len(memo) >= 256:  # bound the memo; vectors are per-broadcast
            memo.clear()
        memo[key] = poly
        return poly


# -- process-pool worker verifier (see repro.crypto.pool) ----------------------------
#
# Byte-level equivalent of KZGSetup.verify's memoized check: the task
# carries ``g^τ`` as its last part (the one setup ingredient a worker
# cannot rebuild from the directory), and the pairing equation
# ``e(C·g^{-v}, g) == e(w, g^{τ-i})`` is phrased as the GT claim
# ``1 == e(C·g^{-v}, g) · e(w^{-1}, g^{τ-i})`` for the aggregate path.


def _kzg_claim(directory, parts: tuple):
    commitment, index, value, opening, tau_point = parts
    group = directory.pair_group
    if not isinstance(opening, KZGOpening):
        return None
    if not isinstance(index, int) or not isinstance(value, int):
        return None
    if not group.is_element(commitment) or not group.is_element(opening.witness):
        return None
    if not group.is_element(tau_point):
        return None
    lhs_point = group.mul(commitment, group.inv(group.exp(group.g, value)))
    shift = group.mul(tau_point, group.inv(group.exp(group.g, index)))
    return (
        group.identity("GT"),
        ((lhs_point, group.g), (group.inv(opening.witness), shift)),
    )


def _pool_kzg_verify(directory, parts: tuple) -> bool:
    claim = _kzg_claim(directory, parts)
    if claim is None:
        return False
    lhs, pairs = claim
    return lhs == directory.pair_group.multi(pairs)


pool.register_worker("kzg-open", _pool_kzg_verify, aggregate=_kzg_claim)
