"""E11 — transport comparison: sim vs asyncio vs TCP loopback.

The same ADKG root factory runs over all three transports at
``n ∈ {4, 7, 10}``; we compare wall-clock time and bytes-on-wire (the
codec's byte metric — for TCP these are exactly the bytes written to the
sockets).  Words are the paper's schedule-metric and must not depend on
the transport's delivery mechanics; bytes add the systems view the paper
leaves out.

Emits ``BENCH_transport.json`` next to this file with the full grid.
"""

import json
import pathlib
import time

import pytest

from repro import run_adkg

from conftest import once, record

TRANSPORTS = ("sim", "asyncio", "tcp")
JSON_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_transport.json"

#: Loaded at import time: the committed file's wall clocks are the
#: pre-hot-path reference that bench_hotpath computes speedups against,
#: so a regeneration (new structural columns, fresh occupancy numbers)
#: must carry them forward instead of overwriting them — see
#: ``test_e11_emit_json``.
_COMMITTED_WALLS: dict[tuple[str, int], float] = (
    {
        (row["transport"], row["n"]): row["wall_clock_s"]
        for row in json.loads(JSON_PATH.read_text()).get("rows", [])
    }
    if JSON_PATH.exists()
    else {}
)

_RESULTS: dict[str, list[dict]] = {}


def _sweep(kind: str, ns: tuple[int, ...]) -> list[dict]:
    rows = []
    for n in ns:
        started = time.perf_counter()
        result = run_adkg(n=n, seed=1, transport=kind, measure_bytes=True)
        elapsed = time.perf_counter() - started
        summary = result.metrics_summary
        rows.append(
            {
                "transport": kind,
                "n": n,
                "agreed": result.agreed,
                "wall_clock_s": elapsed,
                "words_total": result.words_total,
                "messages_total": result.messages_total,
                "bytes_total": result.bytes_total,
                "bytes_per_word": result.bytes_total / max(1, result.words_total),
                "frames_total": summary["frames_total"],
                "batch_occupancy_mean": summary["batch_occupancy_mean"],
            }
        )
    return rows


@pytest.mark.benchmark(group="E11-transport")
@pytest.mark.parametrize("kind", TRANSPORTS)
def test_e11_adkg_across_transports(benchmark, kind, fast_mode):
    ns = (4, 7) if fast_mode else (4, 7, 10)
    rows = once(benchmark, lambda: _sweep(kind, ns))
    record(benchmark, rows=rows)
    _RESULTS[kind] = rows
    assert all(row["agreed"] for row in rows)
    assert all(row["bytes_total"] > 0 for row in rows)
    # A word is a constant number of values, so bytes per word must stay
    # bounded as n grows (no hidden super-linear encoding overhead).
    ratios = [row["bytes_per_word"] for row in rows]
    assert max(ratios) / min(ratios) < 2.0, ratios


@pytest.mark.benchmark(group="E11-transport")
def test_e11_emit_json(benchmark, fast_mode):
    if set(_RESULTS) != set(TRANSPORTS):
        pytest.skip("run the full transport sweep to emit BENCH_transport.json")
    grid = once(benchmark, lambda: [row for kind in TRANSPORTS for row in _RESULTS[kind]])
    payload = {
        "benchmark": "E11-transport",
        "seed": 1,
        "rows": grid,
    }
    # The committed JSON is the historical pre-hot-path reference that
    # bench_hotpath computes its speedups against; a shrunken fast-mode
    # grid must not clobber it, and a full regeneration must carry the
    # reference walls forward (this run's walls land in
    # ``wall_clock_s_current``).
    for row in grid:
        committed = _COMMITTED_WALLS.get((row["transport"], row["n"]))
        if committed is not None:
            row["wall_clock_s_current"] = row["wall_clock_s"]
            row["wall_clock_s"] = committed
    if not fast_mode:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record(benchmark, path=str(JSON_PATH), rows=grid)
    # The word metric is transport-independent: the same protocol run to
    # completion spends the same words no matter what carries it.  A hair
    # of tolerance absorbs sends metered during realtime teardown (a
    # delivery already in flight when the last honest party output).
    by_n: dict[int, set[int]] = {}
    for row in grid:
        by_n.setdefault(row["n"], set()).add(row["words_total"])
    assert by_n, "empty sweep"
    for n, words in by_n.items():
        spread = (max(words) - min(words)) / max(words)
        assert spread < 0.01, (n, sorted(words))
