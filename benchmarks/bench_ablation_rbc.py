"""E9 — ablation: the erasure-coded broadcast inside the stack (Section 7.1).

Design-choice claim: instantiating Gather/PE/NWH's broadcasts with the
Cachin-Tessaro protocol (rather than plain Bracha) is what brings the
stack from ``Ω(n⁴)`` to ``Õ(n³)``, because the broadcast payloads are
O(n)-word transcripts and index sets.

Measured: full A-DKG words with ``ct`` vs ``bracha`` broadcasts injected
throughout; the bracha/ct ratio grows with ``n``.
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_rbc_ablation

from conftest import once, record


@pytest.mark.benchmark(group="E9-ablation")
def test_e9_ct_vs_bracha_inside_adkg(benchmark, fast_mode):
    ns = (4, 7) if fast_mode else (4, 7, 10)
    rows = once(benchmark, lambda: run_rbc_ablation(ns))
    record(benchmark, rows=rows)
    ratios = []
    for n in ns:
        ct = next(r for r in rows if r["kind"] == "ct" and r["n"] == n)
        bracha = next(r for r in rows if r["kind"] == "bracha" and r["n"] == n)
        ratios.append(bracha["mean_words"] / ct["mean_words"])
    record(benchmark, ratios=ratios)
    # The ablated (bracha) stack gets relatively worse as n grows.
    assert ratios[-1] > ratios[0]


@pytest.mark.benchmark(group="E9-ablation")
def test_e9_bracha_stack_scales_worse(benchmark, fast_mode):
    ns = (4, 7) if fast_mode else (4, 7, 10, 13)
    rows = once(benchmark, lambda: run_rbc_ablation(ns))
    record(benchmark, rows=rows)
    if len(ns) < 3:
        pytest.skip("need >= 3 points for a fit")
    ct_rows = [r for r in rows if r["kind"] == "ct"]
    bracha_rows = [r for r in rows if r["kind"] == "bracha"]
    ct_fit = fit_power_law(
        [r["n"] for r in ct_rows], [r["mean_words"] for r in ct_rows]
    )
    bracha_fit = fit_power_law(
        [r["n"] for r in bracha_rows], [r["mean_words"] for r in bracha_rows]
    )
    record(benchmark, slope_ct=ct_fit.exponent, slope_bracha=bracha_fit.exponent)
    assert bracha_fit.exponent > ct_fit.exponent
