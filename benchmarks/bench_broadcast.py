"""E1 — Theorem 6: reliable broadcast word complexity.

Paper claim: the Cachin-Tessaro broadcast of an ``m``-word message costs
``O(n²·(c+p) + m·n)`` words (``c``: commitment = 1 word, ``p``: Merkle
proof = log n words), versus Bracha's ``O(n²·m)``.

Regenerated series: words vs ``m`` at fixed ``n`` (both linear, CT's
slope-in-m smaller by ~n/(f+1)); words vs ``n`` at fixed small ``m``
(CT ≈ n² log n); the CT-vs-Bracha ratio growing with ``n`` for large
messages and the crossover for small messages.
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_broadcast_experiment

from conftest import once, record


@pytest.mark.benchmark(group="E1-broadcast")
def test_e1_words_vs_message_size(benchmark):
    ns = (7,)
    ms = (16, 64, 256, 1024)
    rows = once(benchmark, lambda: run_broadcast_experiment(ns, ms))
    record(benchmark, rows=rows)
    for kind in ("ct", "bracha"):
        series = [r for r in rows if r["kind"] == kind]
        fit = fit_power_law([r["m"] for r in series], [r["words"] for r in series])
        record(benchmark, **{f"slope_m_{kind}": fit.exponent})
        # Both protocols are asymptotically linear in m.
        assert 0.5 < fit.exponent < 1.3, (kind, fit)
    # CT moves ~m·n words where Bracha moves ~m·n²: factor ≈ n/(f+1)·... > 2
    ct_big = next(r for r in rows if r["kind"] == "ct" and r["m"] == 1024)
    bracha_big = next(r for r in rows if r["kind"] == "bracha" and r["m"] == 1024)
    assert ct_big["words"] * 2 < bracha_big["words"]


@pytest.mark.benchmark(group="E1-broadcast")
def test_e1_words_vs_n_small_message(benchmark):
    ns = (4, 7, 13, 25)
    rows = once(benchmark, lambda: run_broadcast_experiment(ns, (4,), kinds=("ct",)))
    record(benchmark, rows=rows)
    fit = fit_power_law([r["n"] for r in rows], [r["words"] for r in rows])
    record(benchmark, slope_n_ct=fit.exponent, r2=fit.r_squared)
    # O(n² log n): slope a bit above 2.
    assert 1.7 < fit.exponent < 2.8, fit


@pytest.mark.benchmark(group="E1-broadcast")
def test_e1_ct_advantage_grows_with_n(benchmark):
    ns = (4, 7, 13)
    rows = once(benchmark, lambda: run_broadcast_experiment(ns, (512,)))
    record(benchmark, rows=rows)
    ratios = []
    for n in ns:
        ct = next(r for r in rows if r["kind"] == "ct" and r["n"] == n)
        bracha = next(r for r in rows if r["kind"] == "bracha" and r["n"] == n)
        ratios.append(bracha["words"] / ct["words"])
    record(benchmark, ratios=ratios)
    assert ratios[-1] > ratios[0]


@pytest.mark.benchmark(group="E1-broadcast")
def test_e1_constant_rounds(benchmark):
    ns = (4, 7, 13, 25)
    rows = once(benchmark, lambda: run_broadcast_experiment(ns, (16,), kinds=("ct",)))
    record(benchmark, rows=rows)
    rounds = [r["rounds"] for r in rows]
    # 3 message hops (VAL, ECHO, READY) regardless of n.
    assert max(rounds) <= 4.0
    assert max(rounds) - min(rounds) <= 1.0
