"""E13 — session multiplexing: epoch throughput and pipelining gains.

The session-layer PR turns the engine from "one protocol run per
process" into a session-multiplexed network that hosts many concurrent
root instances.  This benchmark drives the first service built on it —
pipelined ADKG epochs feeding the randomness beacon — and asserts the
tentpole claim *structurally*:

* **pipelining wins end-to-end**: with ``pipeline_depth=2`` the last
  epoch completes strictly earlier (in simulated time, the asynchronous
  round measure) than with ``pipeline_depth=1``, because epoch ``e+1``'s
  dealing/sharing overlaps epoch ``e``'s agreement tail;
* **work does not grow**: total words are identical at every depth — the
  pipeline reorders the schedule, it does not add messages;
* **completed epochs are reclaimed**: after the run every collected
  session holds no instance tree and no pending buffers at any party.

Emits ``BENCH_sessions.json`` next to this file with one row per
pipeline depth at n=10 (n=4 with ``REPRO_BENCH_FAST=1``), including
epochs/sec wall-clock throughput.  Wall clock is reported, not gated —
in a single CPU-bound process pipelining shifts latency, not total
crypto work; the end-to-end simulated-time gate is the deterministic,
hardware-independent form of the claim.
"""

import json
import pathlib
import time

import pytest

from repro.service import run_beacon

from conftest import once, record

SEED = 1
EPOCHS = 4
DEPTHS = (1, 2, 3)
N_FULL = 10
N_FAST = 4
JSON_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_sessions.json"

_ROWS: dict[tuple[int, int], dict] = {}


def _run_row(n: int, depth: int) -> dict:
    started = time.perf_counter()
    report = run_beacon(
        n=n,
        epochs=EPOCHS,
        pipeline_depth=depth,
        rounds_per_epoch=1,
        transport="sim",
        seed=SEED,
    )
    elapsed = time.perf_counter() - started
    return {
        "n": n,
        "epochs": EPOCHS,
        "pipeline_depth": depth,
        "verified": report.all_verified,
        "end_to_end_rounds": report.end_to_end,
        "mean_epoch_latency_rounds": report.mean_epoch_latency,
        "wall_clock_s": elapsed,
        "epochs_per_sec": EPOCHS / elapsed if elapsed > 0 else 0.0,
        "words_total": report.words_total,
        "messages_total": report.messages_total,
        "pending_counters": report.counters.get("pending", {}),
    }


def _row(n: int, depth: int) -> dict:
    key = (n, depth)
    if key not in _ROWS:
        _ROWS[key] = _run_row(n, depth)
    return _ROWS[key]


@pytest.mark.benchmark(group="E13-sessions")
def test_pipelined_epochs_beat_sequential(benchmark, fast_mode):
    """The acceptance gate: depth 2 strictly beats depth 1 end-to-end."""
    n = N_FAST if fast_mode else N_FULL
    rows = once(benchmark, lambda: [_row(n, depth) for depth in (1, 2)])
    record(benchmark, rows=rows)
    sequential, pipelined = rows
    assert sequential["verified"] and pipelined["verified"]
    assert pipelined["end_to_end_rounds"] < sequential["end_to_end_rounds"], rows
    # Scheduling overlap, not extra traffic: the word bill is identical.
    assert pipelined["words_total"] == sequential["words_total"]


@pytest.mark.benchmark(group="E13-sessions")
def test_completed_sessions_are_reclaimed(benchmark, fast_mode):
    """After the driver GCs an epoch, no party holds its protocol state."""
    from repro.crypto.keys import TrustedSetup
    from repro.net.delays import FixedDelay
    from repro.net.runtime import Simulation
    from repro.service import EpochDriver

    n = N_FAST if fast_mode else N_FULL

    def scenario():
        setup = TrustedSetup.generate(n, seed=SEED)
        sim = Simulation(setup, seed=SEED, delay_model=FixedDelay(1.0))
        driver = EpochDriver(sim, epochs=3, pipeline_depth=2)
        driver.run()
        return sim, driver

    sim, driver = once(benchmark, scenario)
    for result in driver.results:
        for party in sim.parties:
            state = party.sessions.peek(result.session)
            assert state is not None and state.collected
            assert not state.instances and not state.pending
            assert party.pending_messages(result.session) == 0
    record(benchmark, sessions=[r.session for r in driver.results])


@pytest.mark.benchmark(group="E13-sessions")
def test_emit_json(benchmark, fast_mode):
    n = N_FAST if fast_mode else N_FULL
    rows = once(benchmark, lambda: [_row(n, depth) for depth in DEPTHS])
    sequential = rows[0]
    speedups = {
        str(row["pipeline_depth"]): (
            sequential["end_to_end_rounds"] / row["end_to_end_rounds"]
        )
        for row in rows
    }
    payload = {
        "benchmark": "E13-sessions",
        "seed": SEED,
        "transport": "sim",
        "n": n,
        "epochs": EPOCHS,
        "rows": rows,
        "end_to_end_speedup_vs_depth1": speedups,
    }
    # The committed JSON records the full (n=10) grid; the CI smoke run
    # (REPRO_BENCH_FAST=1) checks the gates above at n=4 but must not
    # overwrite the committed baseline with the shrunken grid.
    if not fast_mode:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record(benchmark, path=str(JSON_PATH), speedups=speedups)
    assert all(row["verified"] for row in rows)
    assert speedups["2"] > 1.0, speedups
