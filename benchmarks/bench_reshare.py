"""E18 — dynamic membership: handoff latency and sustained-churn survival.

The membership PR's tentpole claims, asserted structurally:

* **a handoff is no slower than the key it preserves**: resharing an
  existing key to the next committee (one ``ReshareAgreement`` session:
  dealing fan-out + NWH on a bundle) completes within 2× the round
  count of the fresh ADKG that established the key — the handoff rides
  the same agreement machinery, so its critical path is the same shape;
* **the key survives sustained churn**: a rotation schedule that swaps
  one member per epoch (every spare seat cycles through the committee,
  departed parties later rejoin) runs for many epochs and the group key
  stays byte-identical from epoch 0 to the last — the acceptance
  invariant of DESIGN section 13, measured rather than unit-tested.

Emits ``BENCH_reshare.json`` next to this file: per-n fresh-ADKG vs
handoff round counts and the sustained-churn row (epochs survived,
committee turnover, wall clock).
"""

import json
import pathlib

import pytest

from repro.service import run_churn
from repro.service.membership import ChurnEvent

from conftest import once, record

SEED = 2
NS_FULL = (7, 10)
NS_FAST = (7,)
SUSTAINED_EPOCHS_FULL = 8
SUSTAINED_EPOCHS_FAST = 4
#: A handoff may cost more rounds than the ADKG it follows (the dealing
#: fan-out adds a hop) but the same-machinery claim bounds it at 2x.
HANDOFF_ROUND_FACTOR = 2.0
JSON_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_reshare.json"


def _handoff_row(n: int) -> dict:
    """Epoch 0 (fresh ADKG) vs epoch 1 (reshare handoff), same committee."""
    report = run_churn(n, epochs=2, transport="sim", seed=SEED)
    membership = report.membership
    adkg, handoff = membership.results
    return {
        "n": n,
        "f": adkg.threshold,
        "adkg_rounds": adkg.latency,
        "handoff_rounds": handoff.latency,
        "round_ratio": handoff.latency / adkg.latency,
        "key_invariant": membership.key_invariant,
        "chain_verified": report.all_verified,
        "wall_s": round(membership.wall_clock_s, 3),
    }


def _rotation_events(epochs: int) -> tuple[list[ChurnEvent], int]:
    """Swap one member per epoch; departed parties rejoin three epochs on."""
    committee = list(range(7))
    spares = [7, 8, 9]
    events = []
    for epoch in range(1, epochs):
        newcomer = spares.pop(0)
        leaver = committee.pop(0)
        events.append(ChurnEvent("join", newcomer, epoch))
        events.append(ChurnEvent("leave", leaver, epoch))
        committee.append(newcomer)
        spares.append(leaver)
    return events, len({e.value for e in events if e.kind == "join"})


def _sustained_row(epochs: int) -> dict:
    events, distinct_joiners = _rotation_events(epochs)
    report = run_churn(
        10,
        epochs=epochs,
        events=events,
        base_members=range(7),
        base_f=1,
        transport="sim",
        seed=SEED,
    )
    membership = report.membership
    return {
        "universe": 10,
        "epochs": epochs,
        "handoffs": membership.handoffs,
        "member_swaps": epochs - 1,
        "distinct_joiners": distinct_joiners,
        "key_invariant": membership.key_invariant,
        "chain_verified": report.all_verified,
        "wall_s": round(membership.wall_clock_s, 3),
    }


@pytest.mark.benchmark(group="E18-reshare")
def test_handoff_latency_vs_fresh_adkg(benchmark, fast_mode):
    ns = NS_FAST if fast_mode else NS_FULL
    rows = once(benchmark, lambda: [_handoff_row(n) for n in ns])
    record(benchmark, rows=rows)
    for row in rows:
        assert row["key_invariant"] and row["chain_verified"], row
        assert row["round_ratio"] <= HANDOFF_ROUND_FACTOR, row


@pytest.mark.benchmark(group="E18-reshare")
def test_key_survives_sustained_churn(benchmark, fast_mode):
    epochs = SUSTAINED_EPOCHS_FAST if fast_mode else SUSTAINED_EPOCHS_FULL
    row = once(benchmark, lambda: _sustained_row(epochs))
    record(benchmark, row=row)
    assert row["handoffs"] == epochs - 1, row
    assert row["key_invariant"] and row["chain_verified"], row


@pytest.mark.benchmark(group="E18-reshare")
def test_emit_json(benchmark, fast_mode):
    ns = NS_FAST if fast_mode else NS_FULL
    epochs = SUSTAINED_EPOCHS_FAST if fast_mode else SUSTAINED_EPOCHS_FULL

    def build():
        return [_handoff_row(n) for n in ns], _sustained_row(epochs)

    rows, sustained = once(benchmark, build)
    payload = {
        "benchmark": "E18-reshare",
        "seed": SEED,
        "transport": "sim",
        "handoff_round_factor": HANDOFF_ROUND_FACTOR,
        "rows": rows,
        "sustained_churn": sustained,
    }
    # The committed JSON records the full grid; the CI smoke run
    # (REPRO_BENCH_FAST=1) checks gates but must not overwrite it.
    if not fast_mode:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record(benchmark, path=str(JSON_PATH))
    assert all(row["key_invariant"] for row in rows)
    assert sustained["key_invariant"]
