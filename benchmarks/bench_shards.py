"""E17 — sharded scale-out: k DKG groups, three execution modes, one beacon.

Word complexity is O(n³) per group, so the sharding PR scales *out*: k
independent groups (``repro.service.shards``) run multiplexed on one
transport, sequentially on solo transports, or process-per-shard
(``ShardExecutor``).  This benchmark sweeps k ∈ {1,2,4,8} × group size
n ∈ {10,25} across all three modes and asserts the tentpole claims:

* **totals are k-invariant and mode-invariant** (structural,
  unconditional): group 0's run is a pure function of ``(seed, gid=0,
  n)``, so its word/byte totals are byte-identical at every k; and every
  group's totals are byte-identical across the three execution modes —
  sharding moves *where* work runs, never what parties say;
* **the parallelism is real** (structural): the modeled ideal speedup of
  process mode — the sum of per-group solo wall clocks over their max,
  i.e. what a machine with ≥k cores would realize — is ≥2 at k=4;
* **process beats sequential at k=4** (hardware-conditional): asserted
  ≥2.0× only with ≥4 cores, >1.2× with ≥2; on fewer cores the measured
  ratio is recorded, not gated — a fork pool cannot beat sequential on
  one core, and pretending otherwise would gate on scheduler noise
  (same honest-measurement policy as ``bench_hotpath``).

Emits ``BENCH_shards.json`` next to this file: one row per (k, n, mode)
with wall clock, per-group word/byte totals, per-group solo walls, the
measured process-vs-sequential ratio, the modeled ideal speedup, and the
host's core count so readers can interpret the measured numbers.
``REPRO_BENCH_FAST=1`` shrinks the grid (k ≤ 4, n=4) and never
overwrites the committed full-grid JSON.
"""

import json
import os
import pathlib

import pytest

from repro.service import run_sharded
from repro.service.shards import shutdown_shard_executor

from conftest import once, record

SEED = 1
EPOCHS = 1
ROUNDS = 2
K_FULL = (1, 2, 4, 8)
K_FAST = (1, 2, 4)
N_FULL = (10, 25)
N_FAST = (4,)
MODES = ("multiplexed", "sequential", "process")
JSON_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_shards.json"

_ROWS: dict[tuple[int, int, str], dict] = {}


def _grid(fast_mode):
    return (K_FAST if fast_mode else K_FULL), (N_FAST if fast_mode else N_FULL)


def _run_row(k: int, n: int, mode: str) -> dict:
    report = run_sharded(
        universe=k * n,
        groups=k,
        epochs=EPOCHS,
        rounds_per_epoch=ROUNDS,
        transport="sim",
        mode=mode,
        seed=SEED,
    )
    assert report.agreed and report.all_verified, (k, n, mode)
    return {
        "k": k,
        "n": n,
        "mode": mode,
        "wall_clock_s": report.wall_clock_s,
        "words_total": report.merged.words_total,
        "bytes_total": report.merged.bytes_total,
        "messages_total": report.merged.messages_total,
        "per_group_words": [
            result.metrics.words_total for result in report.group_results
        ],
        "per_group_bytes": [
            result.metrics.bytes_total for result in report.group_results
        ],
        # Solo per-group walls (0.0 in multiplexed mode, where groups
        # share one event loop and are not separable).
        "per_group_wall_s": [
            result.wall_clock_s for result in report.group_results
        ],
        "combined_rounds": len(report.combined),
        "executor_fallback": report.executor_fallback,
    }


def _row(k: int, n: int, mode: str) -> dict:
    key = (k, n, mode)
    if key not in _ROWS:
        _ROWS[key] = _run_row(k, n, mode)
    return _ROWS[key]


@pytest.fixture(scope="module", autouse=True)
def _teardown_executor():
    yield
    shutdown_shard_executor()


@pytest.mark.benchmark(group="E17-shards")
def test_totals_are_k_invariant_and_mode_invariant(benchmark, fast_mode):
    """The unconditional gate: sharding never changes what groups say."""
    ks, ns = _grid(fast_mode)
    n = ns[0]
    rows = once(
        benchmark, lambda: [_row(k, n, mode) for k in ks for mode in MODES]
    )
    record(benchmark, rows=rows)
    by_mode = {(row["k"], row["mode"]): row for row in rows}
    for k in ks:
        reference = by_mode[(k, "sequential")]
        for mode in MODES:
            row = by_mode[(k, mode)]
            # Mode-invariant: identical per-group words/bytes at every k.
            assert row["per_group_words"] == reference["per_group_words"], mode
            assert row["per_group_bytes"] == reference["per_group_bytes"], mode
            assert row["words_total"] == reference["words_total"]
        # k-invariant: group 0 is the same run at every k (same gid,
        # same seed, same n), so its totals never move.
        assert (
            reference["per_group_words"][0]
            == by_mode[(ks[0], "sequential")]["per_group_words"][0]
        ), k
        # Merged totals are exactly the per-group sum (nothing metered
        # twice across the shared transport, nothing dropped).
        assert sum(reference["per_group_words"]) == reference["words_total"]


@pytest.mark.benchmark(group="E17-shards")
def test_process_parallelism_at_k4(benchmark, fast_mode):
    """Process-per-shard at k=4: structural ideal always, wall by cores."""
    _ks, ns = _grid(fast_mode)
    n = ns[0]
    rows = once(
        benchmark, lambda: [_row(4, n, mode) for mode in MODES]
    )
    by_mode = {row["mode"]: row for row in rows}
    sequential, process = by_mode["sequential"], by_mode["process"]
    assert not process["executor_fallback"]

    # Structural: the work is separable — 4 balanced groups' solo walls
    # sum to ≥2× their max, so ≥4 cores realize ≥2× end to end.
    walls = process["per_group_wall_s"]
    modeled_ideal = sum(walls) / max(walls)
    assert modeled_ideal >= 2.0, walls

    measured = sequential["wall_clock_s"] / process["wall_clock_s"]
    cores = os.cpu_count() or 1
    record(
        benchmark,
        cores=cores,
        modeled_ideal_speedup=modeled_ideal,
        measured_process_vs_sequential=measured,
    )
    # Hardware-conditional wall-clock gate (honest-measurement policy:
    # a fork pool cannot beat sequential on a single core).
    if cores >= 4:
        assert measured >= 2.0, (measured, cores)
    elif cores >= 2:
        assert measured > 1.2, (measured, cores)


@pytest.mark.benchmark(group="E17-shards")
def test_k8_multiplexed_completes_with_all_groups_agreeing(
    benchmark, fast_mode
):
    """The scale acceptance row: eight groups on one shared transport."""
    _ks, ns = _grid(fast_mode)
    n = ns[0]
    row = once(benchmark, lambda: _row(8, n, "multiplexed"))
    record(benchmark, row=row)
    assert len(row["per_group_words"]) == 8
    assert row["combined_rounds"] == EPOCHS * ROUNDS


@pytest.mark.benchmark(group="E17-shards")
def test_emit_json(benchmark, fast_mode):
    ks, ns = _grid(fast_mode)
    if 8 not in ks:
        ks = tuple(ks) + (8,)  # the k=8 acceptance row is always recorded
    rows = once(
        benchmark,
        lambda: [
            _row(k, n, mode) for n in ns for k in ks for mode in MODES
        ],
    )
    cores = os.cpu_count() or 1
    process_vs_sequential = {}
    modeled_ideal = {}
    throughput_vs_k1 = {}
    for n in ns:
        by_key = {
            (row["k"], row["mode"]): row
            for row in rows
            if row["n"] == n
        }
        process_vs_sequential[str(n)] = {
            str(k): by_key[(k, "sequential")]["wall_clock_s"]
            / by_key[(k, "process")]["wall_clock_s"]
            for k in ks
        }
        modeled_ideal[str(n)] = {
            str(k): sum(by_key[(k, "process")]["per_group_wall_s"])
            / max(by_key[(k, "process")]["per_group_wall_s"])
            for k in ks
        }
        # Throughput vs k=1: k groups' worth of work relative to k
        # repeats of the k=1 run in the same mode (1.0 = no scaling
        # cost; > 1.0 = the mode amortizes; on ≥k cores process mode
        # approaches k).
        throughput_vs_k1[str(n)] = {
            mode: {
                str(k): (
                    k * by_key[(1, mode)]["wall_clock_s"]
                    / by_key[(k, mode)]["wall_clock_s"]
                )
                for k in ks
            }
            for mode in MODES
        }
    payload = {
        "benchmark": "E17-shards",
        "seed": SEED,
        "transport": "sim",
        "epochs": EPOCHS,
        "rounds_per_epoch": ROUNDS,
        "cores": cores,
        "group_sizes": list(ns),
        "k_grid": list(ks),
        "rows": rows,
        "process_vs_sequential_wall": process_vs_sequential,
        "modeled_ideal_speedup": modeled_ideal,
        "throughput_vs_k1": throughput_vs_k1,
    }
    # The committed JSON records the full grid; the CI smoke run
    # (REPRO_BENCH_FAST=1) checks the gates above on the shrunken grid
    # but must not overwrite the committed baseline.
    if not fast_mode:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record(benchmark, path=str(JSON_PATH), cores=cores)
    assert all(not row["executor_fallback"] for row in rows)
