"""E5 — Theorem 9: NWH terminates in O(1) expected views of constant rounds.

Paper claims: (a) the number of views is geometric with success
probability α ≥ 1/3, so the expected number of views is ≤ 3 — in
practice benign runs decide in view 1; (b) each view costs
``O(s·n³ + m·n² + p(m))`` words; (c) each view is a constant number of
rounds, so rounds-to-decision are constant in ``n``.
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_nwh_experiment

from conftest import once, record


@pytest.mark.benchmark(group="E5-nwh")
def test_e5_expected_views_constant(benchmark, fast_mode):
    seeds = range(5 if fast_mode else 20)
    rows = once(benchmark, lambda: run_nwh_experiment((4,), seeds=seeds))
    record(benchmark, rows=rows)
    row = rows[0]
    # Geometric with α ≥ 1/3 means the mean is at most 3.
    assert row["mean_views"] <= 3.0
    assert row["max_views"] <= 8


@pytest.mark.benchmark(group="E5-nwh")
def test_e5_views_do_not_grow_with_n(benchmark):
    rows = once(
        benchmark, lambda: run_nwh_experiment((4, 7, 10), seeds=(1, 2, 3))
    )
    record(benchmark, rows=rows)
    means = [row["mean_views"] for row in rows]
    assert max(means) <= 3.0


@pytest.mark.benchmark(group="E5-nwh")
def test_e5_words_per_view_scale(benchmark):
    rows = once(
        benchmark, lambda: run_nwh_experiment((4, 7, 10, 13), seeds=(1,))
    )
    record(benchmark, rows=rows)
    fit = fit_power_law(
        [row["n"] for row in rows], [row["words_per_view"] for row in rows]
    )
    record(benchmark, slope_words_per_view=fit.exponent)
    # Õ(n³) per view.
    assert 2.5 < fit.exponent < 3.9, fit


@pytest.mark.benchmark(group="E5-nwh")
def test_e5_constant_rounds_across_n(benchmark):
    rows = once(
        benchmark, lambda: run_nwh_experiment((4, 7, 10), seeds=(1, 2))
    )
    record(benchmark, rows=rows)
    means = [row["mean_rounds"] for row in rows]
    # Absolute round counts are protocol constants; they must not grow with n.
    assert max(means) / min(means) <= 1.5
