"""E2 — Theorem 7: Verifiable Gather sends ``O(n·b(m))`` words.

With the CT broadcast, ``b(m) = O(n² log n + m·n)``, so Gather is
``O(n³ log n + m·n²)``; rounds are constant (3 broadcast stages).
Regenerated series: words vs ``n`` (cubic-ish slope), words vs ``m``
(linear), constant rounds, and the common-core size ≥ n - f.
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_gather_experiment

from conftest import once, record


@pytest.mark.benchmark(group="E2-gather")
def test_e2_words_vs_n(benchmark):
    ns = (4, 7, 10, 13)
    rows = once(benchmark, lambda: run_gather_experiment(ns))
    record(benchmark, rows=rows)
    fit = fit_power_law([r["n"] for r in rows], [r["words"] for r in rows])
    record(benchmark, slope_n=fit.exponent, r2=fit.r_squared)
    # Õ(n³): slope around 3 (log factor pushes it slightly above).
    assert 2.5 < fit.exponent < 3.9, fit
    assert fit.r_squared > 0.98


@pytest.mark.benchmark(group="E2-gather")
def test_e2_words_vs_m(benchmark):
    rows = once(
        benchmark, lambda: run_gather_experiment((7,), message_words=(1, 64, 512))
    )
    record(benchmark, rows=rows)
    big, small = rows[-1], rows[0]
    growth = (big["words"] - small["words"]) / (big["m"] - small["m"])
    record(benchmark, words_per_message_word=growth)
    # Linear in m with coefficient ~n² / (f+1) ≈ O(n): far below n²·3n.
    assert growth < 7 * 7 * 3


@pytest.mark.benchmark(group="E2-gather")
def test_e2_constant_rounds_and_core(benchmark):
    ns = (4, 7, 10, 13)
    rows = once(benchmark, lambda: run_gather_experiment(ns))
    record(benchmark, rows=rows)
    rounds = [r["rounds"] for r in rows]
    assert max(rounds) - min(rounds) <= 2.0
    for row in rows:
        n = row["n"]
        assert row["core_size"] >= n - (n - 1) // 3
