"""E14 — crash–recovery: recovery latency and WAL replay throughput.

The durability PR's tentpole claim, asserted structurally:

* **recovery works mid-session**: a party crashed at an adversarially
  chosen delivery count rehydrates from ``SnapshotStore`` + WAL and the
  run still reaches agreement on one verifying transcript, at n=10 and
  n=25 and at more than one snapshot cadence (the cadence trades WAL
  length — replay work — against snapshot frequency — checkpoint work);
* **replay scales**: a 10,000-envelope WAL replays through the normal
  ``deliver()`` path within a fixed delivery-step budget (exactly one
  step per record, no duplicate sends), the structural form of "replay
  is linear" that CI can gate without wall-clock flakiness.

The chaos PR adds two robustness rows: an **attached-but-idle chaos
plane** must be free — byte-identical protocol totals always, and
under 2% wall overhead vs no plane at all (wall-gated in full mode
only, where the run is long enough to measure) — and the TCP
runtime's **reconnect latency** over repeated hard connection kills is
recorded as a min/mean/max distribution.

Emits ``BENCH_recovery.json`` next to this file: per-(n, cadence)
recovery latency in simulated rounds, WAL replay throughput in
records/sec, the 10k-replay throughput row, the chaos-idle overhead
row and the reconnect latency distribution.
"""

import asyncio
import json
import pathlib
import random
import statistics
import time
from dataclasses import dataclass
from tempfile import TemporaryDirectory

import pytest

from repro import run_adkg
from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.chaos import ChaosSpec
from repro.net.envelope import Envelope
from repro.net.party import Party
from repro.net.payload import Payload
from repro.net.protocol import Protocol
from repro.net.tcp_runtime import TCPRuntime
from repro.storage import SnapshotStore, run_crash_recovery

from conftest import once, record

SEED = 1
CADENCES = (8, 64)
NS_FULL = (10, 25)
NS_FAST = (4,)
CRASH_AFTER = 40
RECOVERY_DELAY = 5.0
REPLAY_RECORDS = 10_000
#: Step budget for the 10k replay: one delivery per WAL record, nothing
#: else — replay must not amplify the log.
REPLAY_STEP_BUDGET = REPLAY_RECORDS
JSON_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_recovery.json"

_ROWS: dict[tuple[int, int], dict] = {}


@dataclass(frozen=True)
class BenchPing(Payload):
    counter: int


codec.register(BenchPing, 9050)  # >= 9000: extension id space


class FloodSink(Protocol):
    """Counts deliveries; the minimal snapshotable state machine."""

    STATE_FIELDS = ("seen",)

    def __init__(self) -> None:
        super().__init__()
        self.seen = 0

    def on_message(self, sender, payload) -> None:
        self.seen += 1


def _recovery_row(n: int, cadence: int) -> dict:
    report = run_crash_recovery(
        transport="sim",
        n=n,
        seed=SEED,
        crash_indices=[0],
        crash_after=CRASH_AFTER,
        recovery_delay=RECOVERY_DELAY,
        cadence=cadence,
    )
    replay = report["replay"][0]
    return {
        "n": n,
        "cadence": cadence,
        "agreement": report["agreement"],
        "valid": report["valid"],
        "wal_records": replay["wal_records"],
        "suppressed_sends": replay["suppressed_sends"],
        "replay_seconds": replay["replay_seconds"],
        "replay_per_second": replay["replay_per_second"],
        "recovery_latency_rounds": report["recovery_latency"],
        "rounds": report["rounds"],
        "words_total": report["words_total"],
    }


def _row(n: int, cadence: int) -> dict:
    key = (n, cadence)
    if key not in _ROWS:
        _ROWS[key] = _recovery_row(n, cadence)
    return _ROWS[key]


def _build_party() -> Party:
    return Party(
        index=0,
        n=4,
        f=1,
        rng=random.Random("bench-recovery-0"),
        rng_label="bench-recovery-0",
    )


def _replay_10k() -> dict:
    with TemporaryDirectory(prefix="repro-bench-recovery-") as tmp:
        store = SnapshotStore(tmp)
        party = _build_party()
        party.run_root(FloodSink())
        store.save_snapshot(0, party.freeze())
        wal = store.wal(0)
        for i in range(REPLAY_RECORDS):
            wal.append(
                Envelope(
                    path=(),
                    sender=1 + (i % 3),
                    recipient=0,
                    payload=BenchPing(i),
                    depth=1,
                    session=0,
                )
            )
        wal_bytes = wal.size_bytes()
        clone = _build_party()
        started = time.perf_counter()
        blob, absorbed_seq = store.load_snapshot(0)
        clone.thaw(blob, root_factory=lambda p: FloodSink())
        records = [
            envelope
            for seq, envelope in store.wal(0).replay()
            if seq > absorbed_seq
        ]
        stats = clone.replay(records)
        elapsed = time.perf_counter() - started
        store.close()
    return {
        "records": len(records),
        "delivered": stats["delivered"],
        "suppressed": stats["suppressed"],
        "seen": clone.instance(()).seen,
        "wal_bytes": wal_bytes,
        "replay_seconds": elapsed,
        "replay_per_second": len(records) / elapsed if elapsed > 0 else 0.0,
    }


def _chaos_idle_overhead(n: int, repeats: int = 5) -> dict:
    """Best-of-``repeats`` wall clock, detached vs attached-but-idle.

    The two arms are interleaved (detached, idle, detached, ...) and the
    overhead ratio is the *median of the paired per-iteration ratios*:
    machine-load drift over the measurement window hits both halves of a
    pair equally, and the median rejects pairs where a scheduler blip
    landed inside exactly one half.  Best-of walls are reported alongside
    for context but are too jittery on a sub-second run to gate on.
    """

    def timed(chaos):
        started = time.perf_counter()
        result = run_adkg(n=n, seed=SEED, measure_bytes=True, chaos=chaos)
        return time.perf_counter() - started, result

    detached_wall = idle_wall = float("inf")
    detached = idle = None
    ratios = []
    for _ in range(repeats):
        d_wall, detached = timed(None)
        detached_wall = min(detached_wall, d_wall)
        i_wall, idle = timed(ChaosSpec())
        idle_wall = min(idle_wall, i_wall)
        ratios.append(i_wall / d_wall)
    return {
        "n": n,
        "repeats": repeats,
        "detached_seconds": detached_wall,
        "idle_attached_seconds": idle_wall,
        "overhead_ratio": statistics.median(ratios),
        "totals_identical": (
            idle.words_total,
            idle.messages_total,
            idle.bytes_total,
            idle.public_key,
        )
        == (
            detached.words_total,
            detached.messages_total,
            detached.bytes_total,
            detached.public_key,
        ),
    }


def _reconnect_latencies(kills: int = 5) -> dict:
    """Hard-kill one TCP connection ``kills`` times; time each heal."""

    async def scenario():
        setup = TrustedSetup.generate(3, seed=7)
        runtime = TCPRuntime(
            setup,
            seed=7,
            heartbeat_interval=0.02,
            reconnect_base=0.01,
            reconnect_cap=0.1,
        )
        loop = asyncio.get_running_loop()
        latencies = []
        await runtime.open()
        try:
            for _ in range(kills):
                target = runtime.reconnects + 1
                started = loop.time()
                runtime.kill_connection(0, 1)
                while runtime.reconnects < target:
                    await asyncio.sleep(0.002)
                    if loop.time() - started > 10.0:
                        raise TimeoutError("link never healed")
                latencies.append(loop.time() - started)
        finally:
            await runtime.close()
        return latencies, runtime.conn_lost, runtime.reconnects

    latencies, conn_lost, reconnects = asyncio.run(scenario())
    return {
        "kills": kills,
        "conn_lost": conn_lost,
        "reconnects": reconnects,
        "min_seconds": min(latencies),
        "mean_seconds": statistics.mean(latencies),
        "max_seconds": max(latencies),
    }


@pytest.mark.benchmark(group="E14-recovery")
def test_crash_recovery_reaches_agreement(benchmark, fast_mode):
    """The acceptance gate: every (n, cadence) cell recovers to agreement."""
    ns = NS_FAST if fast_mode else NS_FULL
    rows = once(
        benchmark,
        lambda: [_row(n, cadence) for n in ns for cadence in CADENCES],
    )
    record(benchmark, rows=rows)
    for row in rows:
        assert row["agreement"] and row["valid"], row
    # A sparser snapshot cadence must shift work into the WAL: strictly
    # more records replay at cadence 64 than at cadence 8 (the trade-off
    # the durability model documents).
    for n in ns:
        dense = next(r for r in rows if r["n"] == n and r["cadence"] == CADENCES[0])
        sparse = next(r for r in rows if r["n"] == n and r["cadence"] == CADENCES[-1])
        assert sparse["wal_records"] >= dense["wal_records"], (dense, sparse)


@pytest.mark.benchmark(group="E14-recovery")
def test_wal_replay_10k_within_step_budget(benchmark):
    """Replaying a 10k-envelope WAL costs exactly one step per record."""
    stats = once(benchmark, _replay_10k)
    record(benchmark, stats=stats)
    assert stats["records"] == REPLAY_RECORDS
    assert stats["delivered"] == REPLAY_RECORDS
    assert stats["delivered"] <= REPLAY_STEP_BUDGET
    assert stats["suppressed"] == 0  # a sink replays without re-sends
    assert stats["seen"] == REPLAY_RECORDS  # state converged exactly


@pytest.mark.benchmark(group="E14-recovery")
def test_chaos_idle_plane_is_free(benchmark, fast_mode):
    """An attached-but-idle chaos plane leaves no trace.

    Structural gate (both modes): byte-identical words/messages/bytes
    and the same group key.  Wall gate (full mode only, where the n=10
    run is long enough to measure): best-of overhead under 2%.
    """
    row = once(
        benchmark, lambda: _chaos_idle_overhead(n=4 if fast_mode else 10)
    )
    record(benchmark, row=row)
    assert row["totals_identical"], row
    if not fast_mode:
        assert row["overhead_ratio"] < 1.02, row


@pytest.mark.benchmark(group="E14-recovery")
def test_reconnect_latency_distribution(benchmark):
    """Every hard-killed TCP connection heals, and quickly at this backoff."""
    stats = once(benchmark, _reconnect_latencies)
    record(benchmark, stats=stats)
    assert stats["reconnects"] >= stats["kills"]
    assert stats["conn_lost"] >= stats["kills"]
    # base 0.01 / cap 0.1 with idle-gap detection at 0.02: a heal that
    # takes over a second means supervision or backoff is broken.
    assert stats["max_seconds"] < 1.0, stats


@pytest.mark.benchmark(group="E14-recovery")
def test_emit_json(benchmark, fast_mode):
    ns = NS_FAST if fast_mode else NS_FULL
    def build():
        return (
            [_row(n, cadence) for n in ns for cadence in CADENCES],
            _replay_10k(),
            _chaos_idle_overhead(n=4 if fast_mode else 10),
            _reconnect_latencies(),
        )

    rows, replay, chaos_idle, reconnect = once(benchmark, build)
    payload = {
        "benchmark": "E14-recovery",
        "seed": SEED,
        "transport": "sim",
        "crash_after_deliveries": CRASH_AFTER,
        "recovery_delay_rounds": RECOVERY_DELAY,
        "rows": rows,
        "wal_replay_10k": replay,
        "chaos_idle_overhead": chaos_idle,
        "reconnect_latency": reconnect,
    }
    # The committed JSON records the full (n in {10, 25}) grid; the CI
    # smoke run (REPRO_BENCH_FAST=1) checks gates at n=4 but must not
    # overwrite the committed baseline.
    if not fast_mode:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record(benchmark, path=str(JSON_PATH))
    assert all(row["agreement"] for row in rows)
