"""E7 — the headline comparison (Section 1 / Section 1.3).

Paper claim: prior leaderless A-DKG (Kokoris-Kogias et al. [29]) costs
``Ω(n⁴)`` expected words where this work costs ``Õ(n³)``; the gap grows
linearly in ``n``.

Measured against the structurally analogous baseline
(:mod:`repro.baselines.kms_adkg`): the baseline/ours word ratio grows
monotonically with ``n`` (≈ n/log n shape) and crosses 1 near n ≈ 14 —
the paper's protocol pays larger constants (PE deals n² transcripts per
view) but wins asymptotically, which is exactly the claim being tested.
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_baseline_comparison

from conftest import once, record


@pytest.mark.benchmark(group="E7-baseline")
def test_e7_word_ratio_grows_with_n(benchmark, fast_mode):
    ns = (4, 7, 10) if fast_mode else (4, 7, 10, 13, 16)
    rows = once(benchmark, lambda: run_baseline_comparison(ns))
    record(benchmark, rows=rows)
    ratios = [row["word_ratio"] for row in rows]
    record(benchmark, ratios=ratios)
    assert all(b > a for a, b in zip(ratios, ratios[1:])), ratios
    if not fast_mode:
        # Crossover: by n = 16 the baseline costs more in absolute terms.
        assert ratios[-1] > 1.0


@pytest.mark.benchmark(group="E7-baseline")
def test_e7_scaling_exponents_differ(benchmark, fast_mode):
    ns = (4, 7, 10) if fast_mode else (4, 7, 10, 13)
    rows = once(benchmark, lambda: run_baseline_comparison(ns))
    record(benchmark, rows=rows)
    ours = fit_power_law([r["n"] for r in rows], [r["ours_words"] for r in rows])
    base = fit_power_law(
        [r["n"] for r in rows], [r["baseline_words"] for r in rows]
    )
    record(benchmark, slope_ours=ours.exponent, slope_baseline=base.exponent)
    # Ω(n⁴) vs Õ(n³): the baseline's exponent is clearly larger.  (At
    # n ≤ 13 the baseline's n⁴ broadcast term is still diluted by its
    # ~n³ ABA machinery, so the measured gap sits near 0.5 and keeps
    # widening with n.)
    assert base.exponent > ours.exponent + 0.3
    assert base.exponent > 3.5
    assert ours.exponent < 3.5


@pytest.mark.benchmark(group="E7-baseline")
def test_e7_rounds_ours_constant(benchmark):
    rows = once(benchmark, lambda: run_baseline_comparison((4, 7, 10)))
    record(benchmark, rows=rows)
    ours = [row["ours_rounds"] for row in rows]
    assert max(ours) / min(ours) <= 1.5
