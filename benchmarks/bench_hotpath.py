"""E12 — hot-path amortization: wall clock + structural work counters.

The PR this benchmark rides with memoizes verification behind
content-addressed caches (``repro.crypto.verify_cache``), batches PVSS
pairing checks, encodes each broadcast payload once per fan-out and
caches Lagrange/RS tables.  None of that may change the protocol: word
counts stay byte-for-byte what BENCH_transport.json recorded.  What
*must* change is the work profile, and that is asserted structurally —
per-party PVSS verification drops from O(n·echoes) to O(distinct
transcripts) (``pvss-transcript.misses ≪ .calls``), payload encodings
drop from O(n·sends) to O(distinct payloads) (``payload.hits > 0``) —
not just by timing.

Emits ``BENCH_hotpath.json`` next to this file: one row per
``n ∈ {4, 10, 16, 25}`` on the sim transport with wall-clock seconds,
verify-call counters, encode-call counters and pairing-operation counts,
plus the speedup at the grid points BENCH_transport.json also measured.

The committed JSON doubles as the CI regression baseline:
``test_no_verify_regression`` (run by the perf-smoke job with
``REPRO_BENCH_FAST=1``) re-runs n=4 and fails if verify-call counts grew
past the recorded numbers — a re-introduced redundant verification is
caught even on hardware where timing is useless.
"""

import json
import pathlib
import time

import pytest

from repro import run_adkg

from conftest import once, record

NS_FULL = (4, 10, 16, 25)
NS_FAST = (4,)
SEED = 1
JSON_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_hotpath.json"
TRANSPORT_JSON = pathlib.Path(__file__).resolve().parent / "BENCH_transport.json"

#: Loaded at import time, *before* any test re-emits the file, so the
#: regression gate compares against the committed baseline.
_COMMITTED_BASELINE = (
    json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() else None
)

#: Keyed by ``n`` (inline plane) or ``(n, workers)`` (pool plane).
_ROWS: dict = {}

#: The pool leg's grid point: large enough that the pool genuinely runs
#: (speculation + demand dispatch), small enough for the CI smoke job.
WORKERS = 2
WORKERS_N_FULL = 10
WORKERS_N_FAST = 4


def _run_row(n: int, workers: int = 0) -> dict:
    started = time.perf_counter()
    result = run_adkg(
        n=n, seed=SEED, transport="sim", measure_bytes=True, workers=workers
    )
    elapsed = time.perf_counter() - started
    counters = result.metrics_summary["counters"]
    row = {
        "n": n,
        "agreed": result.agreed,
        "wall_clock_s": elapsed,
        "words_total": result.words_total,
        "messages_total": result.messages_total,
        "bytes_total": result.bytes_total,
        "verify": counters["verify"],
        "encode": counters["encode"],
        "pairing": counters["pairing"],
    }
    if workers:
        row["workers"] = workers
        row["pool"] = counters.get("pool", {})
    return row


def _row(n: int, workers: int = 0) -> dict:
    key = (n, workers) if workers else n
    if key not in _ROWS:
        _ROWS[key] = _run_row(n, workers=workers)
    return _ROWS[key]


def _misses(row: dict) -> dict:
    return {k: v for k, v in row["verify"].items() if k.endswith(".misses")}


def _transport_baseline_walls() -> dict[int, float]:
    """Sim wall clocks recorded by BENCH_transport.json (pre-PR reference)."""
    if not TRANSPORT_JSON.exists():
        return {}
    data = json.loads(TRANSPORT_JSON.read_text())
    return {
        row["n"]: row["wall_clock_s"]
        for row in data.get("rows", [])
        if row.get("transport") == "sim"
    }


@pytest.mark.benchmark(group="E12-hotpath")
def test_e12_hotpath_sweep(benchmark, fast_mode):
    ns = NS_FAST if fast_mode else NS_FULL
    rows = once(benchmark, lambda: [_row(n) for n in ns])
    record(benchmark, rows=rows)
    for row in rows:
        assert row["agreed"], row["n"]
        verify = row["verify"]
        # Amortization is structural: the transcript arriving once per
        # RBC echo path is verified once per *distinct* aggregate.
        calls = verify.get("pvss-transcript.calls", 0)
        misses = verify.get("pvss-transcript.misses", 0)
        assert calls > 0 and misses > 0
        assert misses <= 2 * row["n"], (row["n"], misses)
        assert verify.get("pvss-transcript.hits", 0) > misses
        # Encode-once fan-out: a multicast payload is encoded once, the
        # buffer reused for the other n-1 recipients.
        encode = row["encode"]
        assert encode.get("payload.hits", 0) > encode.get("payload.misses", 0)


@pytest.mark.benchmark(group="E12-hotpath")
def test_e12_word_metric_untouched(benchmark):
    """Amortization must not move the paper's schedule metric one word."""
    walls = _transport_baseline_walls()
    if not TRANSPORT_JSON.exists():
        pytest.skip("no BENCH_transport.json to compare against")
    data = json.loads(TRANSPORT_JSON.read_text())
    sim_words = {
        row["n"]: row["words_total"]
        for row in data["rows"]
        if row["transport"] == "sim"
    }
    shared = sorted(set(sim_words) & set(NS_FULL))
    rows = once(benchmark, lambda: [_row(n) for n in shared])
    record(benchmark, words={row["n"]: row["words_total"] for row in rows})
    for row in rows:
        assert row["words_total"] == sim_words[row["n"]], row["n"]
    assert walls, "transport benchmark recorded no sim rows"


@pytest.mark.benchmark(group="E12-hotpath")
def test_e12_emit_json(benchmark, fast_mode):
    if fast_mode:
        pytest.skip("full grid only (REPRO_BENCH_FAST unset)")
    rows = once(benchmark, lambda: [_row(n) for n in NS_FULL])
    walls = _transport_baseline_walls()
    speedups = {
        str(n): walls[n] / row["wall_clock_s"]
        for n, row in ((r["n"], r) for r in rows)
        if n in walls and row["wall_clock_s"] > 0
    }
    pooled = _row(WORKERS_N_FULL, workers=WORKERS)
    inline = _row(WORKERS_N_FULL)
    payload = {
        "benchmark": "E12-hotpath",
        "seed": SEED,
        "transport": "sim",
        "rows": rows,
        "pre_pr_sim_wall_clock_s": {str(n): walls[n] for n in sorted(walls)},
        "speedup_vs_pre_pr": speedups,
        "workers_leg": {
            "n": WORKERS_N_FULL,
            "workers": WORKERS,
            "wall_clock_s": pooled["wall_clock_s"],
            "pool": pooled["pool"],
            "pool_vs_inline_ratio": inline["wall_clock_s"] / pooled["wall_clock_s"],
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record(benchmark, path=str(JSON_PATH), speedups=speedups)
    assert all(row["agreed"] for row in rows)
    # The tentpole target: ≥3× sim wall clock at n=10, and n=25 agrees.
    if "10" in speedups:
        assert speedups["10"] >= 3.0, speedups
    assert any(row["n"] == 25 and row["agreed"] for row in rows)


@pytest.mark.benchmark(group="E12-hotpath")
def test_workers_plane_equivalence(benchmark, fast_mode):
    """CI gate for the parallel crypto plane (DESIGN §10).

    Structural, like every gate in this file: the pool may move *where*
    verification compute runs, never *what* it computes.  Asserted:

    * words / bytes / messages / agreement byte-identical to inline;
    * every ``<domain>.misses`` counter identical to inline (misses are
      counted before a speculative verdict is consumed, so "distinct
      values verified" cannot depend on how speculation raced);
    * the pool genuinely ran (tasks dispatched, speculation consumed);
    * wall clock with workers still beats the committed pre-hot-path
      baseline (speedup ≥ 1 against BENCH_transport.json) — the honest
      wall gate.  The pool-vs-inline ratio is *recorded*, not gated: with
      the simulated pairing a verification costs about as much as its
      codec round-trip, so process offload cannot beat inline here (it
      exists for real pairing backends, where verify ≫ decode); see
      DESIGN §10 for the measured analysis.
    """
    n = WORKERS_N_FAST if fast_mode else WORKERS_N_FULL

    def build():
        return _row(n), _row(n, workers=WORKERS)

    inline, pooled = once(benchmark, build)
    ratio = inline["wall_clock_s"] / max(pooled["wall_clock_s"], 1e-9)
    record(
        benchmark,
        n=n,
        workers=WORKERS,
        pool=pooled["pool"],
        pool_vs_inline_ratio=ratio,
    )
    assert pooled["agreed"] and inline["agreed"]
    assert pooled["words_total"] == inline["words_total"]
    assert pooled["bytes_total"] == inline["bytes_total"]
    assert pooled["messages_total"] == inline["messages_total"]
    assert _misses(pooled) == _misses(inline)
    assert pooled["pool"].get("tasks", 0) > 0
    assert pooled["pool"].get("broken", 0) == 0
    verify = pooled["verify"]
    assert any(k.endswith(".speculative_hits") and v > 0 for k, v in verify.items())
    walls = _transport_baseline_walls()
    if n in walls:
        assert walls[n] / pooled["wall_clock_s"] >= 1.0, (
            f"workers={WORKERS} at n={n} lost to the pre-hot-path baseline"
        )


@pytest.mark.benchmark(group="E12-hotpath")
def test_no_verify_regression(benchmark):
    """CI gate: verify-call counts at n=4 must not regress past baseline.

    Counter-based, so it is immune to CI hardware noise.  A small slack
    absorbs legitimate drift (an extra view changes message counts); a
    re-introduced per-echo verification blows straight through it.
    """
    if _COMMITTED_BASELINE is None:
        pytest.skip("no committed BENCH_hotpath.json baseline yet")
    baseline_row = next(
        (r for r in _COMMITTED_BASELINE["rows"] if r["n"] == 4), None
    )
    if baseline_row is None:
        pytest.skip("baseline has no n=4 row")
    row = once(benchmark, lambda: _row(4))
    record(benchmark, verify=row["verify"], baseline=baseline_row["verify"])
    for key in ("pvss-transcript", "pvss-contrib", "cert-vote"):
        for suffix in ("calls", "misses"):
            current = row["verify"].get(f"{key}.{suffix}", 0)
            recorded = baseline_row["verify"].get(f"{key}.{suffix}", 0)
            assert current <= recorded * 1.25 + 4, (
                f"{key}.{suffix} regressed: {current} > baseline {recorded}"
            )
