"""E14 — batched message plane at scale: frames, wire bytes, n = 100.

The batching PR's proof harness.  Sweeps the full ADKG on the simulator
at ``n ∈ {10, 25, 50, 100}`` with the coalesced message plane and at
``n ∈ {10, 25}`` with the per-envelope reference plane
(``batching=False``), plus ``n ∈ {10, 25, 50}`` over real TCP sockets
and the parallel crypto plane (``workers=4``, DESIGN §10) at
``n ∈ {10, 25, 50, 100}``, and emits ``BENCH_scale.json`` with wall
clock, message/frame counts, batch occupancy and wire bytes.

What is asserted is structural, in line with the repo's benchmark
policy (shapes, not absolute timings):

* the batched and unbatched planes agree on every *protocol* quantity —
  words, messages, bytes, transcript agreement — at every shared n;
* coalescing actually happens: frames_saved > 0 and mean occupancy > 1
  on every batched row (this is the CI perf-smoke gate, together with
  the n = 50 sim run completing inside the default step budget);
* the n = 100 sim run (≈ 9 M messages) completes with agreement — the
  ROADMAP's large-n target, which the per-envelope plane's overhead put
  out of reach;
* batched wall clock beats the unbatched plane at n = 25.

Wall-clock ratios are *recorded* for the full grid:
``speedup_vs_unbatched`` (same-process head-to-head) and
``speedup_vs_committed_hotpath`` (against the wall clocks committed in
``BENCH_hotpath.json``, i.e. the pre-batching plane, possibly on
different hardware).  Measured on the development machine the
head-to-head lands between 1.2× and 1.7× at n = 25 depending on machine
state (single-shot rows are noisy): the per-envelope overhead batching
removes (metering encodes, heap entries, stop scans) is real but the
remaining time is protocol crypto + handler work, which this PR attacks
separately with identity-first verification memos and the per-root
decode cache (those improve *both* planes, so they raise absolute
speed without inflating the plane-vs-plane ratio).
"""

import json
import pathlib
import time

import pytest

from repro import run_adkg

from conftest import once, record

SEED = 1
NS_SIM_BATCHED_FULL = (10, 25, 50, 100)
NS_SIM_BATCHED_FAST = (10, 50)
NS_SIM_UNBATCHED_FULL = (10, 25)
NS_SIM_UNBATCHED_FAST = (10,)
NS_TCP_FULL = (10, 25, 50)
#: Parallel-crypto-plane legs (DESIGN §10): the ISSUE's target grid
#: point is n = 100 with ≥ 4 workers.
WORKERS = 4
NS_SIM_WORKERS_FULL = (10, 25, 50, 100)
NS_SIM_WORKERS_FAST = (10,)
JSON_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_scale.json"
HOTPATH_JSON = pathlib.Path(__file__).resolve().parent / "BENCH_hotpath.json"

_ROWS: dict[tuple, dict] = {}


def _fresh_process_state() -> None:
    """Clear process-wide content memos so rows are order-independent."""
    from repro.broadcast import wire
    from repro.net import codec, metrics

    wire._decode_memo.clear()
    codec._path_memo.clear()
    metrics._path_layers_memo.clear()


def _run_row(n: int, transport: str, batching: bool, workers: int = 0) -> dict:
    _fresh_process_state()
    # n=100 sends ~9M messages — past the simulator's default
    # 5M-delivery guard; the raised budget is reported with the row.
    max_steps = 50_000_000 if (transport == "sim" and n > 50) else None
    started = time.perf_counter()
    result = run_adkg(
        n=n,
        seed=SEED,
        transport=transport,
        measure_bytes=True,
        batching=batching,
        timeout=600.0,
        max_steps=max_steps,
        workers=workers,
    )
    elapsed = time.perf_counter() - started
    summary = result.metrics_summary
    return {
        "n": n,
        "transport": transport,
        "batching": batching,
        "workers": workers,
        "pool": summary["counters"].get("pool", {}),
        "agreed": result.agreed,
        "wall_clock_s": elapsed,
        "words_total": result.words_total,
        "messages_total": result.messages_total,
        "bytes_total": result.bytes_total,
        "frames_total": summary["frames_total"],
        "frames_saved": summary["frames_saved"],
        "batch_occupancy_mean": summary["batch_occupancy_mean"],
        "batch_occupancy_max": summary["batch_occupancy_max"],
        "wire_bytes_total": summary["wire_bytes_total"],
        "wire_bytes_saved": summary["wire_bytes_saved"],
        "rounds": result.rounds,
    }


def _row(
    n: int, transport: str = "sim", batching: bool = True, workers: int = 0
) -> dict:
    key = (n, transport, batching, workers)
    if key not in _ROWS:
        _ROWS[key] = _run_row(n, transport, batching, workers)
    return _ROWS[key]


def _committed_hotpath_walls() -> dict[int, float]:
    """Pre-batching sim wall clocks committed by the hot-path benchmark."""
    if not HOTPATH_JSON.exists():
        return {}
    data = json.loads(HOTPATH_JSON.read_text())
    return {row["n"]: row["wall_clock_s"] for row in data.get("rows", [])}


@pytest.mark.benchmark(group="E14-scale")
def test_e14_batched_sim_sweep(benchmark, fast_mode):
    """CI gate: coalescing happens and n = 50 completes in the budget.

    The n = 50 row delivering agreement *is* the step-budget gate: the
    run uses the simulator's default 5M-delivery cap, and the ~1.1M
    messages of n = 50 fit it with wide margin only because bulk
    delivery keeps the engine linear in deliveries.
    """
    ns = NS_SIM_BATCHED_FAST if fast_mode else NS_SIM_BATCHED_FULL
    rows = once(benchmark, lambda: [_row(n) for n in ns])
    record(benchmark, rows=rows)
    for row in rows:
        assert row["agreed"], row["n"]
        assert row["frames_saved"] > 0, row
        assert row["batch_occupancy_mean"] > 1.0, row
        assert row["wire_bytes_saved"] > 0, row
    assert any(row["n"] == 50 for row in rows) or fast_mode is False


@pytest.mark.benchmark(group="E14-scale")
def test_e14_protocol_totals_batching_invariant(benchmark, fast_mode):
    """Words/bytes/messages are byte-identical with batching on or off."""
    ns = NS_SIM_UNBATCHED_FAST if fast_mode else NS_SIM_UNBATCHED_FULL

    def pairs():
        return [(_row(n), _row(n, batching=False)) for n in ns]

    for batched, unbatched in once(benchmark, pairs):
        assert batched["words_total"] == unbatched["words_total"]
        assert batched["bytes_total"] == unbatched["bytes_total"]
        assert batched["messages_total"] == unbatched["messages_total"]
        assert batched["rounds"] == unbatched["rounds"]
        assert unbatched["frames_total"] == 0


@pytest.mark.benchmark(group="E14-scale")
def test_e14_workers_plane(benchmark, fast_mode):
    """Parallel crypto plane at scale: byte-identical protocol totals.

    The gated quantities are structural (the repo's benchmark policy):
    every workers row must agree, match the inline row's words / bytes /
    messages exactly, and show the pool genuinely dispatching.  Wall
    clock is recorded, not gated — with the simulated pairing, one
    verification costs about as much as its codec round-trip, so the
    measured pool-vs-inline ratio sits *below* 1 at every n (see the
    emitted ``speedup_pool_vs_inline`` and DESIGN §10); the plane's win
    condition is real pairing backends where verify ≫ decode.
    """
    ns = NS_SIM_WORKERS_FAST if fast_mode else NS_SIM_WORKERS_FULL

    def pairs():
        return [(_row(n), _row(n, workers=WORKERS)) for n in ns]

    for inline, pooled in once(benchmark, pairs):
        assert pooled["agreed"], pooled["n"]
        assert pooled["words_total"] == inline["words_total"]
        assert pooled["bytes_total"] == inline["bytes_total"]
        assert pooled["messages_total"] == inline["messages_total"]
        assert pooled["rounds"] == inline["rounds"]
        assert pooled["pool"].get("tasks", 0) > 0, pooled["n"]
        assert pooled["pool"].get("broken", 0) == 0, pooled["n"]


@pytest.mark.benchmark(group="E14-scale")
def test_e14_tcp_scale(benchmark, fast_mode):
    """Batched TCP at n ∈ {10, 25}: real coalesced frames, real savings."""
    if fast_mode:
        pytest.skip("full grid only (REPRO_BENCH_FAST unset)")
    rows = once(benchmark, lambda: [_row(n, transport="tcp") for n in NS_TCP_FULL])
    record(benchmark, rows=rows)
    for row in rows:
        assert row["agreed"], row["n"]
        assert row["frames_saved"] > 0
        # Realtime burst sizes vary run to run; the wire total is
        # bounded by the protocol total but the strict-savings claim is
        # asserted on the deterministic sim rows.
        assert 0 < row["wire_bytes_total"] <= row["bytes_total"]


@pytest.mark.benchmark(group="E14-scale")
def test_e14_emit_json(benchmark, fast_mode):
    if fast_mode:
        pytest.skip("full grid only (REPRO_BENCH_FAST unset)")

    def build():
        sim_batched = [_row(n) for n in NS_SIM_BATCHED_FULL]
        sim_unbatched = [_row(n, batching=False) for n in NS_SIM_UNBATCHED_FULL]
        tcp = [_row(n, transport="tcp") for n in NS_TCP_FULL]
        sim_workers = [_row(n, workers=WORKERS) for n in NS_SIM_WORKERS_FULL]
        return sim_batched, sim_unbatched, tcp, sim_workers

    sim_batched, sim_unbatched, tcp, sim_workers = once(benchmark, build)
    committed = _committed_hotpath_walls()
    batched_by_n = {row["n"]: row for row in sim_batched}
    speedup_pool_vs_inline = {
        str(row["n"]): batched_by_n[row["n"]]["wall_clock_s"] / row["wall_clock_s"]
        for row in sim_workers
        if batched_by_n.get(row["n"], {}).get("wall_clock_s") and row["wall_clock_s"] > 0
    }
    speedup_vs_unbatched = {
        str(row["n"]): row["wall_clock_s"] / batched_by_n[row["n"]]["wall_clock_s"]
        for row in sim_unbatched
        if batched_by_n.get(row["n"], {}).get("wall_clock_s")
    }
    speedup_vs_committed = {
        str(n): committed[n] / batched_by_n[n]["wall_clock_s"]
        for n in batched_by_n
        if n in committed and batched_by_n[n]["wall_clock_s"] > 0
    }
    payload = {
        "benchmark": "E14-scale",
        "seed": SEED,
        "rows": sim_batched + sim_unbatched + tcp + sim_workers,
        "speedup_vs_unbatched": speedup_vs_unbatched,
        "speedup_vs_committed_hotpath": speedup_vs_committed,
        "speedup_pool_vs_inline": speedup_pool_vs_inline,
        "notes": (
            "speedup_vs_unbatched is a same-process head-to-head against "
            "batching=False at HEAD; speedup_vs_committed_hotpath compares "
            "against the wall clocks committed in BENCH_hotpath.json (the "
            "pre-batching plane, possibly different hardware).  Protocol "
            "word/byte totals are byte-identical across planes; the "
            "structural wins (frames_saved, occupancy, wire_bytes_saved, "
            "n=100 completing) are the gated quantities.  "
            "speedup_pool_vs_inline is the workers=4 plane against the "
            "inline plane at HEAD: below 1 at every n on this simulated-"
            "pairing build, where one verification costs about as much as "
            "its codec round-trip (DESIGN §10 has the measured analysis); "
            "the workers rows are gated on byte-identical protocol totals "
            "and genuine pool dispatch, not on wall clock."
        ),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record(
        benchmark,
        path=str(JSON_PATH),
        speedup_vs_unbatched=speedup_vs_unbatched,
        speedup_vs_committed=speedup_vs_committed,
        speedup_pool_vs_inline=speedup_pool_vs_inline,
    )
    # The scale targets: n=100 completes with agreement, and the batched
    # plane strictly beats the per-envelope plane at n=25.
    n100 = batched_by_n.get(100)
    assert n100 is not None and n100["agreed"]
    assert n100["messages_total"] > 5_000_000
    assert speedup_vs_unbatched.get("25", 0.0) > 1.0
