"""E4 — Theorem 3: PE is α-binding with α ≥ 1/3.

Paper claim: with probability at least 1/3 (in fact ``1/3 + 1/n`` before
collision slack), the write-once binding value is set to the input of a
party that was nonfaulty when it started PE — in which case all parties
output that common value and nothing else verifies.

Measured: the fraction of seeded runs in which all honest parties output
one common value that was an honest input, under (a) benign scheduling,
(b) f silent parties, (c) adversarial lag scheduling.  The adversary in
the paper's bound is stronger than any we can enact, so measured rates
sit well above 1/3 — the assertion is the bound itself.
"""

import pytest

from repro.analysis.experiments import run_pe_quality_experiment
from repro.net.adversary import RandomLagScheduler, SilentBehavior, TargetedLagScheduler

from conftest import once, record


@pytest.mark.benchmark(group="E4-pe-quality")
def test_e4_binding_rate_benign(benchmark, fast_mode):
    seeds = range(10 if fast_mode else 40)
    result = once(benchmark, lambda: run_pe_quality_experiment(4, seeds))
    record(benchmark, **result)
    assert result["termination_rate"] == 1.0
    assert result["binding_rate"] >= 1 / 3


@pytest.mark.benchmark(group="E4-pe-quality")
def test_e4_binding_rate_with_silent_faults(benchmark, fast_mode):
    seeds = range(8 if fast_mode else 25)
    result = once(
        benchmark,
        lambda: run_pe_quality_experiment(
            4, seeds, behaviors_factory=lambda seed: {3: SilentBehavior()}
        ),
    )
    record(benchmark, **result)
    assert result["termination_rate"] == 1.0
    assert result["binding_rate"] >= 1 / 3


@pytest.mark.benchmark(group="E4-pe-quality")
def test_e4_binding_rate_adversarial_scheduling(benchmark, fast_mode):
    seeds = range(8 if fast_mode else 25)

    def scheduler_factory(seed):
        if seed % 2 == 0:
            return RandomLagScheduler(factor=25.0, rate=0.4)
        return TargetedLagScheduler(targets={seed % 4}, factor=15.0, horizon=60.0)

    result = once(
        benchmark,
        lambda: run_pe_quality_experiment(
            4, seeds, scheduler_factory=scheduler_factory
        ),
    )
    record(benchmark, **result)
    assert result["termination_rate"] == 1.0
    assert result["binding_rate"] >= 1 / 3


@pytest.mark.benchmark(group="E4-pe-quality")
def test_e4_binding_rate_larger_system(benchmark, fast_mode):
    seeds = range(6 if fast_mode else 15)
    result = once(
        benchmark,
        lambda: run_pe_quality_experiment(
            7,
            seeds,
            behaviors_factory=lambda seed: {
                5: SilentBehavior(),
                6: SilentBehavior(),
            },
        ),
    )
    record(benchmark, **result)
    assert result["termination_rate"] == 1.0
    assert result["binding_rate"] >= 1 / 3
