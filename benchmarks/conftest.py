"""Shared helpers for the benchmark harness.

Every benchmark runs full (seeded, deterministic) protocol simulations,
so wall-clock timing is taken over a single run (``once``); the
scientifically relevant outputs — word counts, rounds, views, rates —
are attached to ``benchmark.extra_info`` and asserted as *shapes*
(scaling exponents, ratios, monotonicity), never absolute numbers.
"""

from __future__ import annotations

import json
import os

import pytest


def once(benchmark, fn):
    """Time exactly one execution of ``fn`` and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def record(benchmark, **info):
    """Attach JSON-serializable measurement data to the benchmark."""
    for key, value in info.items():
        benchmark.extra_info[key] = _jsonable(value)


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


@pytest.fixture(scope="session")
def fast_mode():
    """Set REPRO_BENCH_FAST=1 to shrink sweeps (CI smoke runs)."""
    return os.environ.get("REPRO_BENCH_FAST", "0") == "1"
