"""E3 — Theorem 8: Proposal Election word complexity.

Paper claim: ``O(n³·es + n²·ds + g(m+d) + b(n)) = O(λ n³ log n + m n²)``
words — the constituent terms being n³ evaluation shares, n² DKG share
transfers, one Gather over (proposal, transcript) pairs and one index-set
broadcast per party.  Regenerated: total words vs ``n`` with the
per-component breakdown, and constant rounds.
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_pe_experiment

from conftest import once, record


@pytest.mark.benchmark(group="E3-pe")
def test_e3_words_vs_n(benchmark):
    ns = (4, 7, 10, 13)
    rows = once(benchmark, lambda: run_pe_experiment(ns))
    record(benchmark, rows=rows)
    fit = fit_power_law([r["n"] for r in rows], [r["words"] for r in rows])
    record(benchmark, slope_n=fit.exponent, r2=fit.r_squared)
    assert 2.5 < fit.exponent < 3.9, fit


@pytest.mark.benchmark(group="E3-pe")
def test_e3_component_breakdown(benchmark):
    rows = once(benchmark, lambda: run_pe_experiment((7, 10)))
    record(benchmark, rows=rows)
    for row in rows:
        # Gather dominates (n³ log n term); all components are present.
        assert row["gather_words"] > 0
        assert row["dkg_words"] > 0
        assert row["eval_words"] > 0
        assert row["idx_words"] > 0
        total = row["words"]
        parts = (
            row["gather_words"]
            + row["dkg_words"]
            + row["eval_words"]
            + row["idx_words"]
        )
        assert parts <= total * 1.01
        assert parts >= total * 0.7  # breakdown covers the bulk


@pytest.mark.benchmark(group="E3-pe")
def test_e3_dkg_share_term_is_quadratic_in_n_times_n(benchmark):
    """The round-1 term is n² transcripts of O(n) words = O(n³)."""
    rows = once(benchmark, lambda: run_pe_experiment((4, 7, 10, 13)))
    record(benchmark, rows=rows)
    fit = fit_power_law([r["n"] for r in rows], [r["dkg_words"] for r in rows])
    record(benchmark, slope_dkg=fit.exponent)
    assert 2.4 < fit.exponent < 3.4, fit


@pytest.mark.benchmark(group="E3-pe")
def test_e3_constant_rounds(benchmark):
    rows = once(benchmark, lambda: run_pe_experiment((4, 7, 10)))
    record(benchmark, rows=rows)
    rounds = [r["rounds"] for r in rows]
    assert max(rounds) - min(rounds) <= 2.0
