"""E10 — ablation: Merkle vs constant-size (KZG) openings (Section 7.1).

Paper remark: "Theoretically it is possible to reduce the opening proof
size down to O(1) using SNARKs, but this comes at the cost of a trusted
setup and concretely high proving time."

Measured: the CT broadcast's ``O(n²·(c+p))`` term with ``p = log n``
words (Merkle) vs ``p = 1`` word (KZG): the KZG variant saves a growing
fraction of the per-broadcast words as ``n`` (and hence log n) grows —
while requiring the trusted setup the paper warns about.
"""

import pytest

from repro.analysis.experiments import run_vc_ablation

from conftest import once, record


@pytest.mark.benchmark(group="E10-vc-ablation")
def test_e10_kzg_openings_save_words(benchmark, fast_mode):
    ns = (4, 7, 13) if fast_mode else (4, 7, 13, 25)
    rows = once(benchmark, lambda: run_vc_ablation(ns))
    record(benchmark, rows=rows)
    savings = []
    for n in ns:
        merkle = next(r for r in rows if r["kind"] == "ct" and r["n"] == n)
        kzg = next(r for r in rows if r["kind"] == "ct-kzg" and r["n"] == n)
        savings.append((merkle["words"] - kzg["words"]) / merkle["words"])
    record(benchmark, savings=savings)
    # Constant openings always save words, and the saving grows with n
    # (log n vs 1 in the n² term).
    assert all(s > 0 for s in savings[1:]), savings
    assert savings[-1] > savings[1]


@pytest.mark.benchmark(group="E10-vc-ablation")
def test_e10_rounds_unchanged(benchmark):
    rows = once(benchmark, lambda: run_vc_ablation((4, 13)))
    record(benchmark, rows=rows)
    assert {row["rounds"] for row in rows} == {3.0}
