"""E8 — safety/liveness of the full A-DKG under the fault matrix.

Paper claims (Theorems 1, 3, 4, 5): agreement, external validity and
almost-sure termination hold for any f < n/3 Byzantine parties and any
asynchronous schedule.  The matrix exercises crash, silence, message
dropping, invalid PVSS shares and adversarial lag scheduling.
"""

import pytest

from repro.analysis.experiments import run_fault_matrix

from conftest import once, record


@pytest.mark.benchmark(group="E8-faults")
def test_e8_fault_matrix_n4(benchmark):
    rows = once(benchmark, lambda: run_fault_matrix(n=4, seed=1))
    record(benchmark, rows=rows)
    for row in rows:
        assert row["agreement"], row
        assert row["valid"], row
        expected_honest = 4 if row["fault"].startswith("lag") or row["fault"] == "none" else 3
        assert row["honest_outputs"] == expected_honest, row


@pytest.mark.benchmark(group="E8-faults")
def test_e8_fault_matrix_n7(benchmark, fast_mode):
    if fast_mode:
        pytest.skip("fast mode")
    rows = once(benchmark, lambda: run_fault_matrix(n=7, seed=2))
    record(benchmark, rows=rows)
    for row in rows:
        assert row["agreement"], row
        assert row["valid"], row
