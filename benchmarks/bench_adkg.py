"""E6 — Theorem 10: the full A-DKG sends Õ(n³) expected words in O(1) rounds.

Paper claim: ``O(n²·Ds + v(D)) = O(λ n³ log n)`` expected words (``Ds``,
``D`` = O(n)-word PVSS shares/transcripts) and constant expected rounds.
Regenerated: total words vs ``n`` (slope ≈ 3), constant rounds across
``n``, ≈1 expected views, agreement rate 1.0, and the per-layer word
breakdown (share exchange vs NWH).
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_adkg_experiment

from conftest import once, record


@pytest.mark.benchmark(group="E6-adkg")
def test_e6_words_vs_n(benchmark):
    ns = (4, 7, 10, 13)
    rows = once(benchmark, lambda: run_adkg_experiment(ns))
    record(benchmark, rows=rows)
    fit = fit_power_law([r["n"] for r in rows], [r["mean_words"] for r in rows])
    record(benchmark, slope_n=fit.exponent, r2=fit.r_squared)
    # Õ(n³): clearly below the baseline's 4, around 3 (+ log slack).
    assert 2.5 < fit.exponent < 3.9, fit
    assert fit.r_squared > 0.98


@pytest.mark.benchmark(group="E6-adkg")
def test_e6_agreement_always(benchmark, fast_mode):
    seeds = range(3 if fast_mode else 8)
    rows = once(benchmark, lambda: run_adkg_experiment((4,), seeds=seeds))
    record(benchmark, rows=rows)
    assert rows[0]["agreement_rate"] == 1.0


@pytest.mark.benchmark(group="E6-adkg")
def test_e6_constant_rounds(benchmark):
    rows = once(benchmark, lambda: run_adkg_experiment((4, 7, 10, 13)))
    record(benchmark, rows=rows)
    rounds = [row["mean_rounds"] for row in rows]
    assert max(rounds) / min(rounds) <= 1.5
    record(benchmark, rounds=rounds)


@pytest.mark.benchmark(group="E6-adkg")
def test_e6_expected_views_near_one(benchmark, fast_mode):
    seeds = range(3 if fast_mode else 6)
    rows = once(benchmark, lambda: run_adkg_experiment((4, 7), seeds=seeds))
    record(benchmark, rows=rows)
    for row in rows:
        assert row["mean_views"] <= 2.0
