"""Self-healing TCP: supervision, reconnect with backoff, heartbeats.

The gates the chaos PR promises: a run whose connections are hard-killed
mid-ADKG still reaches agreement (with ``tcp.conn_lost``/
``tcp.reconnects`` proving the healing path actually ran), a partition
of f parties that heals still reaches agreement, heartbeats flow on idle
links without ever being rejected or metered as protocol traffic, and a
killed-and-healed connection never double-counts ``rejected_frames`` or
inflates the protocol's word/byte totals (resent frames are wire
traffic, not protocol traffic).
"""

import asyncio

import pytest

from repro import run_adkg
from repro.core.adkg import ADKG
from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.tcp_runtime import TCPRuntime

from tests.net.helpers import EchoAll


def _agreeing(results, n):
    values = list(results.values())
    return len(values) == n and all(v == values[0] for v in values)


# -- parameter validation --------------------------------------------------------------


def test_healing_parameters_validated():
    setup = TrustedSetup.generate(4, seed=1)
    with pytest.raises(ValueError):
        TCPRuntime(setup, seed=1, heartbeat_interval=0.0)
    with pytest.raises(ValueError):
        TCPRuntime(setup, seed=1, reconnect_base=0.0)
    with pytest.raises(ValueError):
        TCPRuntime(setup, seed=1, reconnect_base=2.0, reconnect_cap=1.0)


def test_heartbeat_frame_shape():
    frame = codec.encode_heartbeat()
    assert codec.is_heartbeat(frame)
    assert not codec.is_heartbeat(b"")
    assert not codec.is_heartbeat(frame + b"\x00")
    # Heartbeats live outside the codec's tag space: a real batch body
    # never starts with the heartbeat magic.
    assert frame[0] != codec.BATCH_MAGIC


# -- heartbeats ------------------------------------------------------------------------


def test_idle_links_heartbeat_without_rejections():
    async def scenario():
        setup = TrustedSetup.generate(3, seed=2)
        runtime = TCPRuntime(setup, seed=2, heartbeat_interval=0.05)
        await runtime.open()
        try:
            await asyncio.sleep(0.35)
        finally:
            await runtime.close()
        return runtime

    runtime = asyncio.run(scenario())
    assert runtime.heartbeats_sent > 0
    assert runtime.heartbeats_seen > 0
    assert runtime.rejected_frames == 0
    # Liveness traffic is never protocol traffic.
    assert runtime.metrics.words_total == 0
    assert runtime.metrics.messages_total == 0
    counters = runtime.metrics.counters("tcp")
    assert counters["heartbeats"] == runtime.heartbeats_sent


# -- the self-healing gate (hard kill mid-ADKG) ----------------------------------------


def test_adkg_survives_hard_killed_connections():
    """Kill three sockets mid-run: supervision + reconnect must heal them."""

    async def scenario():
        setup = TrustedSetup.generate(4, seed=1)
        runtime = TCPRuntime(
            setup, seed=1, reconnect_base=0.02, reconnect_cap=0.2
        )
        count = 0

        def killer(envelope):
            nonlocal count
            count += 1
            if count == 40:  # mid-protocol: well after open, before done
                for pair in ((0, 1), (1, 0), (2, 3)):
                    runtime.kill_connection(*pair)

        runtime.add_delivery_observer(killer)
        results = await runtime.run(
            lambda party: ADKG(broadcast_kind="ct"), timeout=60
        )
        return runtime, results

    runtime, results = asyncio.run(scenario())
    assert _agreeing(results, 4)
    assert runtime.conn_lost >= 1
    assert runtime.reconnects >= 1
    assert runtime.rejected_frames == 0
    counters = runtime.metrics.counters("tcp")
    assert counters["conn_lost"] == runtime.conn_lost
    assert counters["reconnects"] == runtime.reconnects


def test_adkg_survives_partition_of_f_parties_then_heal():
    """Partition f=1 party away for the opening window, then heal (chaos)."""
    result = run_adkg(
        n=4, seed=1, transport="tcp", chaos="partition:0|1,2,3@0-0.8",
        timeout=60,
    )
    assert result.agreed
    counts = result.metrics_summary["counters"]["chaos"]
    assert counts["partitioned"] > 0


def test_kill_connection_validates_pair():
    async def scenario():
        setup = TrustedSetup.generate(3, seed=4)
        runtime = TCPRuntime(setup, seed=4)
        await runtime.open()
        try:
            with pytest.raises(ValueError):
                runtime.kill_connection(0, 0)  # self pairs have no link
        finally:
            await runtime.close()

    asyncio.run(scenario())


# -- accounting: resends are wire traffic, not protocol traffic -----------------------


def test_healed_connections_do_not_inflate_protocol_totals():
    """EchoAll totals are schedule-independent: a killed-and-healed run
    must report exactly the clean run's words/messages/bytes, with zero
    rejected frames — frames re-sent by the healing path are metered
    once (at enqueue), never twice."""

    async def scenario(kill):
        setup = TrustedSetup.generate(4, seed=3)
        runtime = TCPRuntime(
            setup, seed=3, reconnect_base=0.02, reconnect_cap=0.2
        )
        if kill:
            count = 0

            def killer(envelope):
                nonlocal count
                count += 1
                if count == 2:  # first network deliveries are in flight
                    for recipient in (1, 2, 3):
                        runtime.kill_connection(0, recipient)

            runtime.add_delivery_observer(killer)
        results = await runtime.run(lambda party: EchoAll(), timeout=30)
        return runtime, results

    clean_rt, clean = asyncio.run(scenario(kill=False))
    healed_rt, healed = asyncio.run(scenario(kill=True))
    assert _agreeing(clean, 4) and _agreeing(healed, 4)
    assert healed_rt.conn_lost >= 1
    # Protocol accounting is identical: same words, messages and
    # per-envelope bytes — connection churn is invisible to the
    # protocol-level meters.
    assert healed_rt.metrics.words_total == clean_rt.metrics.words_total
    assert (
        healed_rt.metrics.messages_total == clean_rt.metrics.messages_total
    )
    assert healed_rt.metrics.bytes_total == clean_rt.metrics.bytes_total
    # ...and the healing path never produced garbage frames.
    assert healed_rt.rejected_frames == 0
    assert clean_rt.rejected_frames == 0


def test_tcp_chaos_duplicates_are_tolerated():
    """At-least-once delivery (what reconnect re-injection implies) is
    exercised explicitly: a duplicating link still reaches agreement."""
    result = run_adkg(
        n=4, seed=2, transport="tcp", chaos="dup:0.1", timeout=60
    )
    assert result.agreed
    assert result.metrics_summary["counters"]["chaos"]["duplicated"] > 0
