"""Condition registry and Completion semantics."""

import pytest

from repro.net.conditions import Completion, ConditionRegistry


def test_condition_fires_once_when_satisfied():
    registry = ConditionRegistry()
    state = {"x": 0, "fired": 0}
    registry.add(lambda: state["x"] >= 2, lambda: state.__setitem__("fired", state["fired"] + 1))
    registry.run_to_fixpoint()
    assert state["fired"] == 0
    state["x"] = 2
    registry.run_to_fixpoint()
    registry.run_to_fixpoint()
    assert state["fired"] == 1


def test_recurring_condition():
    registry = ConditionRegistry()
    log = []
    state = {"x": 0}

    def act():
        log.append(state["x"])
        state["x"] = 0

    registry.add(lambda: state["x"] > 0, act, once=False)
    state["x"] = 1
    registry.run_to_fixpoint()
    state["x"] = 2
    registry.run_to_fixpoint()
    assert log == [1, 2]


def test_cascading_conditions_reach_fixpoint():
    registry = ConditionRegistry()
    state = {"a": False, "b": False, "c": False}
    registry.add(lambda: state["b"], lambda: state.__setitem__("c", True))
    registry.add(lambda: state["a"], lambda: state.__setitem__("b", True))
    state["a"] = True
    registry.run_to_fixpoint()
    assert state["c"]


def test_action_can_register_new_condition():
    registry = ConditionRegistry()
    result = []

    def first():
        registry.add(lambda: True, lambda: result.append("second"))

    registry.add(lambda: True, first)
    registry.run_to_fixpoint()
    assert result == ["second"]


def test_cancelled_condition_never_fires():
    registry = ConditionRegistry()
    hits = []
    condition = registry.add(lambda: True, lambda: hits.append(1))
    condition.cancel()
    registry.run_to_fixpoint()
    assert hits == []


def test_raising_predicate_is_reported():
    registry = ConditionRegistry()
    registry.add(lambda: 1 / 0, lambda: None, label="boom")
    with pytest.raises(RuntimeError, match="boom"):
        registry.run_to_fixpoint()


def test_livelock_guard():
    registry = ConditionRegistry()
    registry.add(lambda: True, lambda: None, once=False)
    with pytest.raises(RuntimeError):
        registry.run_to_fixpoint(max_rounds=5)


def test_completion_resolution_and_callbacks():
    completion = Completion()
    seen = []
    completion.on_done(seen.append)
    assert not completion.done
    with pytest.raises(RuntimeError):
        _ = completion.value
    completion.resolve(42)
    completion.resolve(99)  # second resolve ignored
    assert completion.done
    assert completion.value == 42
    completion.on_done(seen.append)  # late subscriber fires immediately
    assert seen == [42, 42]


def test_pending_count():
    registry = ConditionRegistry()
    registry.add(lambda: False, lambda: None)
    registry.add(lambda: False, lambda: None)
    assert registry.pending_count() == 2
