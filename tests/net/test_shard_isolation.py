"""Shard isolation at scale: k session families on one transport ≡ k solo runs.

The sharded transport's whole contract is that multiplexing k groups over
one network changes *where* envelopes travel, never what any party
computes or how much each group says.  These tests pin that contract at
the transport layer (below ``repro.service.shards``): concurrent group
roots on one simulator must reproduce each group's solo run byte for
byte — words, messages, deliveries, agreed transcripts — and the same
groups over real TCP sockets must agree with the simulator at f=0.
"""

import asyncio

from repro.net.delays import FixedDelay
from repro.net.runtime import Simulation
from repro.service import GroupCoordinator
from repro.service.epochs import _default_root_factory


def _solo_run(group):
    """The reference: this group alone on its own drained simulator."""
    sim = Simulation(group.setup, seed=group.seed, delay_model=FixedDelay(1.0))
    sid = group.session_of(0)
    sim.start_session(sid, _default_root_factory)
    sim.run()  # to quiescence: every straggler delivery is metered
    return sim.honest_results(sid), sim.metrics


def test_eight_concurrent_groups_equal_eight_solo_runs():
    coordinator = GroupCoordinator(24, 8, seed=3)
    shared = Simulation(
        None, seed=3, shards=coordinator.groups, delay_model=FixedDelay(1.0)
    )
    for group in coordinator.groups:
        shared.start_session(group.session_of(0), _default_root_factory)
    shared.run()  # all eight families to quiescence

    group_keys = set()
    for group in coordinator.groups:
        sid = group.session_of(0)
        assert shared.session_complete(sid)
        outputs = shared.honest_results(sid)
        solo_outputs, solo_metrics = _solo_run(group)

        # Same agreed transcript, per party, as the solo run.
        assert outputs == solo_outputs
        transcripts = set(outputs.values())
        assert len(transcripts) == 1  # agreement within the group
        group_keys.add(str(transcripts.pop().public_key))

        # Same traffic: the group's namespaced metrics on the shared
        # transport equal the solo transport's global metrics.
        shard = shared.shard_metrics[group.gid]
        assert shard.words_total == solo_metrics.words_total
        assert shard.messages_total == solo_metrics.messages_total
        assert shard.deliveries == solo_metrics.deliveries
        assert dict(shard.words_by_layer) == dict(solo_metrics.words_by_layer)
        assert dict(shard.words_by_type) == dict(solo_metrics.words_by_type)

    # Eight groups, eight independent key streams.
    assert len(group_keys) == 8
    # The shared transport's global metrics are exactly the sum of the
    # per-group families — nothing metered twice, nothing dropped.
    assert shared.metrics.words_total == sum(
        m.words_total for m in shared.shard_metrics
    )
    assert shared.metrics.messages_total == sum(
        m.messages_total for m in shared.shard_metrics
    )


def test_two_groups_over_tcp_match_the_simulator():
    """k=2 at f=0 over real sockets: schedule-independent transcripts.

    Word totals are NOT asserted on tcp (delivery timing is real, so
    per-run framing differs); at f=0 every party folds all n seeded
    contributions, making the agreed transcripts schedule-independent —
    those, plus zero rejected frames, are the sound cross-transport gate.
    """
    coordinator = GroupCoordinator(8, 2, seed=4, group_f=0)

    async def scenario():
        runtime = coordinator.transport("tcp")
        await runtime.open()
        try:
            for group in coordinator.groups:
                runtime.start_session(group.session_of(0), _default_root_factory)
            outputs = {}
            for group in coordinator.groups:
                outputs[group.gid] = await runtime.wait_session(
                    group.session_of(0), timeout=60
                )
        finally:
            await runtime.close()
        return outputs, runtime.rejected_frames

    tcp_outputs, rejected = asyncio.run(scenario())
    assert rejected == 0
    for group in coordinator.groups:
        solo_outputs, _metrics = _solo_run(group)
        assert tcp_outputs[group.gid] == solo_outputs
