"""Simulator, party routing, conditions, metrics."""

import pytest

from repro.crypto.keys import TrustedSetup
from repro.net.adversary import CrashBehavior, SilentBehavior
from repro.net.delays import ExponentialDelay, FixedDelay, HeavyTailDelay, UniformDelay
from repro.net.envelope import Envelope
from repro.net.payload import words_of
from repro.net.runtime import Simulation

from tests.net.helpers import Blob, EchoAll, ParentChild, Ping, PingPong


def _sim(n=4, seed=1, **kwargs):
    setup = TrustedSetup.generate(n, seed=seed)
    return Simulation(setup, seed=seed, **kwargs)


def test_ping_pong_outputs():
    sim = _sim()
    sim.start(lambda party: PingPong(rounds=4))
    sim.run()
    assert sim.parties[0].result == 4
    assert sim.parties[1].result == 4


def test_echo_all_collects_everyone():
    sim = _sim(n=5)
    sim.start(lambda party: EchoAll())
    sim.run()
    for party in sim.parties:
        assert party.result == frozenset(range(5))


def test_sub_protocol_output_propagates():
    sim = _sim()
    sim.start(lambda party: ParentChild())
    sim.run()
    for party in sim.parties:
        assert party.result == ("from", "child", frozenset(range(4)))


def test_early_messages_are_buffered():
    """A message for a not-yet-spawned instance must wait, not crash."""
    from repro.net.party import Party
    import random

    party = Party(0, n=2, f=0, rng=random.Random(0))
    env = Envelope(path=("later",), sender=1, recipient=0, payload=Ping(7), depth=1)
    party.deliver(env)  # no instance at ("later",) yet

    class Recorder(EchoAll):
        pass

    from repro.net.protocol import Protocol

    class Root(Protocol):
        def on_start(self):
            self.spawn("later", Recorder())

    party.run_root(Root())
    child = party.instance(("later",))
    assert 1 in child.seen


def test_metrics_word_accounting():
    sim = _sim(n=4)
    sim.start(lambda party: EchoAll())
    sim.run()
    # Each party multicasts one 1-word Ping to 3 remote peers (+1 routing word).
    assert sim.metrics.messages_total == 4 * 3
    assert sim.metrics.words_total == 4 * 3 * 2
    assert sim.metrics.deliveries >= sim.metrics.messages_total


def test_round_depth_tracks_causal_chains():
    sim = _sim()
    sim.start(lambda party: PingPong(rounds=5))
    sim.run()
    # Ping(0..5) travel at depths 1..6: the last ack is the 6th hop.
    assert sim.metrics.max_depth == 6


def test_runs_are_deterministic():
    def run_words(seed):
        sim = _sim(n=4, seed=seed)
        sim.start(lambda party: EchoAll())
        sim.run()
        return sim.metrics.words_total, sim.time, sim.steps

    assert run_words(3) == run_words(3)


def test_silent_behavior_sends_nothing():
    sim = _sim(n=4, behaviors={3: SilentBehavior()})
    sim.start(lambda party: EchoAll())
    sim.run()
    # Honest parties never see party 3 (except 3 seeing itself locally).
    for i in range(3):
        assert not sim.parties[i].has_result  # waits for n == 4 messages forever
        assert sim.parties[i].instance(()).seen == {0, 1, 2}


def test_crash_behavior_stops_after_quota():
    sim = _sim(n=4, behaviors={0: CrashBehavior(after_sends=1)})
    sim.start(lambda party: EchoAll())
    sim.run()
    received_from_0 = [i for i in range(1, 4) if 0 in sim.parties[i].instance(()).seen]
    assert len(received_from_0) == 1


def test_too_many_corruptions_rejected():
    setup = TrustedSetup.generate(4, seed=1)
    with pytest.raises(ValueError):
        Simulation(setup, behaviors={1: SilentBehavior(), 2: SilentBehavior()})


def test_run_step_limit():
    sim = _sim()

    class Chatterbox(PingPong):
        def on_message(self, sender, payload):
            self.send(sender, Ping(payload.counter + 1))  # never stops

    sim.start(lambda party: Chatterbox())
    with pytest.raises(RuntimeError):
        sim.run(max_steps=50)


def test_words_of_accounting_rules():
    assert words_of(5) == 1
    assert words_of("tag") == 1
    assert words_of(None) == 0
    assert words_of(True) == 0
    assert words_of(b"\x00" * 32) == 1
    assert words_of(b"\x00" * 33) == 2
    assert words_of((1, 2, 3)) == 3
    assert words_of({1: 2}) == 2
    assert Blob(data=(1,) * 7).word_size() == 7
    with pytest.raises(TypeError):
        words_of(object())


def test_delay_models_produce_positive_delays():
    import random

    rng = random.Random(0)
    for model in (
        FixedDelay(1.0),
        UniformDelay(0.1, 2.0),
        ExponentialDelay(1.0),
        HeavyTailDelay(1.0, 1.0),
    ):
        for _ in range(50):
            assert model.delay(rng, 0, 1, 0.0) > 0


def test_delay_model_validation():
    with pytest.raises(ValueError):
        FixedDelay(0)
    with pytest.raises(ValueError):
        UniformDelay(2.0, 1.0)
    with pytest.raises(ValueError):
        ExponentialDelay(-1)
    with pytest.raises(ValueError):
        HeavyTailDelay(0, 1)


def test_stop_predicate():
    sim = _sim(n=4)
    sim.start(lambda party: EchoAll())
    sim.run(stop=lambda s: s.parties[0].has_result)
    assert sim.parties[0].has_result
