"""Tiny protocols used by the substrate tests."""

from dataclasses import dataclass

from repro.net import codec
from repro.net.payload import Payload
from repro.net.protocol import Protocol


@dataclass(frozen=True)
class Ping(Payload):
    counter: int


@dataclass(frozen=True)
class Blob(Payload):
    data: tuple

    def word_size(self) -> int:
        return len(self.data)


# Test-only codec ids live at >= 9000 (see repro.net.codec) so the TCP
# runtime can carry these payloads across real sockets.
codec.register(Ping, 9001)
codec.register(Blob, 9002)


class PingPong(Protocol):
    """Party 0 pings party 1 ``rounds`` times; both output the final count."""

    def __init__(self, rounds: int = 3) -> None:
        super().__init__()
        self.rounds = rounds

    def on_start(self):
        if self.me == 0:
            self.send(1, Ping(0))
        elif self.me > 1:
            self.output(-1)  # bystanders finish immediately

    def on_message(self, sender, payload):
        if payload.counter >= self.rounds:
            self.output(payload.counter)
            return
        self.send(sender, Ping(payload.counter + 1))
        if payload.counter + 1 >= self.rounds:
            self.output(payload.counter + 1)


class EchoAll(Protocol):
    """Everyone multicasts one message and outputs once n were received."""

    def __init__(self) -> None:
        super().__init__()
        self.seen: set[int] = set()

    def on_start(self):
        self.multicast(Ping(self.me))
        self.upon(
            lambda: len(self.seen) >= self.n,
            lambda: self.output(frozenset(self.seen)),
            label="echo-all-done",
        )

    def on_message(self, sender, payload):
        self.seen.add(sender)


class ParentChild(Protocol):
    """Parent spawns a child EchoAll and relabels its output."""

    def on_start(self):
        self.spawn("child", EchoAll())

    def on_sub_output(self, name, value):
        self.output(("from", name, value))
