"""Metrics accounting unit tests."""

from repro.net.envelope import Envelope
from repro.net.metrics import Metrics

from tests.net.helpers import Blob, Ping


def _env(path=(), words_payload=None, sender=0, recipient=1, depth=1):
    payload = words_payload if words_payload is not None else Ping(1)
    return Envelope(
        path=path, sender=sender, recipient=recipient, payload=payload, depth=depth
    )


def test_send_accounting_totals():
    metrics = Metrics()
    metrics.record_send(_env())
    metrics.record_send(_env(words_payload=Blob(data=(1,) * 9)))
    assert metrics.messages_total == 2
    # Ping: 1 payload word + 1 routing; Blob: 9 + 1.
    assert metrics.words_total == 2 + 10
    assert metrics.words_by_type["Ping"] == 2
    assert metrics.words_by_type["Blob"] == 10


def test_layer_attribution_is_inclusive():
    metrics = Metrics()
    metrics.record_send(_env(path=("nwh", ("pe", 1), "gather", ("vrb", 3))))
    for layer in ("nwh", "pe", "gather", "vrb"):
        assert metrics.words_by_layer[layer] == 2
        assert metrics.messages_by_layer[layer] == 1
    assert metrics.words_for_layer("absent") == 0


def test_non_string_path_parts_ignored():
    metrics = Metrics()
    metrics.record_send(_env(path=(3, ("x",), "layer")))
    assert set(metrics.words_by_layer) == {"x", "layer"}


def test_delivery_tracks_max_depth():
    metrics = Metrics()
    metrics.record_delivery(_env(depth=4))
    metrics.record_delivery(_env(depth=2))
    assert metrics.max_depth == 4
    assert metrics.deliveries == 2


def test_summary_shape():
    metrics = Metrics()
    metrics.record_send(_env(path=("a",)))
    summary = metrics.summary()
    assert summary["words_total"] == 2
    assert summary["messages_total"] == 1
    assert summary["words_by_layer"] == {"a": 2}
    assert "words_by_type" in summary


def test_envelope_describe():
    env = _env(path=("nwh", ("pe", 1)))
    text = env.describe()
    assert "0->1" in text and "Ping" in text


# -- merge: the counter-collision fix for concurrent session families ------------------


def _family(sends, depth, counter):
    """One session family's namespaced metrics with a live work counter."""
    metrics = Metrics()
    for i in range(sends):
        metrics.record_send(_env(path=("a" if i % 2 else "b",)))
    metrics.record_delivery(_env(depth=depth))
    metrics.record_frame(sends, nbytes=10 * sends)
    metrics.attach_counters("verify", lambda: dict(counter))
    return metrics


def test_merge_sums_families_without_collisions():
    a = _family(3, depth=5, counter={"calls": 7, "hits": 2})
    b = _family(2, depth=9, counter={"calls": 4, "misses": 1})
    merged = a.merge(b)
    assert merged.messages_total == 5
    assert merged.words_total == a.words_total + b.words_total
    assert merged.deliveries == 2
    assert merged.max_depth == 9  # max, not sum
    assert merged.frames_total == 2
    assert merged.wire_bytes_total == 50
    assert dict(merged.words_by_layer) == {
        layer: a.words_by_layer[layer] + b.words_by_layer[layer]
        for layer in ("a", "b")
    }
    # Same-named counters sum by key instead of clobbering each other —
    # the collision the per-family namespacing exists to prevent.
    assert merged.counters("verify") == {"calls": 11, "hits": 2, "misses": 1}


def test_merge_is_associative_and_order_independent():
    parts = [
        _family(1, depth=2, counter={"calls": 1}),
        _family(4, depth=7, counter={"calls": 3, "hits": 3}),
        _family(2, depth=1, counter={"misses": 5}),
    ]
    a, b, c = parts

    def flatten(metrics):
        return (metrics.summary(), metrics.counters("verify"))

    reference = flatten(Metrics.merged(parts))
    assert flatten(Metrics.merged([c, a, b])) == reference  # any order
    assert flatten(a.merge(b).merge(c)) == reference  # left fold
    assert flatten(a.merge(b.merge(c))) == reference  # right fold
    assert flatten(Metrics.merged([a.merge(b), c])) == reference  # grouping


def test_merge_mutates_neither_operand_and_snapshots_counters():
    live = {"calls": 1}
    a = _family(2, depth=3, counter=live)
    b = _family(1, depth=1, counter={"calls": 10})
    before = (a.summary(), b.summary())
    merged = a.merge(b)
    assert (a.summary(), b.summary()) == before
    assert merged.counters("verify") == {"calls": 11}
    # The merged value is a snapshot: later growth of a live provider
    # must not retroactively change it (a merged Metrics is a value).
    live["calls"] = 100
    assert merged.counters("verify") == {"calls": 11}
    assert a.counters("verify") == {"calls": 100}  # the source stays live
