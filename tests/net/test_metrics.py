"""Metrics accounting unit tests."""

from repro.net.envelope import Envelope
from repro.net.metrics import Metrics

from tests.net.helpers import Blob, Ping


def _env(path=(), words_payload=None, sender=0, recipient=1, depth=1):
    payload = words_payload if words_payload is not None else Ping(1)
    return Envelope(
        path=path, sender=sender, recipient=recipient, payload=payload, depth=depth
    )


def test_send_accounting_totals():
    metrics = Metrics()
    metrics.record_send(_env())
    metrics.record_send(_env(words_payload=Blob(data=(1,) * 9)))
    assert metrics.messages_total == 2
    # Ping: 1 payload word + 1 routing; Blob: 9 + 1.
    assert metrics.words_total == 2 + 10
    assert metrics.words_by_type["Ping"] == 2
    assert metrics.words_by_type["Blob"] == 10


def test_layer_attribution_is_inclusive():
    metrics = Metrics()
    metrics.record_send(_env(path=("nwh", ("pe", 1), "gather", ("vrb", 3))))
    for layer in ("nwh", "pe", "gather", "vrb"):
        assert metrics.words_by_layer[layer] == 2
        assert metrics.messages_by_layer[layer] == 1
    assert metrics.words_for_layer("absent") == 0


def test_non_string_path_parts_ignored():
    metrics = Metrics()
    metrics.record_send(_env(path=(3, ("x",), "layer")))
    assert set(metrics.words_by_layer) == {"x", "layer"}


def test_delivery_tracks_max_depth():
    metrics = Metrics()
    metrics.record_delivery(_env(depth=4))
    metrics.record_delivery(_env(depth=2))
    assert metrics.max_depth == 4
    assert metrics.deliveries == 2


def test_summary_shape():
    metrics = Metrics()
    metrics.record_send(_env(path=("a",)))
    summary = metrics.summary()
    assert summary["words_total"] == 2
    assert summary["messages_total"] == 1
    assert summary["words_by_layer"] == {"a": 2}
    assert "words_by_type" in summary


def test_envelope_describe():
    env = _env(path=("nwh", ("pe", 1)))
    text = env.describe()
    assert "0->1" in text and "Ping" in text
