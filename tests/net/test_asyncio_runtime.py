"""The asyncio transport runs the same protocol objects."""

import asyncio

import pytest

from repro.crypto.keys import TrustedSetup
from repro.net.adversary import SilentBehavior
from repro.net.asyncio_runtime import AsyncioRuntime

from tests.net.helpers import EchoAll, PingPong


def _run(coro):
    return asyncio.run(coro)


def test_ping_pong_over_asyncio():
    setup = TrustedSetup.generate(4, seed=1)
    runtime = AsyncioRuntime(setup, max_delay=0.001, seed=1)
    results = _run(runtime.run(lambda party: PingPong(rounds=3), timeout=10))
    assert results[0] == 3
    assert results[1] == 3


def test_echo_all_over_asyncio():
    setup = TrustedSetup.generate(4, seed=2)
    runtime = AsyncioRuntime(setup, max_delay=0.001, seed=2)
    results = _run(runtime.run(lambda party: EchoAll(), timeout=10))
    assert all(value == frozenset(range(4)) for value in results.values())


def test_timeout_raises():
    setup = TrustedSetup.generate(4, seed=3)
    # A silent party starves EchoAll (which waits for all n), so we time out.
    runtime = AsyncioRuntime(
        setup, max_delay=0.001, behaviors={3: SilentBehavior()}, seed=3
    )
    with pytest.raises(asyncio.TimeoutError):
        _run(runtime.run(lambda party: EchoAll(), timeout=0.2))


def test_metrics_metered_like_simulator():
    setup = TrustedSetup.generate(4, seed=4)
    runtime = AsyncioRuntime(setup, max_delay=0.0005, seed=4)
    _run(runtime.run(lambda party: EchoAll(), timeout=10))
    assert runtime.metrics.messages_total == 4 * 3
    assert runtime.metrics.words_total == 4 * 3 * 2
