"""The registry byte codec: round-trips, determinism, malformed rejection."""

import random

import pytest

from repro.broadcast.bracha import BrachaEcho, BrachaReady, BrachaVal
from repro.broadcast.ct_rbc import CTEcho, CTReady, CTVal
from repro.baselines.aba import Aux, BVal, CoinShareMsg, Decided
from repro.core.adkg import ADKGShare
from repro.core import certificates as certs
from repro.core.certificates import KeyTuple, SignedVote
from repro.core.nwh import (
    BlameMsg,
    CommitMsg,
    EchoMsg,
    EquivocateMsg,
    KeyVoteMsg,
    LockVoteMsg,
    Suggest,
)
from repro.core.proposal_election import PEDkgShare, PEEvalShare
from repro.core.reshare import ReshareDealingMsg
from repro.crypto import nizk, pvss, reshare, scalar_pvss, schnorr, shamir
from repro.crypto import threshold_enc as tenc
from repro.crypto import threshold_sig as tsig
from repro.crypto import threshold_vrf as tvrf
from repro.crypto.keys import TrustedSetup
from repro.crypto.kzg import KZGOpening, KZGSetup
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.crypto.pairing import GroupElement
from repro.net import codec
from repro.net.envelope import Envelope
from repro.net.payload import Payload


@pytest.fixture(scope="module")
def setup():
    return TrustedSetup.generate(4, seed=11)


@pytest.fixture(scope="module")
def transcript(setup):
    contributions = [
        pvss.deal(setup.directory, setup.secret(i), random.Random(f"codec-{i}"))
        for i in range(3)
    ]
    return pvss.aggregate(setup.directory, contributions)


def roundtrip(value):
    encoded = codec.encode(value)
    decoded = codec.decode(encoded)
    assert decoded == value
    assert type(decoded) is type(value)
    # Determinism: equal values encode to equal bytes.
    assert codec.encode(decoded) == encoded
    return encoded


# -- primitives ------------------------------------------------------------------------


def test_primitive_roundtrips():
    for value in (
        None,
        True,
        False,
        0,
        -1,
        7,
        1 << 300,
        -(1 << 300),
        b"",
        b"\x00\xffraw",
        "",
        "unicode ☃",
        (),
        (1, "x", (b"y", None)),
        [],
        [1, [2, 3]],
        frozenset({1, 2, 3}),
        set(),
        {"a": (1, 2), 3: b"v"},
        {},
        1.5,
        -0.25,
    ):
        roundtrip(value)


def test_int_bound_is_symmetric():
    """Whatever encode accepts, decode accepts — and vice versa."""
    roundtrip(1 << 4000)  # far above the 256-bit STANDARD params
    roundtrip(-(1 << 4000))
    with pytest.raises(codec.CodecError):
        codec.encode(1 << 4200)  # over the wire bound: refused at the sender
    # A hand-crafted varint just over the bound is refused at the receiver
    # too — otherwise honest parties could receive ints they cannot re-send.
    zigzagged = (1 << 4098) << 1
    crafted = bytearray([0x03])
    while True:
        byte = zigzagged & 0x7F
        zigzagged >>= 7
        crafted.append(byte | 0x80 if zigzagged else byte)
        if not zigzagged:
            break
    with pytest.raises(codec.CodecError):
        codec.decode(bytes(crafted))


def test_int_is_not_confused_with_bool():
    assert codec.decode(codec.encode(1)) == 1
    assert codec.decode(codec.encode(1)) is not True
    assert codec.decode(codec.encode(True)) is True


def test_set_and_dict_encodings_are_order_independent():
    assert codec.encode({1, 2, 3}) == codec.encode({3, 1, 2})
    assert codec.encode({"a": 1, "b": 2}) == codec.encode({"b": 2, "a": 1})


# -- every registered type -------------------------------------------------------------


def _sample_values(setup, transcript):
    directory = setup.directory
    secret = setup.secret(0)
    rng = random.Random("codec-samples")
    group = directory.pair_group
    contribution = pvss.deal(directory, secret, random.Random("codec-c"))
    eval_share = tvrf.EvalSh(directory, secret, transcript, ("m", 1))
    vote = certs.make_vote(directory, secret, certs.KIND_ECHO, "v", 1)
    key_tuple = KeyTuple(1, "value", (vote,))
    tree = MerkleTree([b"a", b"b", b"c"])
    kzg = KZGSetup.from_seed(group, 4, "codec-test")
    dealing = scalar_pvss.deal(
        directory.sign_group, 0, directory.sign_pks, directory.f, rng
    )
    ciphertext = tenc.encrypt(directory, transcript, b"msg", rng)
    handoff_spec = reshare.HandoffSpec(
        epoch=1,
        old_session=directory.session,
        old_n=directory.n,
        old_f=directory.f,
        old_sign_pks=directory.sign_pks,
        old_commitments=transcript.commitments,
    )
    reshare_dealings = tuple(
        reshare.deal_reshare(
            directory, handoff_spec, setup.secret(i), random.Random(f"codec-r{i}")
        )
        for i in range(directory.f + 1)
    )
    reshare_bundle = reshare.ReshareBundle(
        spec=handoff_spec, dealings=reshare_dealings
    )
    samples = {
        Envelope: Envelope(
            path=("nwh", ("pe", 1), "gather"),
            sender=0,
            recipient=2,
            payload=Suggest(key=key_tuple, view=2),
            depth=3,
        ),
        GroupElement: group.exp(group.g, 12345),
        schnorr.Signature: schnorr.sign(
            directory.sign_group, secret.sign, "codec", 1
        ),
        nizk.DlogProof: nizk.prove_dlog(
            group, group.g, group.exp(group.g, 5), 5, rng
        ),
        nizk.DleqProof: nizk.prove_dleq(
            group,
            group.g,
            group.exp(group.g, 5),
            group.exp(group.g, 7),
            group.exp(group.g, 35),
            5,
            rng,
        ),
        MerkleProof: tree.prove(1),
        KZGOpening: kzg.open_at([1, 2, 3], 0),
        pvss.ContributorTag: contribution.tag,
        pvss.PVSSContribution: contribution,
        pvss.PVSSTranscript: transcript,
        tvrf.EvalShare: eval_share,
        SignedVote: vote,
        KeyTuple: key_tuple,
        tsig.SignatureShare: tsig.sign_share(directory, secret, transcript, "m"),
        tsig.ThresholdSignature: tsig.ThresholdSignature(
            value=group.pair(group.g, group.g)
        ),
        tenc.Ciphertext: ciphertext,
        tenc.DecryptionShare: tenc.decryption_share(
            directory, secret, transcript, ciphertext
        ),
        scalar_pvss.ScalarDealing: dealing,
        scalar_pvss.DecryptedShare: scalar_pvss.decrypt_share(
            directory.sign_group, dealing, 0, secret.sign.sk, rng
        ),
        shamir.ShamirShare: shamir.ShamirShare(x=1, y=42),
        BrachaVal: BrachaVal(value=("x", 1)),
        BrachaEcho: BrachaEcho(value=frozenset({0, 1, 2})),
        BrachaReady: BrachaReady(value=key_tuple),
        CTVal: CTVal(root=tree.root, fragment=b"frag", proof=tree.prove(0), claim_words=9, k=2),
        CTEcho: CTEcho(root=tree.root, fragment=b"frag", proof=tree.prove(0), claim_words=9, k=2),
        CTReady: CTReady(root=tree.root),
        PEDkgShare: PEDkgShare(contribution=contribution),
        PEEvalShare: PEEvalShare(k=1, share=eval_share),
        Suggest: Suggest(key=key_tuple, view=1),
        EchoMsg: EchoMsg(
            key=key_tuple, election_proof=frozenset({0, 1, 2}), vote=vote, view=1
        ),
        KeyVoteMsg: KeyVoteMsg(value="v", proof=(vote,), vote=vote, view=1),
        LockVoteMsg: LockVoteMsg(value="v", proof=(vote,), vote=vote, view=1),
        CommitMsg: CommitMsg(value="v", proof=(vote,), view=1),
        BlameMsg: BlameMsg(
            key=key_tuple,
            election_proof=frozenset({0, 1, 2}),
            lock_view=0,
            lock_value="v",
            lock_proof=None,
            view=1,
        ),
        EquivocateMsg: EquivocateMsg(
            key_a=key_tuple,
            proof_a=frozenset({0, 1, 2}),
            key_b=KeyTuple(0, "w", None),
            proof_b=frozenset({1, 2, 3}),
            view=1,
        ),
        ADKGShare: ADKGShare(contribution=contribution),
        reshare.HandoffSpec: handoff_spec,
        reshare.ReshareDealing: reshare_dealings[0],
        reshare.ReshareBundle: reshare_bundle,
        reshare.ReshareTranscript: reshare.finalize(directory, reshare_bundle),
        ReshareDealingMsg: ReshareDealingMsg(dealing=reshare_dealings[0]),
        BVal: BVal(round_no=1, bit=0),
        Aux: Aux(round_no=1, bit=1),
        CoinShareMsg: CoinShareMsg(round_no=1, share=eval_share),
        Decided: Decided(bit=1),
    }
    return samples


def test_every_registered_repo_type_roundtrips(setup, transcript):
    samples = _sample_values(setup, transcript)
    repo_types = {
        cls for cls, type_id in codec.registered_types().items() if type_id < 9000
    }
    missing = repo_types - set(samples)
    assert not missing, f"no codec sample for registered types: {missing}"
    for cls, value in samples.items():
        assert type(value) is cls
        roundtrip(value)


def test_registered_payloads_cover_all_protocol_payloads(setup, transcript):
    """Every concrete Payload subclass in the repo must be registered."""
    registered = set(codec.registered_types())

    def walk(cls):
        for sub in cls.__subclasses__():
            yield sub
            yield from walk(sub)

    repo_payloads = {
        cls
        for cls in walk(Payload)
        if cls.__module__.startswith("repro.")
    }
    unregistered = repo_payloads - registered
    assert not unregistered, f"payloads missing codec registration: {unregistered}"


def test_envelope_helpers_validate(setup, transcript):
    env = _sample_values(setup, transcript)[Envelope]
    assert codec.decode_envelope(codec.encode_envelope(env)) == env
    assert codec.encoded_size(env) == len(codec.encode(env))
    # A non-envelope value is rejected even though it decodes fine.
    with pytest.raises(codec.CodecError):
        codec.decode_envelope(codec.encode((1, 2, 3)))
    # An envelope whose payload is not a Payload is rejected.
    bogus = Envelope(path=(), sender=0, recipient=1, payload="nope", depth=1)
    with pytest.raises(codec.CodecError):
        codec.decode_envelope(codec.encode(bogus))


# -- malformed input -------------------------------------------------------------------


def test_truncations_never_crash(setup, transcript):
    for value in (_sample_values(setup, transcript)[pvss.PVSSContribution], (1, "x"), {1: 2}):
        encoded = codec.encode(value)
        for cut in range(len(encoded)):
            with pytest.raises(codec.CodecError):
                codec.decode(encoded[:cut])


def test_trailing_bytes_rejected():
    with pytest.raises(codec.CodecError):
        codec.decode(codec.encode(1) + b"\x00")


def test_unknown_tag_rejected():
    with pytest.raises(codec.CodecError):
        codec.decode(b"\xfe")


def test_unknown_type_id_rejected():
    out = bytearray([0x10])
    out.extend(b"\xbb\x06")  # varint 863: unregistered id
    out.append(0)
    with pytest.raises(codec.CodecError):
        codec.decode(bytes(out))


def test_field_count_mismatch_rejected():
    encoded = bytearray(codec.encode(Decided(bit=1)))
    # struct tag, type id varint, then the field count byte: patch it.
    assert encoded[0] == 0x10
    pos = 1
    while encoded[pos] & 0x80:
        pos += 1
    pos += 1
    encoded[pos] += 1
    with pytest.raises(codec.CodecError):
        codec.decode(bytes(encoded))


def test_invalid_utf8_rejected():
    with pytest.raises(codec.CodecError):
        codec.decode(b"\x05\x02\xff\xfe")


def test_huge_length_claims_rejected():
    # bytes tag claiming 2**30 bytes with nothing behind it
    with pytest.raises(codec.CodecError):
        codec.decode(b"\x04\x80\x80\x80\x80\x04")
    # tuple tag claiming a billion items
    with pytest.raises(codec.CodecError):
        codec.decode(b"\x06\x80\x80\x80\x80\x04")


def test_deep_nesting_rejected():
    data = b"\x06\x01" * 100 + b"\x00"  # 100 nested 1-tuples
    with pytest.raises(codec.CodecError):
        codec.decode(data)


def test_duplicate_set_members_rejected():
    one = codec.encode(1)
    data = bytes([0x08, 2]) + one + one
    with pytest.raises(codec.CodecError):
        codec.decode(data)


def test_wrong_typed_struct_fields_rejected():
    """Attacker-crafted field values of the wrong type must fail closed."""
    for forged in (
        Decided(bit="not-an-int"),
        Suggest(key=None, view=b"bytes-not-int"),
        CTReady(root=b"ok-any-field"),  # control: Any fields stay open
    ):
        encoded = codec.encode(forged)
        if isinstance(forged, CTReady):
            assert codec.decode(encoded) == forged
        else:
            with pytest.raises(codec.CodecError):
                codec.decode(encoded)


def test_union_annotated_fields_are_unchecked():
    """PEP-604 unions admit several types; the decoder must not pin one."""
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class MaybeTuple(Payload):
        items: "tuple[int, ...] | None"

    codec.register(MaybeTuple, 9100)
    roundtrip(MaybeTuple(items=None))
    roundtrip(MaybeTuple(items=(1, 2)))


def test_unhashable_envelope_path_rejected():
    env = Envelope(
        path=(["not", "hashable"],),
        sender=0,
        recipient=1,
        payload=Decided(bit=1),
        depth=1,
    )
    encoded = codec.encode(env)
    with pytest.raises(codec.CodecError):
        codec.decode_envelope(encoded)


def test_unencodable_type_raises():
    with pytest.raises(codec.CodecError):
        codec.encode(object())


def test_register_rejects_id_collisions():
    from repro.core.adkg import ADKGShare as A

    with pytest.raises(ValueError):
        codec.register(Decided, codec.registered_types()[A])
