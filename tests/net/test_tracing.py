"""Execution tracing."""

from repro.crypto.keys import TrustedSetup
from repro.net.runtime import Simulation
from repro.net.tracing import Tracer

from tests.net.helpers import EchoAll, ParentChild


def _traced_sim(n=4, seed=1, predicate=None):
    setup = TrustedSetup.generate(n, seed=seed)
    sim = Simulation(setup, seed=seed)
    tracer = Tracer(sim, predicate=predicate)
    return sim, tracer


def test_trace_captures_network_deliveries():
    sim, tracer = _traced_sim()
    sim.start(lambda party: EchoAll())
    sim.run()
    # 4 parties x 3 remote recipients = 12 network deliveries.
    assert len(tracer.events) == 12
    assert all(event.payload_type == "Ping" for event in tracer.events)
    assert all(event.words == 2 for event in tracer.events)


def test_trace_events_are_time_ordered():
    sim, tracer = _traced_sim()
    sim.start(lambda party: EchoAll())
    sim.run()
    times = [event.time for event in tracer.events]
    assert times == sorted(times)


def test_predicate_filters():
    sim, tracer = _traced_sim(predicate=lambda env: env.recipient == 0)
    sim.start(lambda party: EchoAll())
    sim.run()
    assert len(tracer.events) == 3
    assert all(event.recipient == 0 for event in tracer.events)


def test_query_helpers_and_rendering():
    sim, tracer = _traced_sim()
    sim.start(lambda party: ParentChild())
    sim.run()
    party0 = tracer.for_party(0)
    assert party0 and all(event.recipient == 0 for event in party0)
    child_events = tracer.for_layer("child")
    assert child_events and len(child_events) == len(tracer.events)
    text = tracer.timeline(party0)
    assert "Ping" in text and "->0" in text
    summary = tracer.summary()
    assert summary["events"] == len(tracer.events)
    assert summary["by_type"]["Ping"] == len(tracer.events)
    assert summary["span"][0] <= summary["span"][1]


def test_capacity_limit():
    sim, tracer = _traced_sim()
    tracer.capacity = 5
    sim.start(lambda party: EchoAll())
    sim.run()
    assert len(tracer.events) == 5


def test_empty_trace_summary():
    sim, tracer = _traced_sim(predicate=lambda env: False)
    sim.start(lambda party: EchoAll())
    sim.run()
    assert tracer.summary() == {"events": 0, "by_type": {}, "span": None}


def test_multiple_tracers_coexist_and_detach_independently():
    sim, tracer1 = _traced_sim()
    tracer2 = Tracer(sim, predicate=lambda env: env.recipient == 0)
    sim.start(lambda party: EchoAll())
    sim.run()
    assert len(tracer1.events) == 12
    assert len(tracer2.events) == 3
    tracer2.detach()  # leaves tracer1 observing
    assert sim._delivery_observers == [tracer1._on_delivery]
