"""The session layer: multiplexed roots, GC, bounded buffers, wire format."""

import asyncio
import random

import pytest

from repro import run_adkg
from repro.core.adkg import ADKG
from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.asyncio_runtime import AsyncioRuntime
from repro.net.delays import FixedDelay
from repro.net.envelope import Envelope
from repro.net.party import Party
from repro.net.runtime import Simulation
from repro.net.tcp_runtime import TCPRuntime
from repro.service import EpochDriver

from tests.net.helpers import EchoAll, Ping


def _sim(n=4, f=None, seed=1, **kwargs):
    setup = TrustedSetup.generate(n, f=f, seed=seed)
    kwargs.setdefault("delay_model", FixedDelay(1.0))
    return Simulation(setup, seed=seed, **kwargs)


# -- session multiplexing equivalence --------------------------------------------------


def test_interleaved_adkg_sessions_match_sequential(n=4, seed=7):
    """Two pipelined ADKG epochs == two back-to-back ones, per session.

    At f=0 every party folds all n (seeded, deterministic) contributions,
    so each session's agreed transcript is schedule-independent: running
    the sessions concurrently over one network must give exactly the
    transcripts of running them one after the other.
    """
    transcripts = {}
    for depth in (1, 2):
        sim = _sim(n=n, f=0, seed=seed)
        driver = EpochDriver(sim, epochs=2, pipeline_depth=depth)
        results = driver.run()
        assert [r.epoch for r in results] == [0, 1]
        assert all(r.agreed for r in results)
        transcripts[depth] = [r.transcript for r in results]
    assert transcripts[1] == transcripts[2]
    # Different epochs rotate to genuinely different keys...
    assert transcripts[1][0] != transcripts[1][1]
    # ...and session 0 is exactly what a classic single run produces.
    single = run_adkg(n=n, f=0, seed=seed)
    assert transcripts[1][0] == single.transcript


def test_interleaved_adkg_sessions_on_tcp_match_sim(n=4, seed=7):
    """The same two epochs, interleaved over real sockets, agree with sim."""
    sim = _sim(n=n, f=0, seed=seed)
    sim_results = EpochDriver(sim, epochs=2, pipeline_depth=2).run()

    setup = TrustedSetup.generate(n, f=0, seed=seed)
    runtime = TCPRuntime(setup, seed=seed)
    tcp_results = EpochDriver(runtime, epochs=2, pipeline_depth=2, timeout=60).run()
    assert [r.transcript for r in tcp_results] == [
        r.transcript for r in sim_results
    ]
    assert runtime.rejected_frames == 0


def test_sessions_injected_into_live_asyncio_network():
    """A fresh session can start while the network is already running."""

    async def scenario():
        setup = TrustedSetup.generate(4, seed=2)
        runtime = AsyncioRuntime(setup, seed=2)
        await runtime.open()
        try:
            runtime.start_session(0, lambda party: EchoAll())
            first = await runtime.wait_session(0, timeout=30)
            # Session 0 is done; the network is live — inject another.
            runtime.start_session(1, lambda party: EchoAll())
            second = await runtime.wait_session(1, timeout=30)
        finally:
            await runtime.close()
        return first, second

    first, second = asyncio.run(scenario())
    assert all(value == frozenset(range(4)) for value in first.values())
    assert all(value == frozenset(range(4)) for value in second.values())


def test_cannot_start_same_session_twice():
    sim = _sim()
    sim.start(lambda party: EchoAll())
    with pytest.raises(RuntimeError):
        sim.start(lambda party: EchoAll())
    sim.start(lambda party: EchoAll(), session=1)  # a new sid is fine


# -- garbage collection ----------------------------------------------------------------


def test_completed_session_gc_frees_state_and_drops_stale():
    sim = _sim(n=4, seed=3)
    driver = EpochDriver(sim, epochs=2, pipeline_depth=1, root_factory=lambda p: ADKG())
    driver.run()
    for result in driver.results:
        for party in sim.parties:
            state = party.sessions.peek(result.session)
            assert state is not None and state.collected
            assert not state.instances
            assert not state.pending
            assert state.conditions.pending_count() == 0
            # The result tombstone survives collection.
            assert party.session_has_result(result.session)
    # Late traffic for a collected session is dropped and counted.
    party = sim.parties[0]
    stale_before = party.drop_stats["pending.stale"]
    party.deliver(
        Envelope(
            path=("nwh",), sender=1, recipient=0, payload=Ping(1), depth=1, session=0
        )
    )
    assert party.drop_stats["pending.stale"] == stale_before + 1
    assert "stale" in sim.metrics.counters("pending")


def test_run_root_refused_on_collected_session():
    party = Party(0, n=2, f=0, rng=random.Random(0))
    party.run_root(EchoAll(), session=5)
    assert party.collect_session(5)
    assert not party.collect_session(5)  # idempotent, reports no-op
    with pytest.raises(RuntimeError):
        party.run_root(EchoAll(), session=5)


# -- bounded pending buffers -----------------------------------------------------------


def test_pending_buffer_is_capped_and_drops_are_counted():
    party = Party(0, n=2, f=0, rng=random.Random(0), pending_cap=3)
    for i in range(5):
        party.deliver(
            Envelope(
                path=("later",), sender=1, recipient=0, payload=Ping(i), depth=1
            )
        )
    assert party.pending_messages() == 3
    assert party.drop_stats["pending.dropped"] == 2

    from repro.net.protocol import Protocol

    class Root(Protocol):
        def on_start(self):
            self.spawn("later", EchoAll())

    party.run_root(Root())
    # Only the capped prefix was buffered and replayed...
    assert party.instance(("later",)).seen == {1}
    # ...and the buffer accounting went back to zero.
    assert party.pending_messages() == 0


def test_pending_buffers_are_per_session():
    party = Party(0, n=2, f=0, rng=random.Random(0), pending_cap=2)
    for session in (0, 1):
        party.deliver(
            Envelope(
                path=("x",),
                sender=1,
                recipient=0,
                payload=Ping(session),
                depth=1,
                session=session,
            )
        )
    assert party.pending_messages(0) == 1
    assert party.pending_messages(1) == 1
    assert party.pending_messages() == 2
    party.collect_session(1)
    assert party.pending_messages() == 1  # session 1's buffer was freed


def test_unstarted_session_backlog_is_capped():
    """Spraying fictitious session ids cannot allocate unbounded state."""
    party = Party(0, n=2, f=0, rng=random.Random(0), session_backlog_cap=3)
    for sid in range(1, 6):
        party.deliver(
            Envelope(
                path=("x",), sender=1, recipient=0, payload=Ping(sid), depth=1,
                session=sid,
            )
        )
    assert party.sessions.unstarted_count == 3
    assert party.drop_stats["pending.dropped"] == 2
    # Installing a root converts backlog into a started session...
    party.run_root(EchoAll(), session=1)
    assert party.sessions.unstarted_count == 2
    # ...whose traffic is of course still accepted.
    party.deliver(
        Envelope(
            path=(), sender=1, recipient=0, payload=Ping(9), depth=1, session=1
        )
    )
    assert 1 in party.instance((), session=1).seen
    # Local accessors are trusted: reading a session's rng or condition
    # registry must not consume the budget reserved for network traffic.
    party.session_rng(77)
    party.conditions_for(78)
    assert party.sessions.unstarted_count == 2


def test_per_session_budget_bounds_distinct_path_spraying():
    """One message per fictitious path must not grow buckets unboundedly."""
    party = Party(0, n=2, f=0, rng=random.Random(0), pending_cap=2)
    budget = party.pending_budget  # 8 * pending_cap
    for i in range(budget + 5):
        party.deliver(
            Envelope(
                path=("p", i), sender=1, recipient=0, payload=Ping(i), depth=1
            )
        )
    assert party.pending_messages(0) == budget
    assert len(party.sessions.peek(0).pending) == budget  # no empty buckets
    assert party.drop_stats["pending.dropped"] == 5


# -- per-session determinism -----------------------------------------------------------


def test_session_rng_streams_are_stable_and_distinct():
    party = Party(0, n=4, f=1, rng=random.Random("base"), rng_label="party-1-0")
    base_draw = random.Random("base").random()
    assert party.session_rng(0).random() == base_draw  # session 0 = base rng
    first = party.session_rng(3).random()
    # The derived stream starts from the session seed (so it is
    # interleaving-independent)...
    assert random.Random("party-1-0-session-3").random() == first
    # ...is persistent — repeated draws advance, they don't restart
    # (independent samplings within a session must not correlate)...
    assert party.session_rng(3).random() != first
    # ...and differs from other sessions' streams.
    assert party.session_rng(4).random() != first


# -- wire format -----------------------------------------------------------------------


def test_envelope_session_round_trips_through_codec():
    env = Envelope(
        path=("nwh", 2), sender=1, recipient=0, payload=Ping(9), depth=4, session=7
    )
    decoded = codec.decode_envelope(codec.encode_envelope(env))
    assert decoded == env
    assert decoded.session == 7


def test_legacy_five_field_envelope_decodes_as_session_zero():
    """Pre-session wire frames (5 fields, no sid) must still route."""
    legacy = bytearray()
    legacy.append(0x10)  # struct tag
    legacy.append(1)  # envelope type id (single-byte varint)
    legacy.append(5)  # the old field count
    for value in (("later",), 1, 0, Ping(3), 2):  # path..depth, no session
        codec._encode_into(legacy, value)
    decoded = codec.decode_envelope(bytes(legacy))
    assert decoded == Envelope(
        path=("later",), sender=1, recipient=0, payload=Ping(3), depth=2
    )
    assert decoded.session == 0


def test_truncated_field_counts_still_rejected_for_other_structs():
    """The 5-field allowance is envelope-only; other structs stay strict."""
    encoded = bytearray(codec.encode(Ping(3)))
    # Ping has one field; rewrite its field count to zero and drop the field.
    assert encoded[0] == 0x10
    prefix_len = 1
    _type_id, pos = codec._read_uvarint(bytes(encoded), prefix_len)
    truncated = bytes(encoded[:pos]) + b"\x00"
    with pytest.raises(codec.CodecError):
        codec.decode(truncated)


def test_negative_session_rejected_at_the_wire():
    env = Envelope(
        path=(), sender=1, recipient=0, payload=Ping(1), depth=1, session=-3
    )
    with pytest.raises(codec.CodecError):
        codec.decode_envelope(codec.encode_envelope(env))


def test_byzantine_mutation_preserves_the_session_id():
    from repro.net.adversary import MutateBehavior

    behavior = MutateBehavior(lambda payload, recipient, rng: Ping(99))
    env = Envelope(
        path=("x",), sender=0, recipient=1, payload=Ping(1), depth=1, session=6
    )
    [mutated] = behavior.transform_outgoing(env, random.Random(0))
    assert mutated.session == 6
    assert mutated.payload == Ping(99)
