"""The batched message plane: batch frames, coalescing, equivalence.

The invariant under test everywhere: batching is a *transport*
optimization.  Protocol execution — transcripts, word totals, byte
totals, rounds — is byte-identical with batching on or off, on every
transport; what changes is the frame count, the batch occupancy and the
actual bytes on the wire.
"""

import asyncio

import pytest

from repro import run_adkg
from repro.crypto.keys import TrustedSetup
from repro.net import codec
from repro.net.adversary import RandomLagScheduler
from repro.net.delays import UniformDelay
from repro.net.envelope import Envelope
from repro.net.metrics import Metrics
from repro.net.runtime import Simulation
from repro.net.tcp_runtime import TCPRuntime

from tests.net.helpers import Blob, EchoAll, Ping


def _env(recipient=1, payload=None, sender=0, depth=1, session=0, path=("layer",)):
    return Envelope(
        path=path,
        sender=sender,
        recipient=recipient,
        payload=payload if payload is not None else Ping(7),
        depth=depth,
        session=session,
    )


# -- batch frame codec -----------------------------------------------------------------


def test_batch_round_trip_and_payload_dedup():
    shared = Ping(3)
    envelopes = [_env(recipient=r, payload=shared) for r in range(1, 5)]
    body = codec.encode_batch(envelopes)
    assert body[0] == codec.BATCH_MAGIC and body[1] == codec.BATCH_VERSION
    assert codec.decode_batch(body) == envelopes
    # The shared payload is serialized once per frame, not once per
    # envelope: the batch undercuts the sum of single-envelope frames.
    singles = sum(len(codec.encode_envelope(e)) for e in envelopes)
    assert len(body) < singles
    # Distinct payloads still round-trip, in order.
    mixed = [_env(recipient=1, payload=Ping(1)), _env(recipient=2, payload=Blob(data=(9, 9)))]
    assert codec.decode_batch(codec.encode_batch(mixed)) == mixed


def test_batch_of_one_uses_legacy_format():
    env = _env()
    assert codec.encode_batch([env]) == codec.encode_envelope(env)


def test_legacy_single_envelope_frame_decodes_as_batch_of_one():
    env = _env()
    assert codec.decode_batch(codec.encode_envelope(env)) == [env]


def test_malformed_batch_frames_rejected():
    envelopes = [_env(recipient=1), _env(recipient=2, payload=Ping(8))]
    body = codec.encode_batch(envelopes)
    # Truncations at every prefix length must fail closed, never crash.
    for cut in range(1, len(body)):
        with pytest.raises(codec.CodecError):
            codec.decode_batch(body[:cut])
    with pytest.raises(codec.CodecError):
        codec.decode_batch(b"")
    with pytest.raises(codec.CodecError):
        codec.decode_batch(body + b"\x00")  # trailing bytes
    with pytest.raises(codec.CodecError):
        codec.decode_batch(bytes([codec.BATCH_MAGIC, 0x7F]) + body[2:])  # bad version
    with pytest.raises(codec.CodecError):
        codec.encode_batch([])
    # Payload table entries must be registered Payloads.
    not_payload = bytes([codec.BATCH_MAGIC, codec.BATCH_VERSION])
    blob = codec.encode(42)
    not_payload += bytes([len(blob)]) + blob + b"\x01\x00"
    with pytest.raises(codec.CodecError):
        codec.decode_batch(not_payload)


def test_batch_payload_index_out_of_range_rejected():
    body = bytearray(codec.encode_batch([_env(recipient=1), _env(recipient=2)]))
    # Known layout (single shared payload, small sizes, 1-byte varints):
    # magic, version, blob-count=1, blob-len, blob, m=2, [idx, header]...
    blob = codec.encode(Ping(7))
    assert body[2] == 1  # one payload blob
    pos = 4 + len(blob)
    assert body[pos] == 2  # envelope count
    assert body[pos + 1] == 0  # first record's payload index
    body[pos + 1] = 7  # out of range
    with pytest.raises(codec.CodecError):
        codec.decode_batch(bytes(body))


def test_batch_header_validation_matches_decode_envelope():
    # A batch whose header smuggles a non-int sender must be rejected the
    # same way decode_envelope rejects it.
    good = _env(recipient=1)
    body = codec.encode_batch([good, _env(recipient=2)])
    decoded = codec.decode_batch(body)
    assert all(isinstance(e, Envelope) for e in decoded)
    forged = Envelope(
        path=(), sender="zero", recipient=1, payload=Ping(1), depth=1
    )
    with pytest.raises(codec.CodecError):
        codec.decode_batch(codec.encode_batch([forged, good]))


def test_encoded_envelope_size_matches_full_encode():
    cases = [
        _env(),
        _env(path=()),
        _env(path=("nwh", ("pe", 3), "gather", 12), depth=900, session=41),
        _env(payload=Blob(data=tuple(range(40)))),
        _env(recipient=99, sender=77),
    ]
    for envelope in cases:
        assert codec.encoded_envelope_size(envelope) == len(
            codec.encode(envelope)
        ), envelope


def test_encoded_batch_size_matches_encode_batch():
    shared = Ping(5)
    envelopes = [
        _env(recipient=1, payload=shared),
        _env(recipient=2, payload=shared),
        _env(recipient=3, payload=Blob(data=(1, 2, 3))),
    ]
    expected = len(codec.encode_batch(envelopes))
    assert codec.encoded_batch_size(envelopes) == expected
    body_sizes = [codec.encoded_envelope_size(e) for e in envelopes]
    assert codec.encoded_batch_size(envelopes, body_sizes) == expected
    single = [_env()]
    assert codec.encoded_batch_size(single) == len(codec.encode_batch(single))


# -- metrics ---------------------------------------------------------------------------


def test_frame_metrics_accounting():
    metrics = Metrics()
    assert metrics.frames_saved == 0 and metrics.batch_occupancy_mean == 0.0
    for _ in range(10):
        metrics.record_send(_env())
    metrics.record_frame(7, nbytes=100)
    metrics.record_frame(3, nbytes=50)
    assert metrics.frames_total == 2
    assert metrics.frames_saved == 8
    assert metrics.batch_occupancy_max == 7
    assert metrics.batch_occupancy_mean == 5.0
    assert metrics.wire_bytes_total == 150
    # No byte metering on these sends => no savings claim.
    assert metrics.bytes_total == 0 and metrics.wire_bytes_saved == 0
    summary = metrics.summary()
    for key in ("frames_total", "frames_saved", "batch_occupancy_mean",
                "batch_occupancy_max", "wire_bytes_total", "wire_bytes_saved"):
        assert key in summary


# -- plane equivalence -----------------------------------------------------------------


def test_batched_plane_equivalent_to_unbatched_on_sim():
    """Same seed, batching on/off: byte-identical protocol execution."""
    batched = run_adkg(n=4, seed=11, transport="sim", measure_bytes=True, batching=True)
    unbatched = run_adkg(n=4, seed=11, transport="sim", measure_bytes=True, batching=False)
    assert batched.agreed and unbatched.agreed
    assert batched.transcript == unbatched.transcript
    assert batched.words_total == unbatched.words_total
    assert batched.bytes_total == unbatched.bytes_total
    assert batched.messages_total == unbatched.messages_total
    assert batched.rounds == unbatched.rounds
    bs = batched.metrics_summary
    us = unbatched.metrics_summary
    assert bs["words_by_layer"] == us["words_by_layer"]
    assert bs["words_by_type"] == us["words_by_type"]
    # Only the frame plane differs.
    assert bs["frames_total"] > 0 and bs["frames_saved"] > 0
    assert bs["batch_occupancy_mean"] > 1.0
    assert bs["wire_bytes_saved"] > 0
    assert us["frames_total"] == 0 and us["frames_saved"] == 0


def test_batched_plane_equivalent_under_random_delays_and_scheduler():
    """Bucketed heap scheduling preserves the exact unbatched schedule.

    Per-envelope delay draws and scheduler decisions happen in creation
    order on both planes, so even under a randomized delay model plus an
    adversarial scheduler the executions are identical.
    """
    outcomes = []
    for batching in (True, False):
        result = run_adkg(
            n=4,
            seed=5,
            transport="sim",
            delay_model=UniformDelay(0.3, 2.1),
            scheduler=RandomLagScheduler(factor=5.0, rate=0.3),
            measure_bytes=True,
            batching=batching,
        )
        outcomes.append(
            (result.transcript, result.words_total, result.bytes_total,
             result.rounds, result.messages_total)
        )
    assert outcomes[0] == outcomes[1]


def test_batched_plane_equivalent_with_behavior_plus_scheduler():
    """RNG interleaving: behavior transforms and scheduler draws share
    ``_adv_rng``, so delays must be drawn at buffer time (the unbatched
    plane's order), not at flush — this is the regression the combined
    case catches.
    """
    from repro.net.adversary import DropBehavior

    outcomes = []
    for batching in (True, False):
        result = run_adkg(
            n=4,
            seed=7,
            transport="sim",
            delay_model=UniformDelay(0.3, 2.1),
            scheduler=RandomLagScheduler(factor=5.0, rate=0.3),
            behaviors={3: DropBehavior(rate=0.5)},
            measure_bytes=True,
            batching=batching,
        )
        outcomes.append(
            (result.words_total, result.bytes_total, result.messages_total,
             result.rounds, sorted(result.outputs))
        )
    assert outcomes[0] == outcomes[1]


def test_batched_tcp_matches_sim_transcript_and_words():
    """Batched sim ≡ unbatched sim ≡ batched TCP at f=0.

    Words are schedule-independent at f=0; byte totals are asserted
    within the sim pair only (realtime depth stamps differ by schedule,
    which shifts the varint-encoded depth field).
    """
    n, seed = 4, 7
    sim_batched = run_adkg(n=n, f=0, seed=seed, batching=True)
    sim_unbatched = run_adkg(n=n, f=0, seed=seed, batching=False)
    assert sim_batched.transcript == sim_unbatched.transcript
    assert sim_batched.words_total == sim_unbatched.words_total

    setup = TrustedSetup.generate(n, f=0, seed=seed)
    runtime = TCPRuntime(setup, seed=seed, batching=True)
    from repro.core.adkg import ADKG

    results = asyncio.run(runtime.run(lambda party: ADKG(), timeout=60))
    transcripts = list(results.values())
    assert all(t == transcripts[0] for t in transcripts)
    assert transcripts[0] == sim_batched.transcript
    assert runtime.rejected_frames == 0
    assert runtime.metrics.words_total == sim_batched.words_total
    # Real coalesced frames went over the sockets.  At n=4 the per-pair
    # bursts are small and payloads within one connection's frame are
    # distinct, so framing overhead can cancel the saved length
    # prefixes — wire bytes may only be bounded, not strictly smaller
    # (larger n tips the balance; bench_scale asserts the strict win).
    assert runtime.metrics.frames_total > 0
    assert runtime.metrics.frames_saved > 0
    assert runtime.metrics.wire_bytes_total <= runtime.metrics.bytes_total


def test_batched_tcp_wire_carries_multi_envelope_frames():
    """EchoAll over batched TCP: outputs right, frames coalesced."""
    setup = TrustedSetup.generate(4, seed=2)
    runtime = TCPRuntime(setup, seed=2, batching=True)
    results = asyncio.run(runtime.run(lambda party: EchoAll(), timeout=30))
    assert all(value == frozenset(range(4)) for value in results.values())
    assert runtime.metrics.bytes_total > 0
    assert runtime.metrics.frames_total > 0


# -- flush policy ----------------------------------------------------------------------


def test_size_cap_splits_coalescing_buffer():
    setup = TrustedSetup.generate(4, seed=3)
    sim = Simulation(setup, seed=3, batching=True)
    sim.batch_cap_envelopes = 2
    sim.run_sync(lambda party: EchoAll())
    assert sim.metrics.batch_occupancy_max <= 2
    assert sim.metrics.frames_total > 0


def test_quiescence_flushes_coalesced_sends():
    """run() to quiescence must deliver buffered coalesced sends too."""
    setup = TrustedSetup.generate(4, seed=4)
    sim = Simulation(setup, seed=4, batching=True)
    sim.start(lambda party: EchoAll())
    sim.run()  # no stop predicate: drains to true quiescence
    assert not sim._outgoing
    assert all(
        sim.parties[i].instance(()).seen == {0, 1, 2, 3} for i in range(4)
    )


# -- TCP backpressure (bounded send queues) --------------------------------------------


def test_tcp_send_queue_cap_validated():
    setup = TrustedSetup.generate(4, seed=1)
    with pytest.raises(ValueError):
        TCPRuntime(setup, seed=1, send_queue_cap=0)


def test_tcp_backpressure_sheds_and_counts():
    """With a tiny queue cap the overflow is shed and counted, not grown."""
    setup = TrustedSetup.generate(4, seed=6)
    runtime = TCPRuntime(setup, seed=6, batching=True, send_queue_cap=1)
    runtime.batch_cap_envelopes = 1  # every envelope its own frame

    class Burst(EchoAll):
        def on_start(self):
            super().on_start()
            for _ in range(50):  # flood before any pump can drain
                self.multicast(Ping(self.me))

    try:
        # May still reach agreement (EchoAll needs only one ping per
        # peer to survive the shedding) or starve — either way the
        # overflow must have been dropped and counted, not queued.
        asyncio.run(runtime.run(lambda party: Burst(), timeout=2))
    except asyncio.TimeoutError:
        pass
    assert runtime.backpressure_drops > 0
    assert runtime.dropped_sends > 0
    assert runtime.metrics.counters("tcp").get("backpressure", 0) > 0


def test_tcp_honest_runs_never_hit_backpressure():
    result = run_adkg(n=4, seed=1, transport="tcp")
    assert result.agreed
    assert result.metrics_summary["counters"].get("tcp", {}) .get("backpressure", 0) == 0
